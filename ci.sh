#!/usr/bin/env bash
# Tier-1 verification gate for the rigmatch workspace.
#
#   ./ci.sh         build + tests + fmt + clippy + examples
#   ./ci.sh quick   build + tests only
#
# Everything runs offline: the rand/proptest/criterion dependencies are the
# vendored stand-ins under vendor/ (see vendor/README.md).

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

if [[ "${1:-}" != "quick" ]]; then
    step "cargo fmt --check"
    cargo fmt --check

    step "cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    step "examples"
    for example in quickstart citation_network money_laundering provenance_supply; do
        echo "--- cargo run --release --example ${example}"
        cargo run -q --release --example "${example}" > /dev/null
    done
fi

step "OK"
