#!/usr/bin/env bash
# Tier-1 verification gate for the rigmatch workspace.
#
#   ./ci.sh         build + tests + fmt + clippy + examples
#   ./ci.sh quick   build + tests only
#
# Everything runs offline: the rand/proptest/criterion dependencies are the
# vendored stand-ins under vendor/ (see vendor/README.md).

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

if [[ "${1:-}" != "quick" ]]; then
    step "cargo fmt --check"
    cargo fmt --check

    step "cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    step "examples"
    for example in quickstart citation_network money_laundering provenance_supply; do
        echo "--- cargo run --release --example ${example}"
        cargo run -q --release --example "${example}" > /dev/null
    done

    step "cargo bench smoke (CRITERION_SMOKE single-shot)"
    CRITERION_SMOKE=1 cargo bench -q -p rig_bench > /dev/null

    step "bench --json artifacts regenerate + parse"
    json_tmp="$(mktemp -d)"
    trap 'rm -rf "${json_tmp}"' EXIT
    cargo run -q --release -p rig_bench --bin fig9 -- \
        --scale 0.005 --timeout 2 --limit 100000 \
        --json "${json_tmp}/BENCH_mjoin.json" > /dev/null
    cargo run -q --release -p rig_bench --bin fig13 -- \
        --scale 0.005 --timeout 2 --limit 100000 \
        --json "${json_tmp}/BENCH_rig.json" > /dev/null
    cargo run -q --release -p rig_bench --bin benchcheck -- \
        "${json_tmp}/BENCH_mjoin.json" "${json_tmp}/BENCH_rig.json"
fi

step "OK"
