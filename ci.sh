#!/usr/bin/env bash
# Tier-1 verification gate for the rigmatch workspace.
#
#   ./ci.sh         build + tests + fmt + clippy + examples
#   ./ci.sh quick   build + tests only
#
# Everything runs offline: the rand/proptest/criterion dependencies are the
# vendored stand-ins under vendor/ (see vendor/README.md).

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

if [[ "${1:-}" != "quick" ]]; then
    step "cargo fmt --check"
    cargo fmt --check

    step "cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    step "panic-lint gate: no unwrap/expect/panic in core, server, analyze"
    # the clippy run above enforces the denies through the [lints] tables;
    # this gate asserts that wiring is intact so a manifest regression
    # (e.g. a dropped [lints] table) cannot silently downgrade the three
    # lints back to allow
    for lint in unwrap_used expect_used panic; do
        grep -A8 '^\[workspace\.lints\.clippy\]' Cargo.toml \
            | grep -q "^${lint} = \"deny\""
    done
    for c in core server analyze; do
        grep -A1 '^\[lints\]' "crates/${c}/Cargo.toml" | grep -q '^workspace = true'
    done

    step "cargo doc --no-deps (broken intra-doc links fail)"
    # vendor/ stand-ins are excluded: their docs mirror external crates
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet \
        --exclude rand --exclude proptest --exclude criterion

    step "CLI smoke: --query inline HPQL + explain + exit codes"
    cli_tmp="$(mktemp -d)"
    printf 'l 0 Author\nl 1 Paper\nv 0 0\nv 1 1\nv 2 1\ne 0 1\ne 1 2\n' \
        > "${cli_tmp}/g.txt"
    run_cli() { cargo run -q --release --bin rigmatch -- "$@"; }
    [[ "$(run_cli "${cli_tmp}/g.txt" --query 'MATCH (a:Author)->(p:Paper)=>(q:Paper)' --count)" == "1" ]]
    # capture first, then grep: `| grep -q` can exit at the first match and
    # EPIPE the CLI's remaining line-buffered writes
    explain_out="$(run_cli explain "${cli_tmp}/g.txt" \
        --query 'MATCH (a:Author)->(p:Paper)=>(q:Paper), (a)=>(q)')"
    grep -q 'reduced:.*1 edge(s) removed' <<< "${explain_out}"
    grep -q 'count:.*factorized DP' <<< "${explain_out}"
    # --factorized prints the answer-graph summary (exact DP count, no
    # tuple materialization) instead of enumerating
    fact_out="$(run_cli "${cli_tmp}/g.txt" --factorized \
        --query 'MATCH (a:Author)->(p:Paper)=>(q:Paper)')"
    grep -q 'count:       1' <<< "${fact_out}"
    grep -q 'shape:       tree' <<< "${fact_out}"
    # parse errors exit 3, I/O errors exit 4
    rc=0; run_cli "${cli_tmp}/g.txt" --query 'MATCH (broken' 2> /dev/null || rc=$?
    [[ "${rc}" == "3" ]]
    rc=0; run_cli "${cli_tmp}/missing.txt" --query 'MATCH (a:Author)' 2> /dev/null || rc=$?
    [[ "${rc}" == "4" ]]
    # static analysis: `check` lints without executing — satisfiable
    # queries exit 0, provably-empty ones exit 8 with an emptiness proof,
    # and the JSON report validates through benchcheck's analysis schema
    check_out="$(run_cli check "${cli_tmp}/g.txt" --query 'MATCH (a:Author)->(p:Paper)')"
    grep -q '0 error(s)' <<< "${check_out}"
    rc=0; run_cli check "${cli_tmp}/g.txt" \
        --query 'MATCH (p:Paper)->(a:Author)' > "${cli_tmp}/check.txt" || rc=$?
    [[ "${rc}" == "8" ]]
    grep -q 'error\[E102\]' "${cli_tmp}/check.txt"
    rc=0; run_cli check "${cli_tmp}/g.txt" --format json \
        --query 'MATCH (p:Paper)->(a:Author)' > "${cli_tmp}/check.json" || rc=$?
    [[ "${rc}" == "8" ]]
    cargo run -q --release -p rig_bench --bin benchcheck -- "${cli_tmp}/check.json"
    # strict lint mode wires the same proofs into query execution: exit 8
    rc=0; run_cli "${cli_tmp}/g.txt" --lint strict --count \
        --query 'MATCH (p:Paper)->(a:Author)' 2> /dev/null || rc=$?
    [[ "${rc}" == "8" ]]
    # dynamic updates: --mutations applies a script before the query runs
    # (the overlay path), and `update` rewrites the materialized graph
    printf 'a v Author\na e 3 1\ncommit\nd e 1 2\n' > "${cli_tmp}/m.txt"
    [[ "$(run_cli "${cli_tmp}/g.txt" --count --mutations "${cli_tmp}/m.txt" \
          --query 'MATCH (a:Author)->(p:Paper)')" == "2" ]]
    run_cli update "${cli_tmp}/g.txt" "${cli_tmp}/m.txt" --output "${cli_tmp}/g2.txt"
    grep -q '^e 3 1$' "${cli_tmp}/g2.txt"
    [[ "$(run_cli "${cli_tmp}/g2.txt" --count \
          --query 'MATCH (a:Author)->(p:Paper)')" == "2" ]]
    # durable store: seed from the graph file, write commits ahead to the
    # WAL, inspect recovery, then query the recovered store (once a store
    # exists, --data-dir is authoritative and the graph file is ignored)
    run_cli update "${cli_tmp}/g.txt" "${cli_tmp}/m.txt" \
        --data-dir "${cli_tmp}/store" --output /dev/null
    recover_out="$(run_cli recover "${cli_tmp}/store" 2> /dev/null)"
    grep -q 'recovered version:   2' <<< "${recover_out}"
    grep -q 'corrupt segments:    none' <<< "${recover_out}"
    [[ "$(run_cli "${cli_tmp}/g.txt" --count --data-dir "${cli_tmp}/store" \
          --query 'MATCH (a:Author)->(p:Paper)' 2> /dev/null)" == "2" ]]
    # recovering a dir with no store is a typed storage error: exit 7
    rc=0; run_cli recover "${cli_tmp}" 2> /dev/null || rc=$?
    [[ "${rc}" == "7" ]]
    rm -rf "${cli_tmp}"

    step "examples"
    for example in quickstart citation_network money_laundering provenance_supply; do
        echo "--- cargo run --release --example ${example}"
        cargo run -q --release --example "${example}" > /dev/null
    done

    step "cargo bench smoke (CRITERION_SMOKE single-shot)"
    CRITERION_SMOKE=1 cargo bench -q -p rig_bench > /dev/null

    step "parallel engine agreement sweep (RIGMATCH_THREADS=1,2,8)"
    RIGMATCH_THREADS=1,2,8 cargo test -q -p rig_mjoin --test engine_matrix

    step "bench --json artifacts regenerate + parse"
    json_tmp="$(mktemp -d)"
    trap 'rm -rf "${json_tmp}"' EXIT
    cargo run -q --release -p rig_bench --bin fig9 -- \
        --scale 0.005 --timeout 2 --limit 100000 \
        --json "${json_tmp}/BENCH_mjoin.json" > /dev/null
    cargo run -q --release -p rig_bench --bin fig13 -- \
        --scale 0.005 --timeout 2 --limit 100000 \
        --json "${json_tmp}/BENCH_rig.json" > /dev/null
    cargo run -q --release -p rig_bench --bin benchcheck -- \
        "${json_tmp}/BENCH_mjoin.json" "${json_tmp}/BENCH_rig.json"

    step "parallel sweep artifact (fig9 --threads 1,2,8) + benchcheck gate"
    cargo run -q --release -p rig_bench --bin fig9 -- \
        --scale 0.005 --timeout 2 --limit 100000 \
        --threads 1,2,8 \
        --json-parallel "${json_tmp}/BENCH_parallel.json" > /dev/null
    # The >= 1.5x speedup assertion needs hardware that can actually run
    # threads concurrently; benchcheck reads hw_threads from the artifact
    # and skips the gate with an explicit log line on smaller machines
    # (the sweep still runs, and the in-harness count agreement still
    # gates).
    cargo run -q --release -p rig_bench --bin benchcheck -- \
        --min-par-speedup 1.5 "${json_tmp}/BENCH_parallel.json"

    step "sharded-execution artifact (bench_shard) + benchcheck verification gate"
    # the harness verifies every sharded count against the single-graph
    # engine in-process; benchcheck hard-fails on any unverified run
    cargo run -q --release -p rig_bench --bin bench_shard -- \
        --scale 0.005 --timeout 2 --limit 100000 \
        --json "${json_tmp}/BENCH_shard.json" > /dev/null
    cargo run -q --release -p rig_bench --bin benchcheck -- \
        "${json_tmp}/BENCH_shard.json"
    # the committed full-scale artifact must pass the same hard gate
    # (regenerate with: bench_shard --json BENCH_shard.json)
    cargo run -q --release -p rig_bench --bin benchcheck -- BENCH_shard.json

    step "dynamic-graph artifact (bench_updates) + benchcheck verification gate"
    # the harness differentially verifies every overlay count against a
    # from-scratch rebuild; benchcheck hard-fails on any unverified query
    cargo run -q --release -p rig_bench --bin bench_updates -- \
        --scale 0.005 --timeout 2 --limit 100000 \
        --json "${json_tmp}/BENCH_updates.json" > /dev/null
    cargo run -q --release -p rig_bench --bin benchcheck -- \
        "${json_tmp}/BENCH_updates.json"

    step "factorized-counting artifact (bench_factorized) + benchcheck gates"
    # every count in the harness is verified against the brute-force
    # oracle in-process; benchcheck hard-fails on any unverified query
    cargo run -q --release -p rig_bench --bin bench_factorized -- \
        --scale 0.005 --json "${json_tmp}/BENCH_factorized.json" > /dev/null
    cargo run -q --release -p rig_bench --bin benchcheck -- \
        "${json_tmp}/BENCH_factorized.json"
    # the committed full-scale artifact must hold the >= 100x DP-speedup
    # claim (regenerate with:
    #   bench_factorized --scale 0.02 --seed 42 --json BENCH_factorized.json)
    cargo run -q --release -p rig_bench --bin benchcheck -- \
        --min-factorized-speedup 100 BENCH_factorized.json

    step "durability artifact (bench_storage) + recovery-verification gate"
    # every policy run re-opens its store and differentially verifies the
    # recovered version + graph against the mutation-stream mirror;
    # benchcheck hard-fails any unverified recovery count
    cargo run -q --release -p rig_bench --bin bench_storage -- \
        --scale 0.005 --json "${json_tmp}/BENCH_storage.json" > /dev/null
    cargo run -q --release -p rig_bench --bin benchcheck -- \
        "${json_tmp}/BENCH_storage.json"
    # the committed full-scale artifact must pass the same hard gate
    # (regenerate with: bench_storage --json BENCH_storage.json)
    cargo run -q --release -p rig_bench --bin benchcheck -- BENCH_storage.json

    step "serving smoke: rigmatch serve + bench_serving --smoke"
    serve_tmp="$(mktemp -d)"
    printf 'l 0 Author\nl 1 Paper\nv 0 0\nv 1 1\nv 2 1\ne 0 1\ne 1 2\n' \
        > "${serve_tmp}/g.txt"
    cargo run -q --release --bin rigmatch -- serve "${serve_tmp}/g.txt" \
        --addr 127.0.0.1:0 > "${serve_tmp}/serve.log" &
    serve_pid=$!
    for _ in $(seq 1 100); do
        grep -q '^listening on ' "${serve_tmp}/serve.log" 2> /dev/null && break
        sleep 0.1
    done
    serve_addr="$(sed -n 's|^listening on http://||p' "${serve_tmp}/serve.log")"
    [[ -n "${serve_addr}" ]]
    cargo run -q --release -p rig_bench --bin bench_serving -- \
        --smoke --addr "${serve_addr}" --query 'MATCH (a:Author)->(p:Paper)'
    # the smoke ends with POST /shutdown; serve must exit 0 on its own
    wait "${serve_pid}"
    rm -rf "${serve_tmp}"

    step "serving artifact (bench_serving) + HTTP-vs-direct differential gate"
    # open-loop load against an in-process server; quiesced, every
    # workload count served over HTTP must match the direct in-process
    # count — benchcheck hard-fails the artifact on any disagreement
    cargo run -q --release -p rig_bench --bin bench_serving -- \
        --scale 0.005 --requests 120 --qps 120 \
        --json "${json_tmp}/BENCH_serving.json" > /dev/null
    cargo run -q --release -p rig_bench --bin benchcheck -- \
        "${json_tmp}/BENCH_serving.json"
    # the committed full-scale artifact must pass the same hard gate
    # (regenerate with: bench_serving --json BENCH_serving.json)
    cargo run -q --release -p rig_bench --bin benchcheck -- BENCH_serving.json

    step "kill-and-recover differential + crash-recovery proptests"
    cargo test -q --test kill_recover --test storage_recovery
fi

step "OK"
