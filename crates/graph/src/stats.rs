//! Summary statistics for data graphs (the columns of Table 2), plus the
//! label-pair edge-count matrix used by static query analysis.

use std::collections::HashMap;

use crate::view::GraphView;
use crate::{DataGraph, Label, NodeId};

/// The key statistics the paper reports per dataset (Table 2), plus degree
/// extremes that the workload generators use for calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub nodes: usize,
    pub edges: usize,
    pub labels: usize,
    pub avg_degree: f64,
    pub max_out_degree: usize,
    pub max_in_degree: usize,
    /// Cardinality of the largest inverted list (`|I_max|` in §4.3).
    pub max_inverted_list: usize,
}

impl GraphStats {
    pub fn of(g: &DataGraph) -> Self {
        let mut max_out = 0;
        let mut max_in = 0;
        for v in 0..g.num_nodes() as NodeId {
            max_out = max_out.max(g.out_degree(v));
            max_in = max_in.max(g.in_degree(v));
        }
        let max_inv =
            (0..g.num_labels()).map(|l| g.nodes_with_label(l as u32).len()).max().unwrap_or(0);
        GraphStats {
            nodes: g.num_nodes(),
            edges: g.num_edges(),
            labels: g.num_labels(),
            avg_degree: g.avg_degree(),
            max_out_degree: max_out,
            max_in_degree: max_in,
            max_inverted_list: max_inv,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} |L|={} d_avg={:.2} d_out_max={} d_in_max={} |I_max|={}",
            self.nodes,
            self.edges,
            self.labels,
            self.avg_degree,
            self.max_out_degree,
            self.max_in_degree,
            self.max_inverted_list
        )
    }
}

/// Above this many cells the matrix stores only non-zero pairs in a hash
/// map; below it, a dense `|L|²` array (cheaper lookups, predictable
/// memory for the label counts real datasets have).
const DENSE_CELL_LIMIT: usize = 1 << 22;

enum PairStore {
    Dense(Vec<u64>),
    Sparse(HashMap<(Label, Label), u64>),
}

/// Edge counts per `(source label, target label)` pair, built from a
/// [`GraphView`] so it reads through a delta overlay: counts on a dirty
/// snapshot reflect the uncompacted mutations, not just the base CSR.
///
/// `count(lf, lt) == 0` is a *proof* that no `Direct` pattern edge from
/// an `lf`-labeled variable to an `lt`-labeled variable can ever match —
/// the statistic the `rig_analyze` emptiness pass keys on (the role-free
/// co-occurrence idea from Fletcher & Beck).
pub struct LabelPairCounts {
    labels: usize,
    store: PairStore,
}

impl LabelPairCounts {
    /// Scans every live node's out-neighbors once: `O(|V| + |E|)`.
    pub fn of(view: GraphView<'_>) -> Self {
        let labels = view.num_labels();
        let mut store = if labels.saturating_mul(labels) <= DENSE_CELL_LIMIT {
            PairStore::Dense(vec![0; labels * labels])
        } else {
            PairStore::Sparse(HashMap::new())
        };
        for v in 0..view.num_nodes() as NodeId {
            if !view.is_live(v) {
                continue;
            }
            let lf = view.label(v);
            for &w in view.out_neighbors(v) {
                let lt = view.label(w);
                match &mut store {
                    PairStore::Dense(cells) => cells[lf as usize * labels + lt as usize] += 1,
                    PairStore::Sparse(map) => *map.entry((lf, lt)).or_insert(0) += 1,
                }
            }
        }
        LabelPairCounts { labels, store }
    }

    /// Number of labels the matrix covers.
    pub fn num_labels(&self) -> usize {
        self.labels
    }

    /// Number of edges from an `lf`-labeled node to an `lt`-labeled node.
    /// Labels outside the graph's label space count zero.
    pub fn count(&self, lf: Label, lt: Label) -> u64 {
        if lf as usize >= self.labels || lt as usize >= self.labels {
            return 0;
        }
        match &self.store {
            PairStore::Dense(cells) => cells[lf as usize * self.labels + lt as usize],
            PairStore::Sparse(map) => map.get(&(lf, lt)).copied().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{CommitImpact, DeltaOverlay, MutationOp, Snapshot};
    use crate::GraphBuilder;
    use std::sync::Arc;

    #[test]
    fn stats_small() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        let y = b.add_node(0);
        let z = b.add_node(1);
        b.add_edge(x, y);
        b.add_edge(x, z);
        b.add_edge(y, z);
        let g = b.build();
        let s = g.stats();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.labels, 2);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.max_inverted_list, 2);
        assert!(format!("{s}").contains("|V|=3"));
    }

    #[test]
    fn label_pair_counts_on_base() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        let y = b.add_node(0);
        let z = b.add_node(1);
        b.add_edge(x, y); // 0 -> 0
        b.add_edge(x, z); // 0 -> 1
        b.add_edge(y, z); // 0 -> 1
        let g = b.build();
        let m = LabelPairCounts::of(GraphView::from(&g));
        assert_eq!(m.num_labels(), 2);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(0, 1), 2);
        assert_eq!(m.count(1, 0), 0);
        assert_eq!(m.count(7, 0), 0); // out of label space
    }

    #[test]
    fn label_pair_counts_read_through_the_overlay() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        let y = b.add_node(1);
        b.add_edge(x, y);
        let g = Arc::new(b.build());
        let mut d = DeltaOverlay::new(Arc::clone(&g));
        let mut im = CommitImpact::default();
        d.apply(&MutationOp::RemoveEdge(0, 1), &mut im).unwrap();
        d.apply(&MutationOp::AddNode(crate::delta::LabelSpec::Id(0)), &mut im).unwrap();
        d.apply(&MutationOp::AddEdge(1, 2), &mut im).unwrap();
        let snap = Snapshot::new(Arc::new(d), 1);
        let m = LabelPairCounts::of(GraphView::from(&snap));
        assert_eq!(m.count(0, 1), 0, "removed edge must not count");
        assert_eq!(m.count(1, 0), 1, "overlay edge must count");
    }
}
