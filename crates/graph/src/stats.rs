//! Summary statistics for data graphs (the columns of Table 2).

use crate::{DataGraph, NodeId};

/// The key statistics the paper reports per dataset (Table 2), plus degree
/// extremes that the workload generators use for calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub nodes: usize,
    pub edges: usize,
    pub labels: usize,
    pub avg_degree: f64,
    pub max_out_degree: usize,
    pub max_in_degree: usize,
    /// Cardinality of the largest inverted list (`|I_max|` in §4.3).
    pub max_inverted_list: usize,
}

impl GraphStats {
    pub fn of(g: &DataGraph) -> Self {
        let mut max_out = 0;
        let mut max_in = 0;
        for v in 0..g.num_nodes() as NodeId {
            max_out = max_out.max(g.out_degree(v));
            max_in = max_in.max(g.in_degree(v));
        }
        let max_inv =
            (0..g.num_labels()).map(|l| g.nodes_with_label(l as u32).len()).max().unwrap_or(0);
        GraphStats {
            nodes: g.num_nodes(),
            edges: g.num_edges(),
            labels: g.num_labels(),
            avg_degree: g.avg_degree(),
            max_out_degree: max_out,
            max_in_degree: max_in,
            max_inverted_list: max_inv,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} |L|={} d_avg={:.2} d_out_max={} d_in_max={} |I_max|={}",
            self.nodes,
            self.edges,
            self.labels,
            self.avg_degree,
            self.max_out_degree,
            self.max_in_degree,
            self.max_inverted_list
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    #[test]
    fn stats_small() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        let y = b.add_node(0);
        let z = b.add_node(1);
        b.add_edge(x, y);
        b.add_edge(x, z);
        b.add_edge(y, z);
        let g = b.build();
        let s = g.stats();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.labels, 2);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.max_inverted_list, 2);
        assert!(format!("{s}").contains("|V|=3"));
    }
}
