//! Plain-text serialization of data graphs.
//!
//! The format is the line-oriented one used by most subgraph-matching
//! artifacts (and by the datasets the paper evaluates on):
//!
//! ```text
//! t <num_nodes> <num_edges>    # optional header
//! v <id> <label> [degree]      # node line; ids must be 0..n densely
//! e <src> <dst>                # edge line
//! l <label-id> <name>          # optional label-name dictionary entry
//! x <id>                       # tombstone: the node slot exists (id
//!                              # stability) but is dead — no edges, not
//!                              # in any inverted list
//! # comment
//! ```
//!
//! `l` lines populate the graph's label-name dictionary, which HPQL
//! queries (`MATCH (a:Author)->...`) resolve `(var:Name)` references
//! against.

use crate::{DataGraph, GraphBuilder, Label, NodeId};
use rig_bitset::Bitset;

/// Error produced by [`parse_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Parses the text format described in the module docs.
pub fn parse_text(input: &str) -> Result<DataGraph, ParseError> {
    let mut labels: Vec<(NodeId, Label)> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut names: Vec<(Label, String)> = Vec::new();
    let mut dead: Vec<NodeId> = Vec::new();
    for (ln, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('t') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("v") => {
                let id: NodeId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln + 1, "bad node id"))?;
                let label: Label = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln + 1, "bad node label"))?;
                labels.push((id, label));
            }
            Some("e") => {
                let u: NodeId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln + 1, "bad edge source"))?;
                let v: NodeId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln + 1, "bad edge target"))?;
                edges.push((u, v));
            }
            Some("l") => {
                let id: Label = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln + 1, "bad label id"))?;
                let name = parts.next().ok_or_else(|| err(ln + 1, "missing label name"))?;
                names.push((id, name.to_string()));
            }
            Some("x") => {
                let id: NodeId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln + 1, "bad tombstone id"))?;
                dead.push(id);
            }
            Some(tok) => return Err(err(ln + 1, format!("unknown record '{tok}'"))),
            None => {}
        }
    }
    labels.sort_unstable_by_key(|&(id, _)| id);
    for (expect, &(id, _)) in labels.iter().enumerate() {
        if id as usize != expect {
            return Err(err(0, format!("node ids not dense: missing {expect}")));
        }
    }
    let mut b = GraphBuilder::with_capacity(labels.len(), edges.len());
    for &(_, l) in &labels {
        b.add_node(l);
    }
    for (l, name) in names {
        b.set_label_name(l, &name);
    }
    let n = labels.len() as NodeId;
    let dead_set = Bitset::from_slice(&dead);
    for &d in &dead {
        if d >= n {
            return Err(err(0, format!("tombstone x {d} references unknown node")));
        }
    }
    for (u, v) in edges {
        if u >= n || v >= n {
            return Err(err(0, format!("edge ({u},{v}) references unknown node")));
        }
        if dead_set.contains(u) || dead_set.contains(v) {
            return Err(err(0, format!("edge ({u},{v}) touches a tombstoned node")));
        }
        b.add_edge(u, v);
    }
    let g = b.build();
    Ok(if dead_set.is_empty() { g } else { g.with_tombstones(dead_set) })
}

/// Serializes a graph back to the text format (stable output, suitable for
/// golden tests).
pub fn to_text(g: &DataGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!("t {} {}\n", g.num_nodes(), g.num_edges()));
    for (l, name) in g.label_names().iter().enumerate() {
        if !name.is_empty() {
            out.push_str(&format!("l {l} {name}\n"));
        }
    }
    for v in 0..g.num_nodes() as NodeId {
        out.push_str(&format!("v {} {}\n", v, g.label(v)));
    }
    for v in g.tombstones().iter() {
        out.push_str(&format!("x {v}\n"));
    }
    for (u, v) in g.edges() {
        out.push_str(&format!("e {u} {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let text = "t 3 2\nv 0 0\nv 1 1\nv 2 1\ne 0 1\ne 0 2\n";
        let g = parse_text(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(to_text(&g), text);
    }

    #[test]
    fn comments_and_blank_lines() {
        let g = parse_text("# hi\n\nv 0 5\n   \nv 1 5\ne 1 0\n").unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn out_of_order_node_ids() {
        let g = parse_text("v 1 0\nv 0 1\ne 0 1\n").unwrap();
        assert_eq!(g.label(0), 1);
        assert_eq!(g.label(1), 0);
    }

    #[test]
    fn label_dictionary_roundtrip() {
        let text = "t 2 1\nl 0 Author\nl 1 Paper\nv 0 0\nv 1 1\ne 0 1\n";
        let g = parse_text(text).unwrap();
        assert_eq!(g.label_id("Author"), Some(0));
        assert_eq!(g.label_id("Paper"), Some(1));
        assert_eq!(g.label_name(1), "Paper");
        assert_eq!(to_text(&g), text);
        assert!(parse_text("l x Author\n").is_err());
        assert!(parse_text("l 0\n").is_err());
        // a dictionary entry for a label with no nodes round-trips too
        let text = "t 2 1\nl 0 A\nl 1 B\nl 2 Retracted\nv 0 0\nv 1 1\ne 0 1\n";
        let g = parse_text(text).unwrap();
        assert_eq!(g.num_labels(), 3);
        assert_eq!(g.label_id("Retracted"), Some(2));
        assert_eq!(to_text(&g), text);
    }

    #[test]
    fn tombstone_roundtrip() {
        let text = "t 3 1\nv 0 0\nv 1 1\nv 2 1\nx 1\ne 0 2\n";
        let g = parse_text(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_live_nodes(), 2);
        assert!(!g.is_live(1));
        assert_eq!(g.nodes_with_label(1), &[2]);
        assert_eq!(g.label_bitset(1).to_vec(), vec![2]);
        assert_eq!(to_text(&g), text);
        // tombstones must be edge-free and in range
        assert!(parse_text("v 0 0\nv 1 0\nx 0\ne 0 1\n").is_err());
        assert!(parse_text("v 0 0\nx 3\n").is_err());
    }

    #[test]
    fn errors() {
        assert!(parse_text("v x 0\n").is_err());
        assert!(parse_text("q 0 0\n").is_err());
        assert!(parse_text("v 0 0\nv 2 0\n").is_err()); // non-dense
        assert!(parse_text("v 0 0\ne 0 5\n").is_err()); // dangling edge
    }
}
