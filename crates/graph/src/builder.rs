//! Mutable construction of [`DataGraph`]s.

use crate::{DataGraph, FxHashMap, Label, NodeId};

/// Accumulates nodes and edges, then freezes into an immutable CSR graph.
///
/// Duplicate edges and self-loops are allowed on input; duplicates are
/// removed at [`GraphBuilder::build`] time (the paper's data model has
/// simple directed graphs).
///
/// The builder also maintains the graph's **label-name dictionary**: label
/// ids can be interned from names ([`GraphBuilder::intern_label`] /
/// [`GraphBuilder::add_named_node`]), and the frozen [`DataGraph`] resolves
/// names back to ids (`DataGraph::label_id`) — the lookup HPQL queries use
/// for `(var:LabelName)` references.
#[derive(Default)]
pub struct GraphBuilder {
    labels: Vec<Label>,
    label_names: Vec<String>,
    name_to_label: FxHashMap<String, Label>,
    next_label: Label,
    adj: Vec<Vec<NodeId>>,
    edge_count_hint: usize,
}

impl GraphBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes internal vectors.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            labels: Vec::with_capacity(nodes),
            adj: Vec::with_capacity(nodes),
            edge_count_hint: edges,
            ..Default::default()
        }
    }

    /// Adds a node with the given label; returns its id.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        let id = self.labels.len() as NodeId;
        self.labels.push(label);
        self.next_label = self.next_label.max(label + 1);
        self.adj.push(Vec::new());
        id
    }

    /// Interns `name` in the label dictionary: returns its existing label
    /// id, or assigns the next free one. Assigned ids come after every
    /// numerically-added label seen so far, so named and numeric labels can
    /// mix without colliding.
    pub fn intern_label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.name_to_label.get(name) {
            return l;
        }
        let l = self.next_label;
        self.next_label += 1;
        self.set_label_name(l, name);
        l
    }

    /// Adds a node labeled by *name* (interned on first use); returns its
    /// node id.
    pub fn add_named_node(&mut self, label_name: &str) -> NodeId {
        let l = self.intern_label(label_name);
        self.add_node(l)
    }

    /// Records `name` for label id `label` (first writer wins; later
    /// different names for the same id are ignored).
    pub fn set_label_name(&mut self, label: Label, name: &str) {
        // a named label claims its id even with no nodes yet, so
        // intern_label never hands the same id to a different name
        self.next_label = self.next_label.max(label + 1);
        let idx = label as usize;
        if self.label_names.len() <= idx {
            self.label_names.resize(idx + 1, String::new());
        }
        if self.label_names[idx].is_empty() && !name.is_empty() {
            self.label_names[idx] = name.to_string();
            self.name_to_label.entry(name.to_string()).or_insert(label);
        }
    }

    /// Adds a node and records a human-readable name for its label.
    pub fn add_node_with_name(&mut self, label: Label, name: &str) -> NodeId {
        let id = self.add_node(label);
        self.set_label_name(label, name);
        id
    }

    /// Adds `count` nodes all labeled `label`; returns the first new id.
    pub fn add_nodes(&mut self, label: Label, count: usize) -> NodeId {
        let first = self.labels.len() as NodeId;
        for _ in 0..count {
            self.add_node(label);
        }
        first
    }

    /// Adds a directed edge `u -> v`. Both endpoints must already exist.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!((u as usize) < self.labels.len(), "unknown source {u}");
        debug_assert!((v as usize) < self.labels.len(), "unknown target {v}");
        self.adj[u as usize].push(v);
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Freezes into an immutable [`DataGraph`]; sorts and deduplicates
    /// adjacency lists.
    pub fn build(mut self) -> DataGraph {
        let _ = self.edge_count_hint;
        for adj in &mut self.adj {
            adj.sort_unstable();
            adj.dedup();
        }
        DataGraph::from_parts(self.labels, self.adj, self.label_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        let y = b.add_node(1);
        let z = b.add_node(1);
        b.add_edge(x, z);
        b.add_edge(x, y);
        b.add_edge(x, y); // duplicate
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(x), &[y, z]);
    }

    #[test]
    fn add_nodes_bulk() {
        let mut b = GraphBuilder::new();
        let first = b.add_nodes(3, 5);
        assert_eq!(first, 0);
        assert_eq!(b.node_count(), 5);
        let g = b.build();
        assert_eq!(g.num_labels(), 4); // labels 0..=3 exist as id space
        assert_eq!(g.nodes_with_label(3).len(), 5);
        assert_eq!(g.nodes_with_label(0).len(), 0);
    }

    #[test]
    fn label_interning() {
        let mut b = GraphBuilder::new();
        let x = b.add_named_node("Author");
        let y = b.add_named_node("Paper");
        let z = b.add_named_node("Author");
        b.add_edge(x, y);
        b.add_edge(y, z);
        let g = b.build();
        assert_eq!(g.label(x), g.label(z));
        assert_ne!(g.label(x), g.label(y));
        assert_eq!(g.label_id("Author"), Some(g.label(x)));
        assert_eq!(g.label_id("Paper"), Some(g.label(y)));
        assert_eq!(g.label_id("Ghost"), None);
        assert_eq!(g.label_name(g.label(y)), "Paper");
        assert!(g.has_label_names());
    }

    #[test]
    fn named_label_without_nodes_survives_and_claims_its_id() {
        // the dictionary entry must survive build() even with no nodes
        let mut b = GraphBuilder::new();
        b.set_label_name(2, "Retracted");
        b.add_node(0);
        b.add_node(1);
        let g = b.build();
        assert_eq!(g.num_labels(), 3);
        assert_eq!(g.label_id("Retracted"), Some(2));
        assert!(g.nodes_with_label(2).is_empty());
        // and a named-but-empty id is never re-handed to a different name
        let mut b = GraphBuilder::new();
        b.set_label_name(0, "X");
        let y = b.add_named_node("Y");
        let y2 = b.add_named_node("Y");
        let g = b.build();
        assert_eq!(g.label(y), 1, "id 0 belongs to X");
        assert_eq!(g.label(y), g.label(y2));
        assert_eq!(g.label_id("X"), Some(0));
        assert_eq!(g.label_id("Y"), Some(1));
    }

    #[test]
    fn named_and_numeric_labels_mix() {
        let mut b = GraphBuilder::new();
        b.add_node(5); // numeric labels reserve 0..=5
        let named = b.add_named_node("Extra");
        let g = b.build();
        assert_eq!(g.label(named), 6, "interned name must not collide with numeric labels");
        assert_eq!(g.label_id("Extra"), Some(6));
        // first name recorded for an id wins
        let mut b = GraphBuilder::new();
        b.add_node_with_name(0, "First");
        b.add_node_with_name(0, "Second");
        let g = b.build();
        assert_eq!(g.label_name(0), "First");
        assert_eq!(g.label_id("Second"), None);
    }

    #[test]
    fn self_loop_kept() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        b.add_edge(x, x);
        let g = b.build();
        assert!(g.has_edge(x, x));
    }
}
