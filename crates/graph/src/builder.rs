//! Mutable construction of [`DataGraph`]s.

use crate::{DataGraph, Label, NodeId};

/// Accumulates nodes and edges, then freezes into an immutable CSR graph.
///
/// Duplicate edges and self-loops are allowed on input; duplicates are
/// removed at [`GraphBuilder::build`] time (the paper's data model has
/// simple directed graphs).
#[derive(Default)]
pub struct GraphBuilder {
    labels: Vec<Label>,
    label_names: Vec<String>,
    adj: Vec<Vec<NodeId>>,
    edge_count_hint: usize,
}

impl GraphBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes internal vectors.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            labels: Vec::with_capacity(nodes),
            label_names: Vec::new(),
            adj: Vec::with_capacity(nodes),
            edge_count_hint: edges,
        }
    }

    /// Adds a node with the given label; returns its id.
    pub fn add_node(&mut self, label: Label) -> NodeId {
        let id = self.labels.len() as NodeId;
        self.labels.push(label);
        self.adj.push(Vec::new());
        id
    }

    /// Adds a node and records a human-readable name for its label.
    pub fn add_node_with_name(&mut self, label: Label, name: &str) -> NodeId {
        let id = self.add_node(label);
        let idx = label as usize;
        if self.label_names.len() <= idx {
            self.label_names.resize(idx + 1, String::new());
        }
        if self.label_names[idx].is_empty() {
            self.label_names[idx] = name.to_string();
        }
        id
    }

    /// Adds `count` nodes all labeled `label`; returns the first new id.
    pub fn add_nodes(&mut self, label: Label, count: usize) -> NodeId {
        let first = self.labels.len() as NodeId;
        for _ in 0..count {
            self.add_node(label);
        }
        first
    }

    /// Adds a directed edge `u -> v`. Both endpoints must already exist.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!((u as usize) < self.labels.len(), "unknown source {u}");
        debug_assert!((v as usize) < self.labels.len(), "unknown target {v}");
        self.adj[u as usize].push(v);
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Freezes into an immutable [`DataGraph`]; sorts and deduplicates
    /// adjacency lists.
    pub fn build(mut self) -> DataGraph {
        let _ = self.edge_count_hint;
        for adj in &mut self.adj {
            adj.sort_unstable();
            adj.dedup();
        }
        DataGraph::from_parts(self.labels, self.adj, self.label_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        let y = b.add_node(1);
        let z = b.add_node(1);
        b.add_edge(x, z);
        b.add_edge(x, y);
        b.add_edge(x, y); // duplicate
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(x), &[y, z]);
    }

    #[test]
    fn add_nodes_bulk() {
        let mut b = GraphBuilder::new();
        let first = b.add_nodes(3, 5);
        assert_eq!(first, 0);
        assert_eq!(b.node_count(), 5);
        let g = b.build();
        assert_eq!(g.num_labels(), 4); // labels 0..=3 exist as id space
        assert_eq!(g.nodes_with_label(3).len(), 5);
        assert_eq!(g.nodes_with_label(0).len(), 0);
    }

    #[test]
    fn self_loop_kept() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        b.add_edge(x, x);
        let g = b.build();
        assert!(g.has_edge(x, x));
    }
}
