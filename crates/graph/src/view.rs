//! A borrowed, copyable view over either graph representation.
//!
//! Every read-only pipeline stage (simulation, pre-filtering, RIG
//! expansion, set-reachability sweeps) takes a [`GraphView`] instead of
//! `&DataGraph`, so the same code runs against a frozen base CSR *or* a
//! delta [`Snapshot`] without generics or dynamic dispatch in the hot
//! loops — each accessor is one match on a two-variant enum, and both
//! arms return the same borrowed slices/bitmaps the CSR path always did.

use rig_bitset::Bitset;

use crate::delta::Snapshot;
use crate::{DataGraph, Label, NodeId};

/// A borrowed graph: the immutable base CSR, or a delta snapshot.
#[derive(Clone, Copy)]
pub enum GraphView<'a> {
    Base(&'a DataGraph),
    Snapshot(&'a Snapshot),
}

impl<'a> From<&'a DataGraph> for GraphView<'a> {
    fn from(g: &'a DataGraph) -> Self {
        GraphView::Base(g)
    }
}

impl<'a> From<&'a std::sync::Arc<DataGraph>> for GraphView<'a> {
    fn from(g: &'a std::sync::Arc<DataGraph>) -> Self {
        GraphView::Base(g)
    }
}

impl<'a> From<&'a Snapshot> for GraphView<'a> {
    fn from(s: &'a Snapshot) -> Self {
        GraphView::Snapshot(s)
    }
}

impl<'a> From<&'a std::sync::Arc<Snapshot>> for GraphView<'a> {
    fn from(s: &'a std::sync::Arc<Snapshot>) -> Self {
        GraphView::Snapshot(s)
    }
}

impl<'a> GraphView<'a> {
    /// Number of node-id slots `|V|` (including tombstones).
    #[inline]
    pub fn num_nodes(self) -> usize {
        match self {
            GraphView::Base(g) => g.num_nodes(),
            GraphView::Snapshot(s) => s.num_nodes(),
        }
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn num_edges(self) -> usize {
        match self {
            GraphView::Base(g) => g.num_edges(),
            GraphView::Snapshot(s) => s.num_edges(),
        }
    }

    /// Number of labels `|L|`.
    #[inline]
    pub fn num_labels(self) -> usize {
        match self {
            GraphView::Base(g) => g.num_labels(),
            GraphView::Snapshot(s) => s.num_labels(),
        }
    }

    /// Label of node `v`.
    #[inline]
    pub fn label(self, v: NodeId) -> Label {
        match self {
            GraphView::Base(g) => g.label(v),
            GraphView::Snapshot(s) => s.label(v),
        }
    }

    /// True iff `v` is a live (non-tombstoned) node.
    #[inline]
    pub fn is_live(self, v: NodeId) -> bool {
        match self {
            GraphView::Base(g) => g.is_live(v),
            GraphView::Snapshot(s) => s.is_live(v),
        }
    }

    /// Sorted out-neighbors of `v`.
    #[inline]
    pub fn out_neighbors(self, v: NodeId) -> &'a [NodeId] {
        match self {
            GraphView::Base(g) => g.out_neighbors(v),
            GraphView::Snapshot(s) => s.out_neighbors(v),
        }
    }

    /// Sorted in-neighbors of `v`.
    #[inline]
    pub fn in_neighbors(self, v: NodeId) -> &'a [NodeId] {
        match self {
            GraphView::Base(g) => g.in_neighbors(v),
            GraphView::Snapshot(s) => s.in_neighbors(v),
        }
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(self, v: NodeId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// True iff the edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Sorted inverted list `I_label` (live nodes only).
    #[inline]
    pub fn nodes_with_label(self, label: Label) -> &'a [NodeId] {
        match self {
            GraphView::Base(g) => g.nodes_with_label(label),
            GraphView::Snapshot(s) => s.nodes_with_label(label),
        }
    }

    /// The inverted list of `label` as a bitmap.
    #[inline]
    pub fn label_bitset(self, label: Label) -> &'a Bitset {
        match self {
            GraphView::Base(g) => g.label_bitset(label),
            GraphView::Snapshot(s) => s.label_bitset(label),
        }
    }

    /// Resolves a label name to its id, if named.
    pub fn label_id(self, name: &str) -> Option<Label> {
        match self {
            GraphView::Base(g) => g.label_id(name),
            GraphView::Snapshot(s) => s.label_id(name),
        }
    }

    /// Human-readable name of `label` ("" = unnamed).
    pub fn label_name(self, label: Label) -> &'a str {
        match self {
            GraphView::Base(g) => g.label_name(label),
            GraphView::Snapshot(s) => s.label_name(label),
        }
    }

    /// True when this view carries uncompacted mutations: the base-only
    /// reachability machinery (BFL intervals, SCC memoization, early
    /// expansion termination) is then unsound and the pipeline must use
    /// overlay-aware traversal instead.
    #[inline]
    pub fn is_dirty(self) -> bool {
        match self {
            GraphView::Base(_) => false,
            GraphView::Snapshot(s) => s.is_dirty(),
        }
    }
}

impl std::fmt::Debug for GraphView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphView::Base(g) => write!(f, "{g:?}"),
            GraphView::Snapshot(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{CommitImpact, DeltaOverlay, MutationOp};
    use crate::GraphBuilder;
    use std::sync::Arc;

    #[test]
    fn base_and_snapshot_views_agree_when_clean() {
        let mut b = GraphBuilder::new();
        let x = b.add_node_with_name(0, "A");
        let y = b.add_node_with_name(1, "B");
        b.add_edge(x, y);
        let g = Arc::new(b.build());
        let snap = Snapshot::clean(Arc::clone(&g));
        let bv = GraphView::from(&*g);
        let sv = GraphView::from(&snap);
        assert_eq!(bv.num_nodes(), sv.num_nodes());
        assert_eq!(bv.out_neighbors(0), sv.out_neighbors(0));
        assert_eq!(bv.nodes_with_label(1), sv.nodes_with_label(1));
        assert_eq!(bv.label_id("B"), sv.label_id("B"));
        assert!(!bv.is_dirty() && !sv.is_dirty());
    }

    #[test]
    fn dirty_snapshot_view_reads_through_the_overlay() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        let y = b.add_node(1);
        b.add_edge(x, y);
        let g = Arc::new(b.build());
        let mut d = DeltaOverlay::new(g);
        let mut im = CommitImpact::default();
        d.apply(&MutationOp::RemoveEdge(0, 1), &mut im).unwrap();
        let snap = Snapshot::new(Arc::new(d), 1);
        let v = GraphView::from(&snap);
        assert!(v.is_dirty());
        assert!(!v.has_edge(0, 1));
        assert_eq!(v.num_edges(), 0);
    }
}
