//! Binary snapshot segments: the durable form of a base [`DataGraph`].
//!
//! A segment file holds everything [`DataGraph`] reconstruction needs —
//! node labels, the label-name dictionary, tombstones, and the forward
//! adjacency (the backward CSR, inverted lists and bitmaps are derived on
//! load, exactly like [`DeltaOverlay::materialize`] does in memory) — plus
//! the store version the snapshot captures, under a magic/format-version
//! header and a CRC-32 over the whole payload. Corruption anywhere in the
//! file is detected before any graph structure is built, so a damaged
//! segment surfaces as a typed [`SegmentError`], never a panic.
//!
//! The byte layout (everything little-endian):
//!
//! ```text
//! 0..8    magic  b"RIGSEG1\n"
//! 8..12   crc32 of payload
//! 12..20  payload length (u64)
//! 20..    payload:
//!           store_version u64
//!           num_nodes u32, num_labels u32
//!           labels        num_nodes x u32
//!           label names   num_labels x (u32 len + utf-8 bytes)
//!           tombstones    u32 count + count x u32 node id
//!           degrees       num_nodes x u32
//!           targets       sum(degrees) x u32
//! ```
//!
//! [`DeltaOverlay::materialize`]: crate::delta::DeltaOverlay::materialize

use rig_bitset::Bitset;

use crate::{DataGraph, Label, NodeId};

/// File magic, bumped with the format: decode rejects anything else.
pub const SEGMENT_MAGIC: &[u8; 8] = b"RIGSEG1\n";

/// A segment failed to decode: bad magic, truncation, checksum mismatch,
/// or structurally invalid content. The message says which.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentError {
    pub message: String,
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "segment: {}", self.message)
    }
}

impl std::error::Error for SegmentError {}

fn err<T>(message: impl Into<String>) -> Result<T, SegmentError> {
    Err(SegmentError { message: message.into() })
}

// ---------------------------------------------------------------------------
// crc32 (IEEE 802.3, the zlib polynomial) — shared with the WAL layer
// ---------------------------------------------------------------------------

fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE) of `bytes` — the checksum both segment files and WAL
/// records carry.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// encode
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes `g` (base CSR + label dictionary + tombstones) as a segment
/// capturing store version `store_version`.
pub fn encode_segment(g: &DataGraph, store_version: u64) -> Vec<u8> {
    let n = g.num_nodes();
    let mut payload = Vec::with_capacity(32 + 4 * n + 4 * g.num_edges());
    put_u64(&mut payload, store_version);
    put_u32(&mut payload, n as u32);
    put_u32(&mut payload, g.num_labels() as u32);
    for &l in g.labels() {
        put_u32(&mut payload, l);
    }
    for name in g.label_names() {
        put_u32(&mut payload, name.len() as u32);
        payload.extend_from_slice(name.as_bytes());
    }
    let dead: Vec<NodeId> = g.tombstones().iter().collect();
    put_u32(&mut payload, dead.len() as u32);
    for v in dead {
        put_u32(&mut payload, v);
    }
    for v in 0..n as NodeId {
        put_u32(&mut payload, g.out_degree(v) as u32);
    }
    for v in 0..n as NodeId {
        for &t in g.out_neighbors(v) {
            put_u32(&mut payload, t);
        }
    }

    let mut out = Vec::with_capacity(20 + payload.len());
    out.extend_from_slice(SEGMENT_MAGIC);
    put_u32(&mut out, crc32(&payload));
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------------
// decode
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], SegmentError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => err(format!("truncated payload at offset {}", self.pos)),
        }
    }

    fn u32(&mut self) -> Result<u32, SegmentError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SegmentError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Decodes a segment produced by [`encode_segment`], returning the graph
/// and the store version it captured. Every validation failure — magic,
/// truncation, checksum, out-of-range ids, unsorted adjacency, tombstones
/// carrying edges — is a typed error.
pub fn decode_segment(bytes: &[u8]) -> Result<(DataGraph, u64), SegmentError> {
    if bytes.len() < 20 {
        return err(format!("file too short for a segment header ({} bytes)", bytes.len()));
    }
    if &bytes[0..8] != SEGMENT_MAGIC {
        return err("bad magic: not a segment file");
    }
    let want_crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let payload = &bytes[20..];
    if payload_len != payload.len() as u64 {
        return err(format!(
            "payload length mismatch: header says {payload_len}, file has {}",
            payload.len()
        ));
    }
    let got_crc = crc32(payload);
    if got_crc != want_crc {
        return err(format!("checksum mismatch: header {want_crc:#010x}, payload {got_crc:#010x}"));
    }

    let mut c = Cursor { bytes: payload, pos: 0 };
    let store_version = c.u64()?;
    let n = c.u32()? as usize;
    let num_labels = c.u32()? as usize;
    let mut labels: Vec<Label> = Vec::with_capacity(n);
    for _ in 0..n {
        let l = c.u32()?;
        if l as usize >= num_labels {
            return err(format!("node label {l} out of range (num_labels {num_labels})"));
        }
        labels.push(l);
    }
    let mut label_names: Vec<String> = Vec::with_capacity(num_labels);
    for i in 0..num_labels {
        let len = c.u32()? as usize;
        let raw = c.take(len)?;
        match std::str::from_utf8(raw) {
            Ok(s) => label_names.push(s.to_string()),
            Err(_) => return err(format!("label name {i} is not valid utf-8")),
        }
    }
    let dead_count = c.u32()? as usize;
    let mut dead_ids: Vec<NodeId> = Vec::with_capacity(dead_count);
    for _ in 0..dead_count {
        let v = c.u32()?;
        if v as usize >= n {
            return err(format!("tombstone id {v} out of range (num_nodes {n})"));
        }
        dead_ids.push(v);
    }
    dead_ids.sort_unstable();
    dead_ids.dedup();
    let dead = Bitset::from_sorted_dedup(&dead_ids);
    let mut degrees: Vec<u32> = Vec::with_capacity(n);
    for _ in 0..n {
        degrees.push(c.u32()?);
    }
    let mut fwd: Vec<Vec<NodeId>> = Vec::with_capacity(n);
    for (v, &deg) in degrees.iter().enumerate() {
        let mut adj: Vec<NodeId> = Vec::with_capacity(deg as usize);
        for _ in 0..deg {
            let t = c.u32()?;
            if t as usize >= n {
                return err(format!("edge target {t} out of range (num_nodes {n})"));
            }
            adj.push(t);
        }
        if !adj.windows(2).all(|w| w[0] < w[1]) {
            return err(format!("adjacency of node {v} is not strictly sorted"));
        }
        if dead.contains(v as NodeId) && !adj.is_empty() {
            return err(format!("tombstoned node {v} carries edges"));
        }
        fwd.push(adj);
    }
    if c.pos != payload.len() {
        return err(format!("{} trailing byte(s) after payload", payload.len() - c.pos));
    }
    // a tombstone must not be a *target* either
    for (v, adj) in fwd.iter().enumerate() {
        if let Some(&t) = adj.iter().find(|&&t| dead.contains(t)) {
            return err(format!("edge ({v}, {t}) points at a tombstoned node"));
        }
    }
    Ok((DataGraph::from_parts_dead(labels, fwd, label_names, dead), store_version))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> DataGraph {
        let mut b = GraphBuilder::new();
        let x = b.add_node_with_name(0, "Author");
        let gone = b.add_node_with_name(1, "Paper");
        let y = b.add_node_with_name(1, "Paper");
        let z = b.add_node(2);
        b.add_edge(x, y);
        b.add_edge(y, z);
        b.add_edge(x, z);
        let _ = gone;
        b.build().with_tombstones(Bitset::from_slice(&[1]))
    }

    #[test]
    fn round_trip() {
        let g = sample();
        let bytes = encode_segment(&g, 42);
        let (d, version) = decode_segment(&bytes).expect("decodes");
        assert_eq!(version, 42);
        assert_eq!(d.num_nodes(), g.num_nodes());
        assert_eq!(d.num_edges(), g.num_edges());
        assert_eq!(d.num_labels(), g.num_labels());
        assert_eq!(d.labels(), g.labels());
        assert_eq!(d.label_names(), g.label_names());
        assert_eq!(d.label_id("Paper"), g.label_id("Paper"));
        assert_eq!(d.tombstones().to_vec(), g.tombstones().to_vec());
        for v in 0..g.num_nodes() as NodeId {
            assert_eq!(d.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(d.in_neighbors(v), g.in_neighbors(v));
        }
        for l in 0..g.num_labels() as Label {
            assert_eq!(d.nodes_with_label(l), g.nodes_with_label(l));
        }
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new().build();
        let (d, version) = decode_segment(&encode_segment(&g, 0)).expect("decodes");
        assert_eq!(version, 0);
        assert_eq!(d.num_nodes(), 0);
        assert_eq!(d.num_edges(), 0);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let g = sample();
        let bytes = encode_segment(&g, 7);
        // flip one bit per byte position: decode must fail (or, for flips
        // inside the stored CRC itself, fail the checksum comparison) —
        // never panic, never silently accept
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(decode_segment(&bad).is_err(), "flip at byte {pos} went undetected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let g = sample();
        let bytes = encode_segment(&g, 7);
        for keep in 0..bytes.len() {
            assert!(decode_segment(&bytes[..keep]).is_err(), "truncation to {keep} accepted");
        }
    }

    #[test]
    fn crc32_known_answer() {
        // IEEE CRC-32 of "123456789" is the classic check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
