//! A small FxHash-style hasher so the workspace avoids pulling an extra
//! dependency (see DESIGN.md "Extra dependency justification"). The
//! algorithm is the multiply-rotate word hasher used by rustc; it is weak
//! against adversarial keys but ideal for dense integer ids.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast non-cryptographic hasher for integer-like keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // no collisions expected for sequential keys with this hasher
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn tuple_keys() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        m.insert((1, 2), 3);
        m.insert((2, 1), 4);
        assert_eq!(m[&(1, 2)], 3);
        assert_eq!(m[&(2, 1)], 4);
    }
}
