//! Delta-overlay storage for dynamic data graphs.
//!
//! The immutable CSR [`DataGraph`] is the **base segment**; a
//! [`DeltaOverlay`] layers committed mutations (added/removed nodes and
//! edges, per-label inverted-list patches, label-dictionary growth) on top
//! of it without rebuilding the CSR. A [`Snapshot`] pairs an immutable
//! overlay with a version number: cloning one is O(1) (two `Arc` bumps),
//! so in-flight query runs keep a consistent view of the graph while
//! writers commit further deltas.
//!
//! Overlay reads resolve in one hash probe: a node whose adjacency was
//! never touched by a mutation reads straight from the base CSR slices; a
//! *patched* node reads its full replacement adjacency from the delta.
//! Patches always store complete sorted neighbor lists (not diffs), so
//! every accessor still returns plain `&[NodeId]` slices and the
//! downstream pipeline (simulation, RIG expansion) runs unchanged on
//! either representation.
//!
//! Node ids are **stable for the lifetime of a store**: removing a node
//! tombstones its id (the slot keeps its label but leaves every inverted
//! list and adjacency list), and LSM-style compaction
//! ([`DeltaOverlay::materialize`]) merges the delta into a fresh base
//! *without renumbering*, so match tuples and cached plans remain valid
//! across compactions.

use std::sync::Arc;

use rig_bitset::Bitset;

use crate::io::ParseError;
use crate::{DataGraph, FxHashMap, FxHashSet, Label, NodeId};

// ---------------------------------------------------------------------------
// mutation ops
// ---------------------------------------------------------------------------

/// A label reference in a mutation: a numeric id or a dictionary name
/// (interned on first use, exactly like `GraphBuilder::intern_label`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelSpec {
    Id(Label),
    Named(String),
}

/// One graph mutation, the unit [`DeltaOverlay::apply`] consumes. A
/// committed transaction is a sequence of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationOp {
    /// Add a node with the given label; its id is the next free one.
    AddNode(LabelSpec),
    /// Tombstone a node: drops the node and every incident edge. The id is
    /// never reused.
    RemoveNode(NodeId),
    /// Add the directed edge `(u, v)`. Adding an existing edge is a no-op.
    AddEdge(NodeId, NodeId),
    /// Remove the directed edge `(u, v)`; the edge must exist.
    RemoveEdge(NodeId, NodeId),
}

/// What one committed batch of mutations touched — the input to the
/// session's label-aware plan-cache invalidation.
#[derive(Debug, Default, Clone)]
pub struct CommitImpact {
    /// Labels whose membership or incident adjacency changed: labels of
    /// added/removed nodes and labels of both endpoints of every
    /// added/removed edge.
    pub touched: FxHashSet<Label>,
    /// True when the commit added or removed any *edge* (including edges
    /// dropped by a node removal). Edge mutations can change reachability
    /// between nodes of arbitrary labels, so plans with reachability query
    /// edges must be invalidated on any structural commit; pure node
    /// additions/removals of isolated nodes never create or break paths.
    pub structural: bool,
    pub nodes_added: u64,
    pub nodes_removed: u64,
    pub edges_added: u64,
    pub edges_removed: u64,
}

impl CommitImpact {
    /// 64-bit label-set fingerprint (bit `l mod 64` per touched label) for
    /// the cache sweep's cheap pre-check.
    pub fn touched_mask(&self) -> u64 {
        self.touched.iter().fold(0u64, |m, &l| m | 1u64 << (l & 63))
    }

    /// Total mutation operations recorded.
    pub fn ops(&self) -> u64 {
        self.nodes_added + self.nodes_removed + self.edges_added + self.edges_removed
    }
}

// ---------------------------------------------------------------------------
// the overlay
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct InvertedPatch {
    /// Full sorted live membership of the label under the overlay.
    list: Vec<NodeId>,
    /// The same membership as a bitmap.
    bits: Bitset,
}

/// An in-memory delta over an immutable base [`DataGraph`].
///
/// Mutable only while a commit is being applied; once published inside a
/// [`Snapshot`] (behind an `Arc`) it is frozen. Commits clone the current
/// overlay (O(delta), not O(graph)), apply their ops, and publish a new
/// snapshot.
#[derive(Clone)]
pub struct DeltaOverlay {
    base: Arc<DataGraph>,
    /// Labels of added nodes (node `base_nodes + i` has `added_labels[i]`).
    added_labels: Vec<Label>,
    /// Names of labels beyond the base label space (parallel to label ids
    /// `base_labels..`; empty string = unnamed).
    extra_label_names: Vec<String>,
    /// Name -> id additions (base dictionary is consulted first).
    name_to_label: FxHashMap<String, Label>,
    /// Tombstoned node ids (base or added).
    removed: Bitset,
    /// Full replacement forward adjacency for patched nodes (sorted).
    fwd: FxHashMap<NodeId, Vec<NodeId>>,
    /// Full replacement backward adjacency for patched nodes (sorted).
    bwd: FxHashMap<NodeId, Vec<NodeId>>,
    /// Full replacement inverted lists for labels whose membership changed
    /// (and for every label beyond the base label space).
    inverted: FxHashMap<Label, InvertedPatch>,
    /// Net edge count relative to the base.
    edge_net: i64,
    /// Cumulative operation counters (monotone; drive compaction).
    nodes_added: u64,
    nodes_removed: u64,
    edges_added: u64,
    edges_removed: u64,
}

static EMPTY_IDS: [NodeId; 0] = [];

impl DeltaOverlay {
    /// An empty overlay over `base`.
    pub fn new(base: Arc<DataGraph>) -> DeltaOverlay {
        DeltaOverlay {
            base,
            added_labels: Vec::new(),
            extra_label_names: Vec::new(),
            name_to_label: FxHashMap::default(),
            removed: Bitset::new(),
            fwd: FxHashMap::default(),
            bwd: FxHashMap::default(),
            inverted: FxHashMap::default(),
            edge_net: 0,
            nodes_added: 0,
            nodes_removed: 0,
            edges_added: 0,
            edges_removed: 0,
        }
    }

    /// The base segment.
    pub fn base(&self) -> &Arc<DataGraph> {
        &self.base
    }

    /// True when no mutation has ever been applied.
    pub fn is_empty(&self) -> bool {
        self.ops() == 0
    }

    /// Total mutation operations absorbed since the overlay was created
    /// (the LSM fill statistic compaction policies threshold on).
    pub fn ops(&self) -> u64 {
        self.nodes_added + self.nodes_removed + self.edges_added + self.edges_removed
    }

    /// Nodes added since the overlay was created.
    pub fn nodes_added(&self) -> u64 {
        self.nodes_added
    }

    /// Nodes tombstoned since the overlay was created.
    pub fn nodes_removed(&self) -> u64 {
        self.nodes_removed
    }

    /// Edges added since the overlay was created.
    pub fn edges_added(&self) -> u64 {
        self.edges_added
    }

    /// Edges removed since the overlay was created (including edges
    /// dropped implicitly by node removals).
    pub fn edges_removed(&self) -> u64 {
        self.edges_removed
    }

    // -- graph accessors (overlay view) ------------------------------------

    /// Node-id space size (base slots + added nodes; includes tombstones).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes() + self.added_labels.len()
    }

    /// Live (non-tombstoned) node count.
    pub fn num_live_nodes(&self) -> usize {
        self.base.num_live_nodes() + self.added_labels.len() - self.removed.len() as usize
    }

    /// Edge count under the overlay.
    #[inline]
    pub fn num_edges(&self) -> usize {
        (self.base.num_edges() as i64 + self.edge_net) as usize
    }

    /// Label-space size (base labels + labels grown by the overlay).
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.base.num_labels() + self.extra_label_names.len()
    }

    /// Label of node `v` (tombstoned slots keep their label).
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        let base_n = self.base.num_nodes();
        if (v as usize) < base_n {
            self.base.label(v)
        } else {
            self.added_labels[v as usize - base_n]
        }
    }

    /// True iff `v` is a live node under the overlay.
    pub fn is_live(&self, v: NodeId) -> bool {
        (v as usize) < self.num_nodes()
            && !self.removed.contains(v)
            && ((v as usize) >= self.base.num_nodes() || self.base.is_live(v))
    }

    /// Sorted out-neighbors of `v` under the overlay.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        if let Some(p) = self.fwd.get(&v) {
            return p;
        }
        if (v as usize) < self.base.num_nodes() {
            self.base.out_neighbors(v)
        } else {
            &EMPTY_IDS
        }
    }

    /// Sorted in-neighbors of `v` under the overlay.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        if let Some(p) = self.bwd.get(&v) {
            return p;
        }
        if (v as usize) < self.base.num_nodes() {
            self.base.in_neighbors(v)
        } else {
            &EMPTY_IDS
        }
    }

    /// True iff the edge `(u, v)` exists under the overlay.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Sorted live inverted list of `label` under the overlay.
    #[inline]
    pub fn nodes_with_label(&self, label: Label) -> &[NodeId] {
        if let Some(p) = self.inverted.get(&label) {
            return &p.list;
        }
        self.base.nodes_with_label(label)
    }

    /// The inverted list of `label` as a bitmap.
    #[inline]
    pub fn label_bitset(&self, label: Label) -> &Bitset {
        if let Some(p) = self.inverted.get(&label) {
            return &p.bits;
        }
        self.base.label_bitset(label)
    }

    /// Resolves a label name (overlay additions first, then the base
    /// dictionary).
    pub fn label_id(&self, name: &str) -> Option<Label> {
        self.name_to_label.get(name).copied().or_else(|| self.base.label_id(name))
    }

    /// Human-readable name of `label`, if any.
    pub fn label_name(&self, label: Label) -> &str {
        let base_l = self.base.num_labels();
        if (label as usize) < base_l {
            self.base.label_name(label)
        } else {
            self.extra_label_names.get(label as usize - base_l).map(|s| s.as_str()).unwrap_or("")
        }
    }

    // -- mutation application ----------------------------------------------

    /// Applies one mutation, recording its effect in `impact`. Returns the
    /// assigned node id for [`MutationOp::AddNode`]. Errors leave the
    /// overlay in a consistent state (the failed op itself is atomic);
    /// transactional all-or-nothing semantics are the caller's job (the
    /// session applies ops to a clone and publishes only on full success).
    pub fn apply(
        &mut self,
        op: &MutationOp,
        impact: &mut CommitImpact,
    ) -> Result<Option<NodeId>, String> {
        match op {
            MutationOp::AddNode(spec) => {
                let label = self.resolve_label(spec);
                self.grow_label_space(label);
                let id = self.num_nodes() as NodeId;
                self.added_labels.push(label);
                let base = &self.base;
                let patch = self.inverted.entry(label).or_insert_with(|| {
                    let list = base.nodes_with_label(label).to_vec();
                    let bits = base_label_bits(base, label);
                    InvertedPatch { list, bits }
                });
                // ids grow monotonically, so pushing keeps the list sorted
                patch.list.push(id);
                patch.bits.insert(id);
                self.nodes_added += 1;
                impact.nodes_added += 1;
                impact.touched.insert(label);
                Ok(Some(id))
            }
            MutationOp::RemoveNode(v) => {
                let v = *v;
                if !self.is_live(v) {
                    return Err(format!("remove node {v}: no such live node"));
                }
                let outs: Vec<NodeId> = self.out_neighbors(v).to_vec();
                let ins: Vec<NodeId> = self.in_neighbors(v).to_vec();
                let mut dropped = 0u64;
                for &w in &outs {
                    dropped += 1;
                    impact.touched.insert(self.label(w));
                    if w != v {
                        let patch = self.bwd_patch(w);
                        if let Ok(i) = patch.binary_search(&v) {
                            patch.remove(i);
                        }
                    }
                }
                for &w in &ins {
                    if w == v {
                        continue; // self-loop already counted above
                    }
                    dropped += 1;
                    impact.touched.insert(self.label(w));
                    let patch = self.fwd_patch(w);
                    if let Ok(i) = patch.binary_search(&v) {
                        patch.remove(i);
                    }
                }
                self.fwd.insert(v, Vec::new());
                self.bwd.insert(v, Vec::new());
                self.removed.insert(v);
                let label = self.label(v);
                let patch = self.inverted_patch(label);
                if let Ok(i) = patch.list.binary_search(&v) {
                    patch.list.remove(i);
                }
                patch.bits.remove(v);
                self.edge_net -= dropped as i64;
                self.edges_removed += dropped;
                self.nodes_removed += 1;
                impact.nodes_removed += 1;
                impact.edges_removed += dropped;
                impact.touched.insert(label);
                if dropped > 0 {
                    impact.structural = true;
                }
                Ok(None)
            }
            MutationOp::AddEdge(u, v) => {
                let (u, v) = (*u, *v);
                if !self.is_live(u) {
                    return Err(format!("add edge ({u},{v}): no such live node {u}"));
                }
                if !self.is_live(v) {
                    return Err(format!("add edge ({u},{v}): no such live node {v}"));
                }
                if self.has_edge(u, v) {
                    return Ok(None); // idempotent, mirrors GraphBuilder dedup
                }
                let fp = self.fwd_patch(u);
                let i = fp.binary_search(&v).unwrap_err();
                fp.insert(i, v);
                let bp = self.bwd_patch(v);
                let i = bp.binary_search(&u).unwrap_err();
                bp.insert(i, u);
                self.edge_net += 1;
                self.edges_added += 1;
                impact.edges_added += 1;
                impact.touched.insert(self.label(u));
                impact.touched.insert(self.label(v));
                impact.structural = true;
                Ok(None)
            }
            MutationOp::RemoveEdge(u, v) => {
                let (u, v) = (*u, *v);
                if !self.has_edge(u, v) {
                    return Err(format!("remove edge ({u},{v}): no such edge"));
                }
                let fp = self.fwd_patch(u);
                if let Ok(i) = fp.binary_search(&v) {
                    fp.remove(i);
                }
                let bp = self.bwd_patch(v);
                if let Ok(i) = bp.binary_search(&u) {
                    bp.remove(i);
                }
                self.edge_net -= 1;
                self.edges_removed += 1;
                impact.edges_removed += 1;
                impact.touched.insert(self.label(u));
                impact.touched.insert(self.label(v));
                impact.structural = true;
                Ok(None)
            }
        }
    }

    fn resolve_label(&mut self, spec: &LabelSpec) -> Label {
        match spec {
            LabelSpec::Id(l) => *l,
            LabelSpec::Named(name) => {
                if let Some(l) = self.label_id(name) {
                    return l;
                }
                let l = self.num_labels() as Label;
                self.grow_label_space(l);
                self.extra_label_names[l as usize - self.base.num_labels()] = name.clone();
                self.name_to_label.insert(name.clone(), l);
                l
            }
        }
    }

    /// Extends the label space so `label` is a valid id; every label beyond
    /// the base space gets an (initially empty) inverted patch so the
    /// bitmap accessor has something to hand out.
    fn grow_label_space(&mut self, label: Label) {
        let base_l = self.base.num_labels();
        while self.num_labels() <= label as usize {
            let l = self.num_labels() as Label;
            debug_assert!(l as usize >= base_l);
            self.extra_label_names.push(String::new());
            self.inverted.insert(l, InvertedPatch { list: Vec::new(), bits: Bitset::new() });
        }
    }

    fn fwd_patch(&mut self, v: NodeId) -> &mut Vec<NodeId> {
        let base = &self.base;
        self.fwd.entry(v).or_insert_with(|| {
            if (v as usize) < base.num_nodes() {
                base.out_neighbors(v).to_vec()
            } else {
                Vec::new()
            }
        })
    }

    fn bwd_patch(&mut self, v: NodeId) -> &mut Vec<NodeId> {
        let base = &self.base;
        self.bwd.entry(v).or_insert_with(|| {
            if (v as usize) < base.num_nodes() {
                base.in_neighbors(v).to_vec()
            } else {
                Vec::new()
            }
        })
    }

    fn inverted_patch(&mut self, label: Label) -> &mut InvertedPatch {
        let base = &self.base;
        self.inverted.entry(label).or_insert_with(|| InvertedPatch {
            list: base.nodes_with_label(label).to_vec(),
            bits: base_label_bits(base, label),
        })
    }

    // -- random mutation workloads -----------------------------------------

    /// Generates one *valid* random mutation against this overlay's
    /// current state, advancing the xorshift64\* `state`. Weighted toward
    /// edge churn (4 add-edge : 3 remove-edge : 2 add-node : 1
    /// remove-node); returns `None` when the drawn kind has no valid
    /// target (e.g. removing an edge from an empty graph).
    ///
    /// This is the single source of the mutation workload shared by the
    /// update-vs-rebuild differential suite and the `bench_updates`
    /// harness: generate against a scratch clone, [`DeltaOverlay::apply`]
    /// there to validate, and stage accepted ops on the real transaction.
    pub fn random_mutation(&self, state: &mut u64, num_labels: Label) -> Option<MutationOp> {
        let n = self.num_nodes() as NodeId;
        if n == 0 {
            return Some(MutationOp::AddNode(LabelSpec::Id(0)));
        }
        let pick_live = |state: &mut u64| {
            (0..32).map(|_| (xorshift(state) % n as u64) as NodeId).find(|&v| self.is_live(v))
        };
        match xorshift(state) % 10 {
            0 | 1 => Some(MutationOp::AddNode(LabelSpec::Id(
                (xorshift(state) % num_labels.max(1) as u64) as Label,
            ))),
            2 => pick_live(state).map(MutationOp::RemoveNode),
            3..=6 => {
                let u = pick_live(state)?;
                let v = pick_live(state)?;
                Some(MutationOp::AddEdge(u, v))
            }
            _ => {
                // remove an edge surviving near a random probe point
                for _ in 0..32 {
                    let u = (xorshift(state) % n as u64) as NodeId;
                    let outs = self.out_neighbors(u);
                    if !outs.is_empty() {
                        let v = outs[(xorshift(state) % outs.len() as u64) as usize];
                        return Some(MutationOp::RemoveEdge(u, v));
                    }
                }
                None
            }
        }
    }

    // -- compaction ---------------------------------------------------------

    /// Merges the overlay into a fresh id-stable base segment: same node
    /// ids (tombstones preserved as label-keeping dead slots), same label
    /// ids, rebuilt CSR + inverted lists. This is both the LSM compaction
    /// step and the differential-test oracle ("rebuild from scratch").
    pub fn materialize(&self) -> DataGraph {
        let n = self.num_nodes();
        let labels: Vec<Label> = (0..n as NodeId).map(|v| self.label(v)).collect();
        let fwd: Vec<Vec<NodeId>> =
            (0..n as NodeId).map(|v| self.out_neighbors(v).to_vec()).collect();
        let mut names: Vec<String> = self.base.label_names().to_vec();
        names.resize(self.base.num_labels(), String::new());
        names.extend(self.extra_label_names.iter().cloned());
        let mut dead = self.base.tombstones().clone();
        for v in self.removed.iter() {
            dead.insert(v);
        }
        DataGraph::from_parts_dead(labels, fwd, names, dead)
    }
}

/// xorshift64* step (Vigna): dependency-free deterministic randomness for
/// [`DeltaOverlay::random_mutation`]. A zero state is nudged to a fixed
/// non-zero seed.
fn xorshift(state: &mut u64) -> u64 {
    if *state == 0 {
        *state = 0x9E37_79B9_7F4A_7C15;
    }
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A deterministic, self-validating transaction stream over an evolving
/// graph: seeded xorshift64\* drives [`DeltaOverlay::random_mutation`]
/// against an internal mirror overlay, so every generated op is valid at
/// the point it is produced and the whole sequence is a pure function of
/// `(base graph, seed)`.
///
/// This is the shared workload of the durability layer's kill-and-recover
/// differential suite, the crash-recovery proptests, and `bench_storage`:
/// the writer under test and the verifying reference both replay *the
/// same* commit sequence from the same seed, so "the store holding exactly
/// the first `k` transactions" is reproducible anywhere.
pub struct MutationStream {
    mirror: DeltaOverlay,
    state: u64,
    num_labels: Label,
}

impl MutationStream {
    /// A stream over `base` driven by `seed`.
    pub fn new(base: Arc<DataGraph>, seed: u64) -> MutationStream {
        let num_labels = (base.num_labels() as Label).max(1);
        MutationStream { mirror: DeltaOverlay::new(base), state: seed, num_labels }
    }

    /// Generates the next transaction: between 1 and `max_ops` mutations,
    /// each validated against (and applied to) the internal mirror so
    /// later transactions stay valid on the evolving graph.
    pub fn next_txn(&mut self, max_ops: usize) -> Vec<MutationOp> {
        let want = 1 + (xorshift(&mut self.state) % max_ops.max(1) as u64) as usize;
        let mut ops = Vec::with_capacity(want);
        let mut attempts = 0;
        while ops.len() < want && attempts < want * 64 {
            attempts += 1;
            let Some(op) = self.mirror.random_mutation(&mut self.state, self.num_labels) else {
                continue;
            };
            let mut impact = CommitImpact::default();
            if self.mirror.apply(&op, &mut impact).is_ok() && impact.ops() > 0 {
                ops.push(op);
            }
        }
        if ops.is_empty() {
            // degenerate graphs can starve the sampler; an AddNode is
            // always valid and keeps every transaction non-empty
            let op = MutationOp::AddNode(LabelSpec::Id(0));
            let mut impact = CommitImpact::default();
            self.mirror.apply(&op, &mut impact).expect("AddNode is always valid");
            ops.push(op);
        }
        ops
    }

    /// The mirror overlay: the graph state after every transaction
    /// generated so far (the reference a recovered store is compared to).
    pub fn mirror(&self) -> &DeltaOverlay {
        &self.mirror
    }
}

fn base_label_bits(base: &DataGraph, label: Label) -> Bitset {
    if (label as usize) < base.num_labels() {
        base.label_bitset(label).clone()
    } else {
        Bitset::new()
    }
}

impl std::fmt::Debug for DeltaOverlay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DeltaOverlay(+{}n -{}n +{}e -{}e over {:?})",
            self.nodes_added, self.nodes_removed, self.edges_added, self.edges_removed, self.base
        )
    }
}

// ---------------------------------------------------------------------------
// snapshots
// ---------------------------------------------------------------------------

/// An immutable, versioned view of a (possibly mutated) data graph:
/// `Arc<base CSR>` + `Arc<frozen delta>`. Cloning is O(1); every query run
/// executes against exactly one snapshot, so concurrent commits never
/// change the data mid-enumeration.
#[derive(Clone)]
pub struct Snapshot {
    delta: Arc<DeltaOverlay>,
    version: u64,
}

impl Snapshot {
    /// A version-0 snapshot of an unmutated graph.
    pub fn clean(base: impl Into<Arc<DataGraph>>) -> Snapshot {
        Snapshot { delta: Arc::new(DeltaOverlay::new(base.into())), version: 0 }
    }

    /// Wraps a frozen overlay at `version`.
    pub fn new(delta: Arc<DeltaOverlay>, version: u64) -> Snapshot {
        Snapshot { delta, version }
    }

    /// The store version this snapshot was published at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The base segment.
    pub fn base(&self) -> &Arc<DataGraph> {
        self.delta.base()
    }

    /// The delta overlay.
    pub fn delta(&self) -> &Arc<DeltaOverlay> {
        &self.delta
    }

    /// True when the delta holds any mutation — the signal for the
    /// pipeline to switch reachability work off the base-only BFL index.
    #[inline]
    pub fn is_dirty(&self) -> bool {
        !self.delta.is_empty()
    }

    /// See [`DeltaOverlay::materialize`].
    pub fn materialize(&self) -> DataGraph {
        self.delta.materialize()
    }

    // forwarded accessors
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.delta.num_nodes()
    }
    pub fn num_live_nodes(&self) -> usize {
        self.delta.num_live_nodes()
    }
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.delta.num_edges()
    }
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.delta.num_labels()
    }
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.delta.label(v)
    }
    pub fn is_live(&self, v: NodeId) -> bool {
        self.delta.is_live(v)
    }
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.delta.out_neighbors(v)
    }
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.delta.in_neighbors(v)
    }
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.delta.has_edge(u, v)
    }
    #[inline]
    pub fn nodes_with_label(&self, label: Label) -> &[NodeId] {
        self.delta.nodes_with_label(label)
    }
    #[inline]
    pub fn label_bitset(&self, label: Label) -> &Bitset {
        self.delta.label_bitset(label)
    }
    pub fn label_id(&self, name: &str) -> Option<Label> {
        self.delta.label_id(name)
    }
    pub fn label_name(&self, label: Label) -> &str {
        self.delta.label_name(label)
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Snapshot(v{}, |V|={} ({} live), |E|={}, |L|={}{})",
            self.version,
            self.num_nodes(),
            self.num_live_nodes(),
            self.num_edges(),
            self.num_labels(),
            if self.is_dirty() { ", dirty" } else { "" }
        )
    }
}

// ---------------------------------------------------------------------------
// mutation scripts (the CLI `--mutations` file format)
// ---------------------------------------------------------------------------

/// Parses a mutation script into commit segments. Line format:
///
/// ```text
/// a v <label-or-name>    # add node (id = next free id)
/// a e <u> <v>            # add edge
/// d v <id>               # delete node (and its incident edges)
/// d e <u> <v>            # delete edge
/// commit                 # commit boundary; EOF implies a final commit
/// # comment
/// ```
///
/// Returns one `Vec<MutationOp>` per commit. A trailing `commit` does not
/// produce an empty segment; an empty script yields no segments.
pub fn parse_mutations(input: &str) -> Result<Vec<Vec<MutationOp>>, ParseError> {
    let err = |line: usize, message: String| ParseError { line, message };
    let mut segments: Vec<Vec<MutationOp>> = Vec::new();
    let mut current: Vec<MutationOp> = Vec::new();
    for (ln, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "commit" {
            if !current.is_empty() {
                segments.push(std::mem::take(&mut current));
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let op = match (parts.next(), parts.next()) {
            (Some("a"), Some("v")) => {
                let tok = parts.next().ok_or_else(|| err(ln + 1, "a v: missing label".into()))?;
                let spec = match tok.parse::<Label>() {
                    Ok(id) => LabelSpec::Id(id),
                    Err(_) => LabelSpec::Named(tok.to_string()),
                };
                MutationOp::AddNode(spec)
            }
            (Some("d"), Some("v")) => {
                let id: NodeId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln + 1, "d v: bad node id".into()))?;
                MutationOp::RemoveNode(id)
            }
            (Some(a @ ("a" | "d")), Some("e")) => {
                let u: NodeId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln + 1, format!("{a} e: bad edge source")))?;
                let v: NodeId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln + 1, format!("{a} e: bad edge target")))?;
                if a == "a" {
                    MutationOp::AddEdge(u, v)
                } else {
                    MutationOp::RemoveEdge(u, v)
                }
            }
            (Some(tok), _) => return Err(err(ln + 1, format!("unknown mutation record '{tok}'"))),
            (None, _) => continue,
        };
        if parts.next().is_some() {
            return Err(err(ln + 1, "trailing tokens on mutation line".into()));
        }
        current.push(op);
    }
    if !current.is_empty() {
        segments.push(current);
    }
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn small_base() -> Arc<DataGraph> {
        // 0:A 1:A 2:B 3:C with 0->2, 1->2, 2->3
        let mut b = GraphBuilder::new();
        let a0 = b.add_node_with_name(0, "A");
        let a1 = b.add_node_with_name(0, "A");
        let b0 = b.add_node_with_name(1, "B");
        let c0 = b.add_node_with_name(2, "C");
        b.add_edge(a0, b0);
        b.add_edge(a1, b0);
        b.add_edge(b0, c0);
        Arc::new(b.build())
    }

    fn apply_all(d: &mut DeltaOverlay, ops: &[MutationOp]) -> CommitImpact {
        let mut impact = CommitImpact::default();
        for op in ops {
            d.apply(op, &mut impact).unwrap();
        }
        impact
    }

    #[test]
    fn empty_overlay_mirrors_base() {
        let base = small_base();
        let d = DeltaOverlay::new(Arc::clone(&base));
        assert!(d.is_empty());
        assert_eq!(d.num_nodes(), 4);
        assert_eq!(d.num_edges(), 3);
        assert_eq!(d.num_labels(), 3);
        assert_eq!(d.out_neighbors(0), base.out_neighbors(0));
        assert_eq!(d.nodes_with_label(0), &[0, 1]);
        assert_eq!(d.label_id("B"), Some(1));
    }

    #[test]
    fn add_node_and_edges() {
        let base = small_base();
        let mut d = DeltaOverlay::new(base);
        let mut impact = CommitImpact::default();
        let id = d.apply(&MutationOp::AddNode(LabelSpec::Id(0)), &mut impact).unwrap().unwrap();
        assert_eq!(id, 4);
        d.apply(&MutationOp::AddEdge(4, 2), &mut impact).unwrap();
        assert_eq!(d.num_nodes(), 5);
        assert_eq!(d.num_edges(), 4);
        assert_eq!(d.out_neighbors(4), &[2]);
        assert!(d.in_neighbors(2).contains(&4));
        assert_eq!(d.nodes_with_label(0), &[0, 1, 4]);
        assert_eq!(d.label_bitset(0).to_vec(), vec![0, 1, 4]);
        assert!(impact.structural);
        assert_eq!(impact.nodes_added, 1);
        assert_eq!(impact.edges_added, 1);
        assert!(impact.touched.contains(&0) && impact.touched.contains(&1));
    }

    #[test]
    fn add_edge_is_idempotent_and_checks_endpoints() {
        let base = small_base();
        let mut d = DeltaOverlay::new(base);
        let mut impact = CommitImpact::default();
        d.apply(&MutationOp::AddEdge(0, 2), &mut impact).unwrap(); // exists: no-op
        assert_eq!(impact.edges_added, 0);
        assert_eq!(d.num_edges(), 3);
        assert!(d.apply(&MutationOp::AddEdge(0, 9), &mut impact).is_err());
        assert!(d.apply(&MutationOp::RemoveEdge(0, 3), &mut impact).is_err());
    }

    #[test]
    fn remove_edge_patches_both_sides() {
        let base = small_base();
        let mut d = DeltaOverlay::new(base);
        let impact = apply_all(&mut d, &[MutationOp::RemoveEdge(1, 2)]);
        assert!(!d.has_edge(1, 2));
        assert!(d.has_edge(0, 2));
        assert_eq!(d.in_neighbors(2), &[0]);
        assert_eq!(d.out_neighbors(1), &[] as &[NodeId]);
        assert_eq!(d.num_edges(), 2);
        assert!(impact.structural);
    }

    #[test]
    fn remove_node_tombstones_and_strips_edges() {
        let base = small_base();
        let mut d = DeltaOverlay::new(base);
        let impact = apply_all(&mut d, &[MutationOp::RemoveNode(2)]);
        assert!(!d.is_live(2));
        assert_eq!(d.num_live_nodes(), 3);
        assert_eq!(d.num_nodes(), 4, "ids are stable");
        assert_eq!(d.num_edges(), 0);
        assert_eq!(d.out_neighbors(0), &[] as &[NodeId]);
        assert_eq!(d.out_neighbors(2), &[] as &[NodeId]);
        assert_eq!(d.nodes_with_label(1), &[] as &[NodeId]);
        assert_eq!(impact.edges_removed, 3);
        assert!(impact.structural);
        // removing again fails; edges to it fail
        let mut im = CommitImpact::default();
        assert!(d.apply(&MutationOp::RemoveNode(2), &mut im).is_err());
        assert!(d.apply(&MutationOp::AddEdge(0, 2), &mut im).is_err());
    }

    #[test]
    fn isolated_node_ops_are_not_structural() {
        let base = small_base();
        let mut d = DeltaOverlay::new(base);
        let mut impact = CommitImpact::default();
        let id = d
            .apply(&MutationOp::AddNode(LabelSpec::Named("D".into())), &mut impact)
            .unwrap()
            .unwrap();
        d.apply(&MutationOp::RemoveNode(id), &mut impact).unwrap();
        assert!(!impact.structural, "isolated add/remove cannot change reachability");
        assert_eq!(d.label_id("D"), Some(3));
        assert_eq!(d.num_labels(), 4);
        assert_eq!(d.nodes_with_label(3), &[] as &[NodeId]);
    }

    #[test]
    fn named_label_growth_and_numeric_growth() {
        let base = small_base();
        let mut d = DeltaOverlay::new(base);
        let mut impact = CommitImpact::default();
        let x = d
            .apply(&MutationOp::AddNode(LabelSpec::Named("X".into())), &mut impact)
            .unwrap()
            .unwrap();
        assert_eq!(d.label(x), 3);
        assert_eq!(d.label_name(3), "X");
        // same name -> same id
        let y = d
            .apply(&MutationOp::AddNode(LabelSpec::Named("X".into())), &mut impact)
            .unwrap()
            .unwrap();
        assert_eq!(d.label(y), 3);
        // numeric growth past the end creates intermediate empty labels
        let z = d.apply(&MutationOp::AddNode(LabelSpec::Id(6)), &mut impact).unwrap().unwrap();
        assert_eq!(d.label(z), 6);
        assert_eq!(d.num_labels(), 7);
        assert!(d.nodes_with_label(5).is_empty());
        // existing base name resolves to the base id
        let a = d
            .apply(&MutationOp::AddNode(LabelSpec::Named("A".into())), &mut impact)
            .unwrap()
            .unwrap();
        assert_eq!(d.label(a), 0);
    }

    #[test]
    fn materialize_is_id_stable_and_equivalent() {
        let base = small_base();
        let mut d = DeltaOverlay::new(Arc::clone(&base));
        apply_all(
            &mut d,
            &[
                MutationOp::AddNode(LabelSpec::Id(1)), // id 4
                MutationOp::AddEdge(0, 4),
                MutationOp::RemoveNode(2),
                MutationOp::AddEdge(4, 3),
            ],
        );
        let m = d.materialize();
        assert_eq!(m.num_nodes(), d.num_nodes());
        assert_eq!(m.num_edges(), d.num_edges());
        assert_eq!(m.num_labels(), d.num_labels());
        for v in 0..d.num_nodes() as NodeId {
            assert_eq!(m.label(v), d.label(v), "label({v})");
            assert_eq!(m.out_neighbors(v), d.out_neighbors(v), "adjf({v})");
            assert_eq!(m.in_neighbors(v), d.in_neighbors(v), "adjb({v})");
            assert_eq!(m.is_live(v), d.is_live(v), "live({v})");
        }
        for l in 0..d.num_labels() as Label {
            assert_eq!(m.nodes_with_label(l), d.nodes_with_label(l), "I_{l}");
            assert_eq!(m.label_bitset(l).to_vec(), d.label_bitset(l).to_vec());
        }
        assert_eq!(m.label_id("A"), Some(0));
        // a second-generation overlay over the compacted base still works
        let mut d2 = DeltaOverlay::new(Arc::new(m));
        let mut im = CommitImpact::default();
        assert!(d2.apply(&MutationOp::AddEdge(0, 2), &mut im).is_err(), "2 stays dead");
        d2.apply(&MutationOp::AddEdge(3, 0), &mut im).unwrap();
        assert!(d2.has_edge(3, 0));
    }

    #[test]
    fn snapshot_is_cheap_and_consistent() {
        let base = small_base();
        let snap0 = Snapshot::clean(Arc::clone(&base));
        assert!(!snap0.is_dirty());
        assert_eq!(snap0.version(), 0);
        let mut d = DeltaOverlay::new(base);
        apply_all(&mut d, &[MutationOp::RemoveEdge(0, 2)]);
        let snap1 = Snapshot::new(Arc::new(d), 1);
        // the old snapshot still sees the edge; the new one does not
        assert!(snap0.has_edge(0, 2));
        assert!(!snap1.has_edge(0, 2));
        assert!(snap1.is_dirty());
        let clone = snap1.clone();
        assert_eq!(clone.num_edges(), snap1.num_edges());
    }

    #[test]
    fn parse_mutation_scripts() {
        let script = "\
# add a node and wire it up
a v Author
a e 0 2
commit
d e 1 2
d v 3
commit
a v 7
";
        let segs = parse_mutations(script).unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!(
            segs[0],
            vec![MutationOp::AddNode(LabelSpec::Named("Author".into())), MutationOp::AddEdge(0, 2)]
        );
        assert_eq!(segs[1], vec![MutationOp::RemoveEdge(1, 2), MutationOp::RemoveNode(3)]);
        assert_eq!(segs[2], vec![MutationOp::AddNode(LabelSpec::Id(7))]);
        assert!(parse_mutations("q 1 2\n").is_err());
        assert!(parse_mutations("a e 1\n").is_err());
        assert!(parse_mutations("a v 1 2\n").is_err());
        assert!(parse_mutations("").unwrap().is_empty());
        assert!(parse_mutations("commit\ncommit\n").unwrap().is_empty());
    }
}
