//! Directed, node-labeled data graphs (§2 of the paper).
//!
//! The data graph is stored in compressed sparse row (CSR) form in both
//! directions, with sorted neighbor slices so that `has_edge` is a binary
//! search and adjacency slices convert to [`rig_bitset::Bitset`] without a
//! sort. Per-label *inverted lists* (`I_a` in the paper) are precomputed at
//! build time, both as sorted vectors and as bitmaps, because every stage of
//! the pipeline (match sets, simulation, RIG construction) starts from them.

mod builder;
pub mod delta;
mod hash;
mod io;
mod segment;
mod stats;
mod view;

pub use builder::GraphBuilder;
pub use delta::{
    parse_mutations, CommitImpact, DeltaOverlay, LabelSpec, MutationOp, MutationStream, Snapshot,
};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use io::{parse_text, to_text, ParseError};
pub use segment::{crc32, decode_segment, encode_segment, SegmentError, SEGMENT_MAGIC};
pub use stats::{GraphStats, LabelPairCounts};
pub use view::GraphView;

use rig_bitset::Bitset;

/// Node identifier: dense index into the graph's node arrays.
pub type NodeId = u32;

/// Node label identifier: dense index into the graph's label table.
pub type Label = u32;

/// An immutable directed node-labeled data graph.
///
/// Construct via [`GraphBuilder`] or [`parse_text`]. Node ids are dense
/// `0..num_nodes`; labels are dense `0..num_labels`.
///
/// ```
/// use rig_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let x = b.add_node(0);
/// let y = b.add_node(1);
/// b.add_edge(x, y);
/// let g = b.build();
/// assert!(g.has_edge(x, y));
/// assert_eq!(g.out_neighbors(x), &[y]);
/// assert_eq!(g.nodes_with_label(1), &[y]);
/// ```
#[derive(Clone)]
pub struct DataGraph {
    /// `labels[v]` is the label of node `v`.
    labels: Vec<Label>,
    /// CSR offsets / targets, forward direction; `fwd_targets` slices sorted.
    fwd_offsets: Vec<u64>,
    fwd_targets: Vec<NodeId>,
    /// CSR offsets / targets, backward direction; sorted.
    bwd_offsets: Vec<u64>,
    bwd_targets: Vec<NodeId>,
    /// Inverted lists: `inverted[l]` = sorted nodes labeled `l`.
    inverted: Vec<Vec<NodeId>>,
    /// Same inverted lists as bitmaps.
    inverted_bits: Vec<Bitset>,
    /// Optional human-readable label names (parallel to label ids).
    label_names: Vec<String>,
    /// Reverse dictionary: label name -> id (only named labels appear).
    name_to_label: FxHashMap<String, Label>,
    /// Tombstoned node ids: slots that keep their label but are excluded
    /// from every inverted list and carry no edges. Produced by delta
    /// compaction ([`delta::DeltaOverlay::materialize`]) so node ids stay
    /// stable across node removals; empty for ordinary graphs.
    dead: Bitset,
}

impl DataGraph {
    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.fwd_targets.len()
    }

    /// Number of distinct labels `|L|`.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.inverted.len()
    }

    /// True iff `v` is not tombstoned. Ordinary (builder/parser-produced)
    /// graphs have no tombstones, so this is `true` for every node.
    #[inline]
    pub fn is_live(&self, v: NodeId) -> bool {
        self.dead.is_empty() || !self.dead.contains(v)
    }

    /// Number of live nodes (`num_nodes` minus tombstones).
    pub fn num_live_nodes(&self) -> usize {
        self.num_nodes() - self.dead.len() as usize
    }

    /// The tombstoned node ids.
    pub fn tombstones(&self) -> &Bitset {
        &self.dead
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Label of node `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v as usize]
    }

    /// All node labels, indexed by node id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Human-readable name of `label`, if one was supplied at build time.
    pub fn label_name(&self, label: Label) -> &str {
        self.label_names.get(label as usize).map(|s| s.as_str()).unwrap_or("")
    }

    /// All label names, indexed by label id (empty string = unnamed).
    pub fn label_names(&self) -> &[String] {
        &self.label_names
    }

    /// Resolves a label name back to its id through the label-name
    /// dictionary (O(1) hash lookup).
    pub fn label_id(&self, name: &str) -> Option<Label> {
        self.name_to_label.get(name).copied()
    }

    /// True iff any label carries a name (i.e. the graph was built with a
    /// label dictionary).
    pub fn has_label_names(&self) -> bool {
        !self.name_to_label.is_empty()
    }

    /// Sorted out-neighbors of `v` (the forward adjacency list `adjf`).
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.fwd_offsets[v as usize] as usize;
        let hi = self.fwd_offsets[v as usize + 1] as usize;
        &self.fwd_targets[lo..hi]
    }

    /// Sorted in-neighbors of `v` (the backward adjacency list `adjb`).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.bwd_offsets[v as usize] as usize;
        let hi = self.bwd_offsets[v as usize + 1] as usize;
        &self.bwd_targets[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// True iff the edge `(u, v)` exists (binary search on CSR slice).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Sorted inverted list `I_label`: all nodes labeled `label`.
    #[inline]
    pub fn nodes_with_label(&self, label: Label) -> &[NodeId] {
        static EMPTY: [NodeId; 0] = [];
        self.inverted.get(label as usize).map(|v| v.as_slice()).unwrap_or(&EMPTY)
    }

    /// The inverted list of `label` as a bitmap (the match set `ms(q)` of a
    /// query node labeled `label`).
    pub fn label_bitset(&self, label: Label) -> &Bitset {
        &self.inverted_bits[label as usize]
    }

    /// Out-neighbors of `v` as a freshly built bitmap.
    pub fn out_bitset(&self, v: NodeId) -> Bitset {
        Bitset::from_sorted_dedup(self.out_neighbors(v))
    }

    /// In-neighbors of `v` as a freshly built bitmap.
    pub fn in_bitset(&self, v: NodeId) -> Bitset {
        Bitset::from_sorted_dedup(self.in_neighbors(v))
    }

    /// Materializes per-node adjacency bitmaps (both directions) for the
    /// batch simulation checks of §4.5. O(|V| + |E|) time and memory.
    pub fn build_adjacency_bitmaps(&self) -> AdjacencyBitmaps {
        let n = self.num_nodes();
        let mut fwd = Vec::with_capacity(n);
        let mut bwd = Vec::with_capacity(n);
        for v in 0..n as NodeId {
            fwd.push(Bitset::from_sorted_dedup(self.out_neighbors(v)));
            bwd.push(Bitset::from_sorted_dedup(self.in_neighbors(v)));
        }
        AdjacencyBitmaps { fwd, bwd }
    }

    /// Iterator over all edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes() as NodeId)
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// The node-induced subgraph on `keep` (node ids are re-densified in
    /// ascending order of the original ids). Used by the Fig. 11 scalability
    /// experiment (prefix subsets of DBLP) and the Fig. 18 email fragments.
    pub fn induced_subgraph(&self, keep: &Bitset) -> DataGraph {
        let mut remap: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        let mut b = GraphBuilder::new();
        for (new_id, old_id) in keep.iter().filter(|&v| self.is_live(v)).enumerate() {
            remap.insert(old_id, new_id as NodeId);
            b.add_node_with_name(self.label(old_id), self.label_name(self.label(old_id)));
        }
        for old_u in keep.iter() {
            // tombstoned ids in `keep` have no remap entry (filtered above)
            let Some(&nu) = remap.get(&old_u) else { continue };
            for &old_v in self.out_neighbors(old_u) {
                if let Some(&nv) = remap.get(&old_v) {
                    b.add_edge(nu, nv);
                }
            }
        }
        b.build()
    }

    /// Returns a copy of the graph with labels reassigned by `f`. Used by
    /// the Fig. 10 / Fig. 18 varying-label experiments.
    pub fn relabel(&self, f: impl Fn(NodeId, Label) -> Label) -> DataGraph {
        let mut b = GraphBuilder::new();
        for v in 0..self.num_nodes() as NodeId {
            b.add_node(f(v, self.label(v)));
        }
        for (u, v) in self.edges() {
            b.add_edge(u, v);
        }
        b.build().with_tombstones(self.dead.clone())
    }

    /// Summary statistics.
    pub fn stats(&self) -> GraphStats {
        GraphStats::of(self)
    }

    pub(crate) fn from_parts(
        labels: Vec<Label>,
        fwd: Vec<Vec<NodeId>>,
        label_names: Vec<String>,
    ) -> Self {
        Self::from_parts_dead(labels, fwd, label_names, Bitset::new())
    }

    /// Like `from_parts`, with an explicit tombstone set: dead slots keep
    /// their label (so the label space is stable) but are excluded from
    /// the inverted lists, and must carry no edges.
    pub(crate) fn from_parts_dead(
        labels: Vec<Label>,
        fwd: Vec<Vec<NodeId>>,
        label_names: Vec<String>,
        dead: Bitset,
    ) -> Self {
        let n = labels.len();
        debug_assert!(
            dead.iter().all(|v| (v as usize) < n && fwd[v as usize].is_empty()),
            "tombstones must be in range and edge-free"
        );
        let mut fwd_offsets = Vec::with_capacity(n + 1);
        let mut fwd_targets = Vec::new();
        fwd_offsets.push(0);
        for adj in &fwd {
            fwd_targets.extend_from_slice(adj);
            fwd_offsets.push(fwd_targets.len() as u64);
        }
        // backward CSR
        let mut bwd_counts = vec![0u64; n];
        for &t in &fwd_targets {
            bwd_counts[t as usize] += 1;
        }
        let mut bwd_offsets = Vec::with_capacity(n + 1);
        bwd_offsets.push(0u64);
        for c in &bwd_counts {
            bwd_offsets.push(bwd_offsets.last().unwrap() + c);
        }
        let mut cursor = bwd_offsets.clone();
        let mut bwd_targets = vec![0 as NodeId; fwd_targets.len()];
        for (u, adj) in fwd.iter().enumerate() {
            for &v in adj {
                bwd_targets[cursor[v as usize] as usize] = u as NodeId;
                cursor[v as usize] += 1;
            }
        }
        // in-neighbor slices must be sorted: sources are visited in
        // ascending order, so each slice is already sorted.
        // The label space covers named-but-unpopulated labels too (their
        // inverted lists stay empty): a dictionary entry like `l 2 X` on a
        // graph whose nodes only use labels 0..2 must survive, so that
        // `(v:X)` queries validate and produce the (empty) answer instead
        // of an unknown-label error.
        let num_labels =
            labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0).max(label_names.len());
        let mut inverted: Vec<Vec<NodeId>> = vec![Vec::new(); num_labels];
        for (v, &l) in labels.iter().enumerate() {
            if dead.is_empty() || !dead.contains(v as NodeId) {
                inverted[l as usize].push(v as NodeId);
            }
        }
        let inverted_bits = inverted.iter().map(|list| Bitset::from_sorted_dedup(list)).collect();
        let mut names = label_names;
        names.resize(num_labels, String::new());
        let mut name_to_label = FxHashMap::default();
        for (l, name) in names.iter().enumerate() {
            if !name.is_empty() {
                name_to_label.entry(name.clone()).or_insert(l as Label);
            }
        }
        DataGraph {
            labels,
            fwd_offsets,
            fwd_targets,
            bwd_offsets,
            bwd_targets,
            inverted,
            inverted_bits,
            label_names: names,
            name_to_label,
            dead,
        }
    }

    /// Returns this graph with `dead` tombstoned: the slots keep their
    /// labels but leave every inverted list. All tombstones must be
    /// edge-free — [`parse_text`] enforces this for `x` lines.
    pub(crate) fn with_tombstones(mut self, dead: Bitset) -> DataGraph {
        for v in dead.iter() {
            let l = self.labels[v as usize] as usize;
            if let Ok(i) = self.inverted[l].binary_search(&v) {
                self.inverted[l].remove(i);
            }
            self.inverted_bits[l].remove(v);
        }
        self.dead = dead;
        self
    }
}

impl std::fmt::Debug for DataGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.dead.is_empty() {
            write!(
                f,
                "DataGraph(|V|={}, |E|={}, |L|={})",
                self.num_nodes(),
                self.num_edges(),
                self.num_labels()
            )
        } else {
            write!(
                f,
                "DataGraph(|V|={} ({} live), |E|={}, |L|={})",
                self.num_nodes(),
                self.num_live_nodes(),
                self.num_edges(),
                self.num_labels()
            )
        }
    }
}

/// Materialized per-node adjacency bitmaps (forward and backward).
pub struct AdjacencyBitmaps {
    pub fwd: Vec<Bitset>,
    pub bwd: Vec<Bitset>,
}

impl AdjacencyBitmaps {
    /// Union of forward adjacency bitmaps of all nodes in `sources`.
    pub fn union_fwd(&self, sources: &Bitset) -> Bitset {
        let mut acc = Bitset::new();
        for v in sources.iter() {
            acc.or_assign(&self.fwd[v as usize]);
        }
        acc
    }

    /// Union of backward adjacency bitmaps of all nodes in `sources`.
    pub fn union_bwd(&self, sources: &Bitset) -> Bitset {
        let mut acc = Bitset::new();
        for v in sources.iter() {
            acc.or_assign(&self.bwd[v as usize]);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The data graph G of Fig. 2(b): labels a, b, c with subscripts.
    /// Edges chosen to satisfy the paper's example answer:
    /// os(A) = {a1, a2}, os((A,B)) = {(a1,b0), (a2,b2)}.
    pub fn fig2_graph() -> DataGraph {
        // nodes: a0 a1 a2 b0 b1 b2 b3 c0 c1 c2
        let mut b = GraphBuilder::new();
        let a = 0;
        let bb = 1;
        let c = 2;
        let a0 = b.add_node_with_name(a, "a");
        let a1 = b.add_node_with_name(a, "a");
        let a2 = b.add_node_with_name(a, "a");
        let b0 = b.add_node_with_name(bb, "b");
        let b1 = b.add_node_with_name(bb, "b");
        let b2 = b.add_node_with_name(bb, "b");
        let b3 = b.add_node_with_name(bb, "b");
        let c0 = b.add_node_with_name(c, "c");
        let c1 = b.add_node_with_name(c, "c");
        let c2 = b.add_node_with_name(c, "c");
        // a1 -> b0, a1 -> c0 direct; b0 reaches c0 and c1
        b.add_edge(a1, b0);
        b.add_edge(a1, c0);
        b.add_edge(b0, c1);
        b.add_edge(c1, c0);
        // a2 -> b2, a2 -> c2 direct; b2 reaches c2 (and c0, c1 via c2? no)
        b.add_edge(a2, b2);
        b.add_edge(a2, c2);
        b.add_edge(b2, c2);
        b.add_edge(b2, c1);
        // extra structure so the match sets differ from occurrence sets
        b.add_edge(a0, b1);
        b.add_edge(b1, c0);
        b.add_edge(b3, a0);
        b.build()
    }

    #[test]
    fn csr_basics() {
        let g = fig2_graph();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 11);
        assert_eq!(g.num_labels(), 3);
        assert_eq!(g.label(0), 0);
        assert_eq!(g.label(3), 1);
        assert!(g.has_edge(1, 3)); // a1 -> b0
        assert!(!g.has_edge(3, 1));
        assert_eq!(g.nodes_with_label(0), &[0, 1, 2]);
        assert_eq!(g.nodes_with_label(1), &[3, 4, 5, 6]);
        assert_eq!(g.out_neighbors(1), &[3, 7]); // a1 -> {b0, c0}
        assert_eq!(g.in_neighbors(7), &[1, 4, 8]); // c0 <- {a1, b1, c1}
    }

    #[test]
    fn bidirectional_consistency() {
        let g = fig2_graph();
        for (u, v) in g.edges() {
            assert!(g.in_neighbors(v).contains(&u));
        }
        let fwd_total: usize = (0..g.num_nodes() as NodeId).map(|v| g.out_degree(v)).sum();
        let bwd_total: usize = (0..g.num_nodes() as NodeId).map(|v| g.in_degree(v)).sum();
        assert_eq!(fwd_total, bwd_total);
        assert_eq!(fwd_total, g.num_edges());
    }

    #[test]
    fn in_neighbors_sorted() {
        let g = fig2_graph();
        for v in 0..g.num_nodes() as NodeId {
            let ins = g.in_neighbors(v);
            assert!(ins.windows(2).all(|w| w[0] < w[1]), "node {v}: {ins:?}");
        }
    }

    #[test]
    fn label_bitsets_match_lists() {
        let g = fig2_graph();
        for l in 0..g.num_labels() as Label {
            assert_eq!(g.label_bitset(l).to_vec(), g.nodes_with_label(l));
        }
    }

    #[test]
    fn adjacency_bitmaps_and_unions() {
        let g = fig2_graph();
        let adj = g.build_adjacency_bitmaps();
        assert_eq!(adj.fwd[1].to_vec(), vec![3, 7]);
        let sources = Bitset::from_slice(&[1, 2]); // a1, a2
                                                   // union of children of a1 and a2 = {b0, c0, b2, c2}
        assert_eq!(adj.union_fwd(&sources).to_vec(), vec![3, 5, 7, 9]);
        let sinks = Bitset::from_slice(&[7]); // c0
        assert_eq!(adj.union_bwd(&sinks).to_vec(), vec![1, 4, 8]);
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = fig2_graph();
        let keep = Bitset::from_slice(&[1, 3, 7]); // a1, b0, c0
        let s = g.induced_subgraph(&keep);
        assert_eq!(s.num_nodes(), 3);
        // a1->b0 and a1->c0 survive, b0->c1 does not (c1 dropped)
        assert_eq!(s.num_edges(), 2);
        assert_eq!(s.label(0), 0);
        assert_eq!(s.label(1), 1);
        assert_eq!(s.label(2), 2);
        assert!(s.has_edge(0, 1));
        assert!(s.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_skips_tombstones() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        let _dead = b.add_node(1); // edge-free, tombstoned below
        let y = b.add_node(2);
        b.add_edge(x, y);
        let g = b.build().with_tombstones(Bitset::from_slice(&[1]));
        // keep includes the dead node 1: it must simply be dropped
        let s = g.induced_subgraph(&Bitset::from_slice(&[0, 1, 2]));
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.num_edges(), 1);
        assert!(s.has_edge(0, 1));
    }

    #[test]
    fn relabel_collapses_labels() {
        let g = fig2_graph();
        let r = g.relabel(|_, _| 0);
        assert_eq!(r.num_labels(), 1);
        assert_eq!(r.num_edges(), g.num_edges());
        assert_eq!(r.nodes_with_label(0).len(), g.num_nodes());
    }

    #[test]
    fn avg_degree() {
        let g = fig2_graph();
        assert!((g.avg_degree() - 1.1).abs() < 1e-9);
    }
}
