//! Shared harness utilities for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index). All binaries accept the same
//! flags:
//!
//! ```text
//! --scale <f64>     fraction of the Table 2 dataset sizes (default 0.02)
//! --seed <u64>      RNG seed for graphs and workloads (default 42)
//! --timeout <secs>  per-query budget (default 10; the paper used 600)
//! --limit <n>       per-query match cap (default 10^6; the paper used 10^7)
//! ```
//!
//! Absolute times differ from the paper (different hardware, synthetic
//! stand-in graphs, scaled sizes); the *relationships* between engines are
//! what EXPERIMENTS.md records and compares.

use std::time::Duration;

use rig_baselines::Budget;
use rig_datasets::spec;
use rig_graph::DataGraph;
use rig_query::{random_query, template, Flavor, GeneratorConfig, PatternQuery};

/// Common command-line arguments.
#[derive(Debug, Clone, Copy)]
pub struct Args {
    pub scale: f64,
    pub seed: u64,
    pub timeout: Duration,
    pub limit: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args { scale: 0.02, seed: 42, timeout: Duration::from_secs(10), limit: 1_000_000 }
    }
}

impl Args {
    /// Parses `--scale/--seed/--timeout/--limit` from `std::env::args`.
    pub fn parse() -> Self {
        let mut out = Args::default();
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < argv.len() {
            match argv[i].as_str() {
                "--scale" => out.scale = argv[i + 1].parse().expect("bad --scale"),
                "--seed" => out.seed = argv[i + 1].parse().expect("bad --seed"),
                "--timeout" => {
                    out.timeout = Duration::from_secs(argv[i + 1].parse().expect("bad --timeout"))
                }
                "--limit" => out.limit = argv[i + 1].parse().expect("bad --limit"),
                other => panic!("unknown flag {other}"),
            }
            i += 2;
        }
        out
    }

    /// The evaluation budget derived from the flags.
    pub fn budget(&self) -> Budget {
        Budget {
            timeout: Some(self.timeout),
            max_intermediate: Some(2_000_000),
            match_limit: Some(self.limit),
        }
    }
}

/// Generates dataset `name` at the configured scale. Small datasets (the
/// biology graphs) are floored at ~2000 nodes so their workloads stay
/// meaningful at the default scale.
pub fn load(name: &str, args: &Args) -> DataGraph {
    let s = spec(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
    let floor = (2_000.0 / s.nodes as f64).min(1.0);
    s.generate(args.scale.max(floor), args.seed)
}

/// Generates dataset `name` at an explicit scale.
pub fn load_scaled(name: &str, scale: f64, seed: u64) -> DataGraph {
    spec(name).unwrap().generate(scale, seed)
}

/// Instantiates template `id` with labels drawn from the graph's label
/// space (`node % |L|` rotated by the seed, so instances vary but stay
/// deterministic).
pub fn template_query(g: &DataGraph, id: usize, flavor: Flavor, seed: u64) -> PatternQuery {
    let t = template(id);
    let nl = g.num_labels().max(1) as u32;
    let labels: Vec<u32> =
        (0..t.num_nodes).map(|i| ((i as u64 + seed) % nl as u64) as u32).collect();
    t.instantiate(flavor, &labels)
}

/// Instantiates template `id` preferring label assignments with a
/// *non-empty answer*: draws labels (weighted toward frequent ones) and
/// probes each candidate with a 1-match GM evaluation, keeping the first
/// instance that matches. Falls back to the last candidate when none
/// matches within the attempt budget — the paper's workloads also contain
/// some empty queries, which exercise early termination.
pub fn template_query_probed(
    g: &DataGraph,
    matcher: &rig_core::Matcher<'_>,
    id: usize,
    flavor: Flavor,
    seed: u64,
) -> PatternQuery {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let t = template(id);
    // frequent labels first: weight by inverted-list size
    let mut by_freq: Vec<u32> = (0..g.num_labels() as u32).collect();
    by_freq.sort_by_key(|&l| std::cmp::Reverse(g.nodes_with_label(l).len()));
    let top = &by_freq[..by_freq.len().clamp(1, 8)];
    let probe_cfg = rig_core::GmConfig {
        enumeration: rig_mjoin::EnumOptions {
            limit: Some(1),
            timeout: Some(Duration::from_millis(500)),
            ..Default::default()
        },
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37).wrapping_add(id as u64));
    let mut last = t.instantiate_modulo(flavor, g.num_labels().max(1));
    for _ in 0..12 {
        let labels: Vec<u32> = (0..t.num_nodes).map(|_| top[rng.gen_range(0..top.len())]).collect();
        let q = t.instantiate(flavor, &labels);
        if matcher.count(&q, &probe_cfg).result.count > 0 {
            return q;
        }
        last = q;
    }
    last
}

/// Random queries of the given node counts, one per size, non-empty by
/// construction (§7.1's biology-dataset workloads).
pub fn random_queries(
    g: &DataGraph,
    sizes: &[usize],
    flavor: Flavor,
    seed: u64,
) -> Vec<(String, PatternQuery)> {
    let mut out = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let cfg = GeneratorConfig::new(n, flavor, seed + i as u64 * 7919);
        if let Some(q) = random_query(g, &cfg) {
            out.push((format!("{n}N"), q));
        }
    }
    out
}

/// Fixed-width table printer (markdown-ish, stable output for golden
/// comparison in EXPERIMENTS.md).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    pub fn print(&self, title: &str) {
        println!("\n## {title}");
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:width$}", width = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        println!("{}", fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("{}", fmt_row(&sep));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }
}

/// Seconds with millisecond precision, for table cells.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_defaults() {
        let a = Args::default();
        assert!(a.scale > 0.0);
        assert!(a.budget().timeout.is_some());
    }

    #[test]
    fn load_small_dataset() {
        let args = Args { scale: 0.01, ..Args::default() };
        let g = load("yt", &args);
        assert!(g.num_nodes() > 0);
        // at tiny scales not all 71 labels can be present
        assert!(g.num_labels() >= 1 && g.num_labels() <= 71);
    }

    #[test]
    fn template_query_labels_within_range() {
        let args = Args { scale: 0.01, ..Args::default() };
        let g = load("yt", &args);
        let q = template_query(&g, 6, Flavor::H, 3);
        assert!(q.labels().iter().all(|&l| (l as usize) < g.num_labels()));
    }

    #[test]
    fn random_queries_produced() {
        let args = Args { scale: 0.05, ..Args::default() };
        let g = load("yt", &args);
        let qs = random_queries(&g, &[4, 6, 8], Flavor::H, 1);
        assert!(!qs.is_empty());
        for (_, q) in &qs {
            assert!(q.is_connected());
        }
    }

    #[test]
    fn table_prints() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print("test"); // smoke: no panic
    }
}
