//! Shared harness utilities for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index). All binaries accept the same
//! flags:
//!
//! ```text
//! --scale <f64>     fraction of the Table 2 dataset sizes (default 0.02)
//! --seed <u64>      RNG seed for graphs and workloads (default 42)
//! --timeout <secs>  per-query budget (default 10; the paper used 600)
//! --limit <n>       per-query match cap (default 10^6; the paper used 10^7)
//! ```
//!
//! Absolute times differ from the paper (different hardware, synthetic
//! stand-in graphs, scaled sizes); the *relationships* between engines are
//! what EXPERIMENTS.md records and compares.
//!
//! With `--json <path>` the fig9/fig13 harnesses additionally emit a
//! machine-readable benchmark artifact (`BENCH_mjoin.json` /
//! `BENCH_rig.json`) comparing the CSR RIG + allocation-free MJoin engine
//! against the in-process pre-refactor reference implementation
//! (`rig_index::reference`, `rig_mjoin::reference`), so the perf
//! trajectory of the hot path is recorded across PRs.

pub mod json;

use std::time::{Duration, Instant};

use json::JsonValue;
use rig_baselines::Budget;
use rig_core::Session;
use rig_datasets::spec;
use rig_graph::DataGraph;
use rig_index::{build_rig, RigOptions};
use rig_mjoin::EnumOptions;
use rig_query::{random_query, template, Flavor, GeneratorConfig, PatternQuery};
use rig_sim::SimContext;

/// Common command-line arguments.
#[derive(Debug, Clone)]
pub struct Args {
    pub scale: f64,
    pub seed: u64,
    pub timeout: Duration,
    pub limit: u64,
    /// Emit a machine-readable benchmark artifact to this path.
    pub json: Option<String>,
    /// Thread counts for the parallel sweep (`--threads 1,2,8`); empty =
    /// sweep disabled.
    pub threads: Vec<usize>,
    /// Emit the parallel-sweep artifact (`BENCH_parallel.json`) here.
    pub json_parallel: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 0.02,
            seed: 42,
            timeout: Duration::from_secs(10),
            limit: 1_000_000,
            json: None,
            threads: Vec::new(),
            json_parallel: None,
        }
    }
}

impl Args {
    /// Parses `--scale/--seed/--timeout/--limit/--json/--threads/
    /// --json-parallel` from `std::env::args`.
    pub fn parse() -> Self {
        let mut out = Args::default();
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < argv.len() {
            match argv[i].as_str() {
                "--scale" => out.scale = argv[i + 1].parse().expect("bad --scale"),
                "--seed" => out.seed = argv[i + 1].parse().expect("bad --seed"),
                "--timeout" => {
                    out.timeout = Duration::from_secs(argv[i + 1].parse().expect("bad --timeout"))
                }
                "--limit" => out.limit = argv[i + 1].parse().expect("bad --limit"),
                "--json" => out.json = Some(argv[i + 1].clone()),
                "--threads" => out.threads = parse_thread_list(&argv[i + 1]),
                "--json-parallel" => out.json_parallel = Some(argv[i + 1].clone()),
                other => panic!("unknown flag {other}"),
            }
            i += 2;
        }
        // The parallel artifact implies a sweep; default to the CI gate's
        // thread counts when --threads was not given explicitly.
        if out.json_parallel.is_some() && out.threads.is_empty() {
            out.threads = vec![1, 2, 8];
        }
        out
    }

    /// The evaluation budget derived from the flags.
    pub fn budget(&self) -> Budget {
        Budget {
            timeout: Some(self.timeout),
            max_intermediate: Some(2_000_000),
            match_limit: Some(self.limit),
        }
    }
}

/// Parses a `--threads` value: a comma-separated list of worker counts
/// (`"1,2,8"`), deduplicated, in the given order.
pub fn parse_thread_list(s: &str) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    for part in s.split(',') {
        let t: usize = part.trim().parse().unwrap_or_else(|_| panic!("bad thread count {part:?}"));
        assert!(t >= 1, "thread counts must be >= 1");
        if !out.contains(&t) {
            out.push(t);
        }
    }
    assert!(!out.is_empty(), "--threads needs at least one count");
    out
}

/// Generates dataset `name` at the configured scale. Small datasets (the
/// biology graphs) are floored at ~2000 nodes so their workloads stay
/// meaningful at the default scale.
pub fn load(name: &str, args: &Args) -> DataGraph {
    let s = spec(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
    let floor = (2_000.0 / s.nodes as f64).min(1.0);
    s.generate(args.scale.max(floor), args.seed)
}

/// Generates dataset `name` at an explicit scale.
pub fn load_scaled(name: &str, scale: f64, seed: u64) -> DataGraph {
    spec(name).unwrap().generate(scale, seed)
}

/// Instantiates template `id` with labels drawn from the graph's label
/// space (`node % |L|` rotated by the seed, so instances vary but stay
/// deterministic).
pub fn template_query(g: &DataGraph, id: usize, flavor: Flavor, seed: u64) -> PatternQuery {
    let t = template(id);
    let nl = g.num_labels().max(1) as u32;
    let labels: Vec<u32> =
        (0..t.num_nodes).map(|i| ((i as u64 + seed) % nl as u64) as u32).collect();
    t.instantiate(flavor, &labels)
}

/// Instantiates template `id` preferring label assignments with a
/// *non-empty answer*: draws labels (weighted toward frequent ones) and
/// probes each candidate with a 1-match GM evaluation through `session`,
/// keeping the first instance that matches. Falls back to the last
/// candidate when none matches within the attempt budget — the paper's
/// workloads also contain some empty queries, which exercise early
/// termination.
pub fn template_query_probed(
    g: &DataGraph,
    session: &Session,
    id: usize,
    flavor: Flavor,
    seed: u64,
) -> PatternQuery {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let t = template(id);
    // frequent labels first: weight by inverted-list size
    let mut by_freq: Vec<u32> = (0..g.num_labels() as u32).collect();
    by_freq.sort_by_key(|&l| std::cmp::Reverse(g.nodes_with_label(l).len()));
    let top = &by_freq[..by_freq.len().clamp(1, 8)];
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37).wrapping_add(id as u64));
    let mut last = t.instantiate_modulo(flavor, g.num_labels().max(1));
    for _ in 0..12 {
        let labels: Vec<u32> = (0..t.num_nodes).map(|_| top[rng.gen_range(0..top.len())]).collect();
        let q = t.instantiate(flavor, &labels);
        let probe = session.prepare(&q).expect("template query validates");
        // probes bypass the plan cache so workload selection does not
        // pollute the sweep's hit statistics
        let hit = probe.run().no_cache().limit(1).timeout(Duration::from_millis(500)).count();
        if hit.result.count > 0 {
            return q;
        }
        last = q;
    }
    last
}

/// Random queries of the given node counts, one per size, non-empty by
/// construction (§7.1's biology-dataset workloads).
pub fn random_queries(
    g: &DataGraph,
    sizes: &[usize],
    flavor: Flavor,
    seed: u64,
) -> Vec<(String, PatternQuery)> {
    let mut out = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let cfg = GeneratorConfig::new(n, flavor, seed + i as u64 * 7919);
        if let Some(q) = random_query(g, &cfg) {
            out.push((format!("{n}N"), q));
        }
    }
    out
}

/// Fixed-width table printer (markdown-ish, stable output for golden
/// comparison in EXPERIMENTS.md).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    pub fn print(&self, title: &str) {
        println!("\n## {title}");
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:width$}", width = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        println!("{}", fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("{}", fmt_row(&sep));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }
}

/// Seconds with millisecond precision, for table cells.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// One CSR-vs-reference measurement of a single query: RIG build time and
/// heap footprint for both layouts, plus MJoin enumeration time / steps /
/// matches / budget outcome for both engines, under the same limit/timeout
/// budget. Matches and budget flags are recorded **per engine**, because a
/// timeout or limit hitting only one side makes the raw times
/// incomparable; [`totals_json`] only aggregates throughput over queries
/// where both engines finished under identical conditions.
pub struct PairMeasurement {
    pub name: String,
    pub csr_build_s: f64,
    pub csr_heap_bytes: usize,
    pub csr_enum_s: f64,
    pub csr_steps: u64,
    pub csr_matches: u64,
    pub csr_timed_out: bool,
    pub csr_limit_hit: bool,
    pub ref_build_s: f64,
    pub ref_heap_bytes: usize,
    pub ref_enum_s: f64,
    pub ref_steps: u64,
    pub ref_matches: u64,
    pub ref_timed_out: bool,
    pub ref_limit_hit: bool,
}

impl PairMeasurement {
    /// Both engines enumerated the same answer set under the same budget
    /// outcome (neither tripped, or both hit the identical match limit),
    /// so their times measure the same work.
    pub fn comparable(&self) -> bool {
        !self.csr_timed_out
            && !self.ref_timed_out
            && self.csr_limit_hit == self.ref_limit_hit
            && self.csr_matches == self.ref_matches
    }
}

/// Measures `query` on both implementations (CSR first, then reference) in
/// the same process; both RIGs use the paper-default build options and both
/// enumerations the same budget, so the numbers are directly comparable.
pub fn measure_pair(
    session: &Session,
    name: &str,
    query: &PatternQuery,
    budget: &Budget,
) -> PairMeasurement {
    let bfl = session.bfl();
    let snapshot = session.graph();
    let ctx = SimContext::new(&snapshot, query, &*bfl);
    let bfl = &*bfl;
    let opts = RigOptions::default();
    let eo =
        EnumOptions { limit: budget.match_limit, timeout: budget.timeout, ..Default::default() };

    let start = Instant::now();
    let rig = build_rig(&ctx, bfl, &opts);
    let csr_build_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let csr = rig_mjoin::count(query, &rig, &eo);
    let csr_enum_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let ref_rig = rig_index::reference::build_reference_rig(&ctx, bfl, &opts);
    let ref_build_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let reference = rig_mjoin::reference::ref_count(query, &ref_rig, &eo);
    let ref_enum_s = start.elapsed().as_secs_f64();

    // Prop. 4.1: any valid RIG is lossless, so both engines must agree on
    // the answer whenever neither budget tripped.
    if !csr.timed_out && !reference.timed_out && !csr.limit_hit && !reference.limit_hit {
        assert_eq!(csr.count, reference.count, "CSR vs reference count mismatch on {name}");
    }

    PairMeasurement {
        name: name.to_string(),
        csr_build_s,
        csr_heap_bytes: rig.heap_bytes(),
        csr_enum_s,
        csr_steps: csr.steps,
        csr_matches: csr.count,
        csr_timed_out: csr.timed_out,
        csr_limit_hit: csr.limit_hit,
        ref_build_s,
        ref_heap_bytes: ref_rig.heap_bytes(),
        ref_enum_s,
        ref_steps: reference.steps,
        ref_matches: reference.count,
        ref_timed_out: reference.timed_out,
        ref_limit_hit: reference.limit_hit,
    }
}

impl PairMeasurement {
    /// The per-query JSON record.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("query", self.name.as_str().into()),
            ("comparable", JsonValue::Bool(self.comparable())),
            (
                "csr",
                JsonValue::obj(vec![
                    ("build_s", self.csr_build_s.into()),
                    ("heap_bytes", self.csr_heap_bytes.into()),
                    ("enum_s", self.csr_enum_s.into()),
                    ("steps", self.csr_steps.into()),
                    ("matches", self.csr_matches.into()),
                    ("timed_out", JsonValue::Bool(self.csr_timed_out)),
                    ("limit_hit", JsonValue::Bool(self.csr_limit_hit)),
                ]),
            ),
            (
                "reference",
                JsonValue::obj(vec![
                    ("build_s", self.ref_build_s.into()),
                    ("heap_bytes", self.ref_heap_bytes.into()),
                    ("enum_s", self.ref_enum_s.into()),
                    ("steps", self.ref_steps.into()),
                    ("matches", self.ref_matches.into()),
                    ("timed_out", JsonValue::Bool(self.ref_timed_out)),
                    ("limit_hit", JsonValue::Bool(self.ref_limit_hit)),
                ]),
            ),
        ])
    }
}

/// Aggregates measurements into the `totals` object: enumeration
/// throughput (matches/s) for both engines, the speedup ratio, and the
/// heap/build comparison — the metrics `BENCH_*.json` exists to track.
///
/// Throughput and speedup are computed only over **comparable** queries
/// (both engines finished the same work — see
/// [`PairMeasurement::comparable`]); queries where a budget tripped one
/// side are counted in `incomparable_queries` instead of silently skewing
/// the ratios. Build time and heap totals cover every query — builds run
/// without a budget.
pub fn totals_json(ms: &[PairMeasurement]) -> JsonValue {
    let comparable: Vec<&PairMeasurement> = ms.iter().filter(|m| m.comparable()).collect();
    let csr_enum_s: f64 = comparable.iter().map(|m| m.csr_enum_s).sum();
    let ref_enum_s: f64 = comparable.iter().map(|m| m.ref_enum_s).sum();
    let matches: u64 = comparable.iter().map(|m| m.csr_matches).sum();
    let csr_build_s: f64 = ms.iter().map(|m| m.csr_build_s).sum();
    let ref_build_s: f64 = ms.iter().map(|m| m.ref_build_s).sum();
    let csr_heap: usize = ms.iter().map(|m| m.csr_heap_bytes).sum();
    let ref_heap: usize = ms.iter().map(|m| m.ref_heap_bytes).sum();
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let csr_tput = ratio(matches as f64, csr_enum_s);
    let ref_tput = ratio(matches as f64, ref_enum_s);
    JsonValue::obj(vec![
        ("queries", ms.len().into()),
        ("comparable_queries", comparable.len().into()),
        ("incomparable_queries", (ms.len() - comparable.len()).into()),
        ("matches", matches.into()),
        ("csr_enum_s", csr_enum_s.into()),
        ("ref_enum_s", ref_enum_s.into()),
        ("csr_throughput_per_s", csr_tput.into()),
        ("ref_throughput_per_s", ref_tput.into()),
        ("enum_speedup", ratio(csr_tput, ref_tput).into()),
        ("csr_build_s", csr_build_s.into()),
        ("ref_build_s", ref_build_s.into()),
        ("build_speedup", ratio(ref_build_s, csr_build_s).into()),
        ("csr_heap_bytes", csr_heap.into()),
        ("ref_heap_bytes", ref_heap.into()),
        (
            "heap_reduction_pct",
            (100.0 * (1.0 - ratio(csr_heap as f64, ref_heap.max(1) as f64))).into(),
        ),
    ])
}

/// One thread-count point of a parallel sweep over a single query.
#[derive(Debug, Clone)]
pub struct ParRun {
    pub threads: usize,
    pub enum_s: f64,
    pub matches: u64,
    pub steps: u64,
    pub timed_out: bool,
    pub limit_hit: bool,
}

/// Thread-count sweep of the morsel-driven engine over one query: the RIG
/// is built once, then enumeration is timed at each worker count on the
/// identical index under the identical budget.
#[derive(Debug, Clone)]
pub struct ParallelMeasurement {
    pub name: String,
    pub runs: Vec<ParRun>,
}

impl ParallelMeasurement {
    /// Every thread count finished the same work: no timeouts, and the
    /// match count / limit outcome is identical across the sweep, so the
    /// wall-clock ratios are genuine speedups.
    pub fn comparable(&self) -> bool {
        self.runs.iter().all(|r| !r.timed_out)
            && self
                .runs
                .windows(2)
                .all(|w| w[0].matches == w[1].matches && w[0].limit_hit == w[1].limit_hit)
    }

    /// The per-query JSON record.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("query", self.name.as_str().into()),
            ("comparable", JsonValue::Bool(self.comparable())),
            (
                "runs",
                JsonValue::Arr(
                    self.runs
                        .iter()
                        .map(|r| {
                            JsonValue::obj(vec![
                                ("threads", r.threads.into()),
                                ("enum_s", r.enum_s.into()),
                                ("matches", r.matches.into()),
                                ("steps", r.steps.into()),
                                ("timed_out", JsonValue::Bool(r.timed_out)),
                                ("limit_hit", JsonValue::Bool(r.limit_hit)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Runs the parallel sweep for one query through the Session API: the
/// query is prepared once, the first thread count's run builds (and
/// caches) the RIG, and every later count reuses the cached plan — the
/// sweep measures enumeration only, as before, now via the same code path
/// applications use. Doubles as an in-harness differential check:
/// whenever no budget tripped, all thread counts must report the
/// identical match count.
pub fn measure_parallel(
    session: &rig_core::Session,
    name: &str,
    query: &PatternQuery,
    budget: &Budget,
    thread_counts: &[usize],
) -> ParallelMeasurement {
    let prepared = session
        .prepare(query)
        .unwrap_or_else(|e| panic!("{name}: workload query must prepare: {e}"));
    // Charge the RIG build to the prepare side of the ledger, not to the
    // first swept thread count.
    let _ = prepared.run().explain();
    let mut runs = Vec::with_capacity(thread_counts.len());
    for &t in thread_counts {
        let mut run = prepared.run().threads(t);
        if let Some(l) = budget.match_limit {
            run = run.limit(l);
        }
        if let Some(d) = budget.timeout {
            run = run.timeout(d);
        }
        let start = Instant::now();
        let o = run.count();
        assert!(o.metrics.rig_from_cache, "{name}: sweep must reuse the cached RIG");
        let r = o.result;
        runs.push(ParRun {
            threads: t,
            enum_s: start.elapsed().as_secs_f64(),
            matches: r.count,
            steps: r.steps,
            timed_out: r.timed_out,
            limit_hit: r.limit_hit,
        });
    }
    let clean: Vec<&ParRun> = runs.iter().filter(|r| !r.timed_out && !r.limit_hit).collect();
    for pair in clean.windows(2) {
        assert_eq!(
            pair[0].matches, pair[1].matches,
            "{name}: thread counts {} and {} disagree on the answer",
            pair[0].threads, pair[1].threads
        );
    }
    ParallelMeasurement { name: name.to_string(), runs }
}

/// Aggregates a parallel sweep into its `totals` object: total enumeration
/// time per thread count over **comparable** queries, the speedup of each
/// count versus the first (baseline) count, and the best speedup — the
/// number the CI gate asserts on.
pub fn parallel_totals_json(ms: &[ParallelMeasurement], thread_counts: &[usize]) -> JsonValue {
    let comparable: Vec<&ParallelMeasurement> = ms.iter().filter(|m| m.comparable()).collect();
    let sum_at = |t: usize| -> f64 {
        comparable
            .iter()
            .map(|m| m.runs.iter().find(|r| r.threads == t).map_or(0.0, |r| r.enum_s))
            .sum()
    };
    let base_threads = thread_counts.first().copied().unwrap_or(1);
    let base_s = sum_at(base_threads);
    let matches: u64 = comparable.iter().map(|m| m.runs.first().map_or(0, |r| r.matches)).sum();
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let mut best_speedup = 0.0f64;
    let sweeps: Vec<JsonValue> = thread_counts
        .iter()
        .map(|&t| {
            let s = sum_at(t);
            let speedup = ratio(base_s, s);
            if t != base_threads {
                best_speedup = best_speedup.max(speedup);
            }
            JsonValue::obj(vec![
                ("threads", t.into()),
                ("enum_s", s.into()),
                ("throughput_per_s", ratio(matches as f64, s).into()),
                ("speedup_vs_base", speedup.into()),
            ])
        })
        .collect();
    JsonValue::obj(vec![
        ("queries", ms.len().into()),
        ("comparable_queries", comparable.len().into()),
        ("incomparable_queries", (ms.len() - comparable.len()).into()),
        ("matches", matches.into()),
        ("base_threads", base_threads.into()),
        ("sweeps", JsonValue::Arr(sweeps)),
        ("best_speedup", best_speedup.into()),
    ])
}

/// Writes the parallel-sweep artifact (`BENCH_parallel.json`): flagged
/// `"parallel": true` for `benchcheck`, self-describing about the hardware
/// (`hw_threads`) so a committed artifact from a small machine is read in
/// context.
pub fn write_parallel_json(
    path: &str,
    harness: &str,
    args: &Args,
    thread_counts: &[usize],
    records: Vec<JsonValue>,
    totals: JsonValue,
) {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let doc = JsonValue::obj(vec![
        ("harness", harness.into()),
        ("parallel", JsonValue::Bool(true)),
        ("scale", args.scale.into()),
        ("seed", args.seed.into()),
        ("timeout_s", args.timeout.as_secs_f64().into()),
        ("limit", args.limit.into()),
        ("hw_threads", hw.into()),
        ("morsel", rig_mjoin::parallel::DEFAULT_MORSEL.into()),
        ("thread_counts", JsonValue::Arr(thread_counts.iter().map(|&t| t.into()).collect())),
        ("baseline", "morsel engine at the first (base) thread count".into()),
        ("queries", JsonValue::Arr(records)),
        ("totals", totals),
    ]);
    std::fs::write(path, doc.to_pretty()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");
}

/// Wraps records + totals in the top-level artifact and writes it.
pub fn write_bench_json(
    path: &str,
    harness: &str,
    args: &Args,
    records: Vec<JsonValue>,
    totals: JsonValue,
) {
    let doc = JsonValue::obj(vec![
        ("harness", harness.into()),
        ("scale", args.scale.into()),
        ("seed", args.seed.into()),
        ("timeout_s", args.timeout.as_secs_f64().into()),
        ("limit", args.limit.into()),
        ("baseline", "pre-CSR hashmap RIG + materializing multi_and MJoin".into()),
        ("queries", JsonValue::Arr(records)),
        ("totals", totals),
    ]);
    std::fs::write(path, doc.to_pretty()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_defaults() {
        let a = Args::default();
        assert!(a.scale > 0.0);
        assert!(a.budget().timeout.is_some());
    }

    #[test]
    fn load_small_dataset() {
        let args = Args { scale: 0.01, ..Args::default() };
        let g = load("yt", &args);
        assert!(g.num_nodes() > 0);
        // at tiny scales not all 71 labels can be present
        assert!(g.num_labels() >= 1 && g.num_labels() <= 71);
    }

    #[test]
    fn template_query_labels_within_range() {
        let args = Args { scale: 0.01, ..Args::default() };
        let g = load("yt", &args);
        let q = template_query(&g, 6, Flavor::H, 3);
        assert!(q.labels().iter().all(|&l| (l as usize) < g.num_labels()));
    }

    #[test]
    fn random_queries_produced() {
        let args = Args { scale: 0.05, ..Args::default() };
        let g = load("yt", &args);
        let qs = random_queries(&g, &[4, 6, 8], Flavor::H, 1);
        assert!(!qs.is_empty());
        for (_, q) in &qs {
            assert!(q.is_connected());
        }
    }

    #[test]
    fn thread_list_parses_and_dedups() {
        assert_eq!(parse_thread_list("1,2,8"), vec![1, 2, 8]);
        assert_eq!(parse_thread_list("4, 4 ,2"), vec![4, 2]);
    }

    #[test]
    fn parallel_measurement_roundtrip() {
        let m = ParallelMeasurement {
            name: "q".into(),
            runs: vec![
                ParRun {
                    threads: 1,
                    enum_s: 0.4,
                    matches: 10,
                    steps: 20,
                    timed_out: false,
                    limit_hit: false,
                },
                ParRun {
                    threads: 8,
                    enum_s: 0.1,
                    matches: 10,
                    steps: 22,
                    timed_out: false,
                    limit_hit: false,
                },
            ],
        };
        assert!(m.comparable());
        let totals = parallel_totals_json(&[m], &[1, 8]);
        let sweeps = totals.get("sweeps").unwrap().as_arr().unwrap();
        assert_eq!(sweeps.len(), 2);
        let speedup = totals.get("best_speedup").unwrap().as_f64().unwrap();
        assert!((speedup - 4.0).abs() < 1e-9, "0.4s -> 0.1s is a 4x speedup, got {speedup}");
    }

    #[test]
    fn timed_out_sweep_is_incomparable() {
        let m = ParallelMeasurement {
            name: "q".into(),
            runs: vec![ParRun {
                threads: 1,
                enum_s: 2.0,
                matches: 5,
                steps: 9,
                timed_out: true,
                limit_hit: false,
            }],
        };
        assert!(!m.comparable());
        let totals = parallel_totals_json(&[m], &[1]);
        assert_eq!(totals.get("comparable_queries").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn table_prints() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print("test"); // smoke: no panic
    }
}
