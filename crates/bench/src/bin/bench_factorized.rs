//! `bench_factorized` — factorized counting figure: DP-count vs
//! enumerated-count latency on the fig9 dense C-query templates.
//!
//! For each template instance (datasets ep/bs/hu, probed non-empty label
//! assignments), the harness:
//!
//! 1. prepares the query once and warms the plan cache (so both timed runs
//!    fetch the same cached RIG);
//! 2. probes feasibility with a capped forced enumeration — a query whose
//!    count exceeds the cap is skipped (the exact-count verification below
//!    would be unbounded) and recorded as such;
//! 3. times `count()` (which auto-routes to the factorized DP, or back to
//!    enumeration when the cyclic conditioning cost guard trips — the
//!    `counted_via_factorization` witness is recorded per query) and
//!    `force_enumerate().count()` on the tuple-enumeration path;
//! 4. **verifies every emitted count** against the RIG-free brute-force
//!    oracle ([`rig_baselines::brute_force_count`]) — a mismatch aborts
//!    the run.
//!
//! `--json <path>` writes the `BENCH_factorized.json` artifact (flagged
//! `"factorized": true` for `benchcheck`, whose
//! `--min-factorized-speedup` gate reads `totals.speedup`).

use std::sync::Arc;
use std::time::Instant;

use rig_baselines::brute_force_count;
use rig_bench::json::JsonValue;
use rig_bench::{load, template_query_probed, Args, Table};
use rig_core::factorized::FactorizationShape;
use rig_core::Session;
use rig_query::Flavor;

/// Exact-count feasibility cap: queries with more matches than this are
/// skipped (their oracle verification would be unbounded).
const MATCH_CAP: u64 = 1_000_000_000;

struct Point {
    name: String,
    matches: u64,
    tree: bool,
    via_dp: bool,
    dp_s: f64,
    enum_s: f64,
    verified: bool,
}

fn main() {
    let args = Args::parse();
    let ids = [0usize, 1, 2, 3, 4, 5, 6, 8, 17, 11, 12, 19, 10, 13, 14];
    let mut points: Vec<Point> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    let mut table =
        Table::new(&["query", "matches", "path", "count() [s]", "enum [s]", "speedup", "verified"]);

    for ds in ["ep", "bs", "hu"] {
        let g = Arc::new(load(ds, &args));
        println!("# dataset {ds}: {:?}", g.stats());
        let session = Session::new(Arc::clone(&g));
        for id in ids {
            let name = format!("{ds}/CQ{id}");
            let q = template_query_probed(&g, &session, id, Flavor::C, args.seed);
            let p = session.prepare(&q).expect("template query validates");

            // warm: builds + caches the RIG both timed runs will fetch
            p.run().count();

            // feasibility probe: exact counting (and the oracle) must
            // terminate, so cap the enumerated count first
            let probe = p.run().force_enumerate().limit(MATCH_CAP).count();
            if probe.result.limit_hit {
                println!("# {name}: > {MATCH_CAP} matches, skipped (oracle infeasible)");
                skipped.push(name);
                continue;
            }

            let start = Instant::now();
            let dp = p.run().count();
            let dp_s = start.elapsed().as_secs_f64();
            // `via_dp` is false when the planner's conditioning cost guard
            // routed this (cyclic) query back to enumeration
            let via_dp = dp.metrics.counted_via_factorization;

            let start = Instant::now();
            let en = p.run().force_enumerate().count();
            let enum_s = start.elapsed().as_secs_f64();
            assert!(!en.metrics.counted_via_factorization);
            assert_eq!(dp.result.count, en.result.count, "{name}: DP and enumeration disagree");

            // in-harness ground truth: RIG-free backtracking oracle
            let brute = brute_force_count(&g, &q, false);
            let verified = dp.result.count == brute;
            assert!(verified, "{name}: engine count {} != oracle {brute}", dp.result.count);

            let tree = FactorizationShape::analyze(&q).is_tree();
            table.row(vec![
                name.clone(),
                dp.result.count.to_string(),
                if via_dp { "dp" } else { "enum" }.to_string(),
                format!("{dp_s:.6}"),
                format!("{enum_s:.6}"),
                format!("{:.0}x", if dp_s > 0.0 { enum_s / dp_s } else { 0.0 }),
                verified.to_string(),
            ]);
            points.push(Point {
                name,
                matches: dp.result.count,
                tree,
                via_dp,
                dp_s,
                enum_s,
                verified,
            });
        }
    }
    table.print("Factorized counting: DP vs enumeration [s]");
    assert!(!points.is_empty(), "every query skipped — lower MATCH_CAP or scale");

    let dp_s: f64 = points.iter().map(|p| p.dp_s).sum();
    let enum_s: f64 = points.iter().map(|p| p.enum_s).sum();
    let speedup = if dp_s > 0.0 { enum_s / dp_s } else { 0.0 };
    let verified = points.iter().filter(|p| p.verified).count();
    println!(
        "\ntotal: {} queries ({} skipped), enum {enum_s:.4}s / DP {dp_s:.4}s = {speedup:.0}x",
        points.len(),
        skipped.len()
    );

    if let Some(path) = &args.json {
        let records: Vec<JsonValue> = points
            .iter()
            .map(|p| {
                JsonValue::obj(vec![
                    ("query", p.name.as_str().into()),
                    ("matches", p.matches.into()),
                    ("tree", JsonValue::Bool(p.tree)),
                    ("via_dp", JsonValue::Bool(p.via_dp)),
                    ("dp_s", p.dp_s.into()),
                    ("enum_s", p.enum_s.into()),
                    ("speedup", (if p.dp_s > 0.0 { p.enum_s / p.dp_s } else { 0.0 }).into()),
                    ("verified", JsonValue::Bool(p.verified)),
                ])
            })
            .collect();
        let doc = JsonValue::obj(vec![
            ("harness", "bench_factorized".into()),
            ("factorized", JsonValue::Bool(true)),
            ("scale", args.scale.into()),
            ("seed", args.seed.into()),
            ("timeout_s", args.timeout.as_secs_f64().into()),
            ("limit", args.limit.into()),
            ("baseline", "forced tuple enumeration over the same cached RIG".into()),
            (
                "oracle",
                "RIG-free brute-force backtracking (rig_baselines::brute_force_count)".into(),
            ),
            ("queries", JsonValue::Arr(records)),
            ("skipped", JsonValue::Arr(skipped.iter().map(|s| s.as_str().into()).collect())),
            (
                "totals",
                JsonValue::obj(vec![
                    ("queries", points.len().into()),
                    ("skipped_queries", skipped.len().into()),
                    ("verified_queries", verified.into()),
                    ("unverified_queries", (points.len() - verified).into()),
                    ("matches", points.iter().map(|p| p.matches).sum::<u64>().into()),
                    ("dp_s", dp_s.into()),
                    ("enum_s", enum_s.into()),
                    ("speedup", speedup.into()),
                ]),
            ),
        ]);
        std::fs::write(path, doc.to_pretty()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
