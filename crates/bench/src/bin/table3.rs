//! Table 3 — large D-queries on hu, hp and yt: per-engine counts of
//! timeouts, out-of-memory failures, solved queries and the average time
//! of solved queries.

use rig_baselines::{Engine, GmEngine, Jm, Tm};
use rig_bench::{load, random_queries, Args, Table};
use rig_core::RunStatus;
use rig_query::Flavor;

fn main() {
    let args = Args::parse();
    let budget = args.budget();
    let sizes = [4usize, 5, 6, 7, 8, 9, 10, 12, 14, 16];

    let mut table =
        Table::new(&["dataset", "alg", "timeout", "out-of-mem", "solved", "avg-time[s]"]);
    for ds in ["hu", "hp", "yt"] {
        let g = load(ds, &args);
        println!("# dataset {ds}: {:?}", g.stats());
        let queries = random_queries(&g, &sizes, Flavor::D, args.seed);
        let gm = GmEngine::new(g.clone());
        let tm = Tm::new(&g);
        let jm = Jm::new(&g);
        let engines: [&dyn Engine; 3] = [&jm, &tm, &gm];
        for engine in engines {
            let mut to = 0;
            let mut om = 0;
            let mut solved = 0;
            let mut total = 0.0;
            for (_, q) in &queries {
                let r = engine.evaluate(q, &budget);
                match r.status {
                    RunStatus::Timeout => to += 1,
                    RunStatus::MemoryExceeded => om += 1,
                    RunStatus::Failed => to += 1,
                    RunStatus::Completed => {
                        solved += 1;
                        total += r.secs();
                    }
                }
            }
            let avg = if solved > 0 { total / solved as f64 } else { f64::NAN };
            table.row(vec![
                ds.to_string(),
                engine.name().to_string(),
                to.to_string(),
                om.to_string(),
                solved.to_string(),
                format!("{avg:.3}"),
            ]);
        }
    }
    table.print("Table 3: large D-queries (JM / TM / GM)");
}
