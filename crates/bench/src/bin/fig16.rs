//! Fig. 16 — comparison with the GraphflowDB analogue on C-queries.
//!
//! (a) catalog building time per dataset. The OM cells reproduce the
//!     paper's observed failures via the deterministic memory model (the
//!     rule fires on the *full-scale* Table 2 statistics; see DESIGN.md).
//! (b) GM vs GF query time on the datasets whose catalog builds.
//!
//! Expected shape: GF wins on few-label graphs (am/bs/go), GM wins (by
//! orders of magnitude) on many-label graphs (hu/yt); GF cannot run at all
//! on em/ep/hp.

use rig_baselines::{Catalog, Engine, GfLike, GmEngine};
use rig_bench::{load, template_query_probed, Args, Table};
use rig_datasets::spec;
use rig_query::Flavor;

fn full_scale_catalog_oom(name: &str) -> bool {
    let s = spec(name).unwrap();
    (s.edges >= Catalog::BUILD_OOM_EDGES && s.labels >= Catalog::BUILD_OOM_LABELS)
        || s.labels >= Catalog::BUILD_OOM_LABELS_ALONE
}

fn main() {
    let args = Args::parse();
    let budget = args.budget();
    let all = ["em", "ep", "hp", "yt", "hu", "bs", "go", "am"];

    // ---- (a) catalog build time ----
    let mut ta = Table::new(&["dataset", "catalog[s]", "BFL[s]"]);
    for ds in all {
        if full_scale_catalog_oom(ds) {
            let g = load(ds, &args);
            let bfl = rig_reach::BflIndex::new(&g);
            ta.row(vec![
                ds.into(),
                "OM".into(),
                format!("{:.4}", rig_reach::Reachability::build_seconds(&bfl)),
            ]);
            continue;
        }
        let g = load(ds, &args);
        let cat = Catalog::build(&g).expect("model says this catalog builds");
        let bfl = rig_reach::BflIndex::new(&g);
        ta.row(vec![
            ds.into(),
            format!("{:.3}", cat.build_time.as_secs_f64()),
            format!("{:.4}", rig_reach::Reachability::build_seconds(&bfl)),
        ]);
    }
    ta.print("Fig. 16(a): GF catalog vs GM BFL build time (OM = paper's memory model)");

    // ---- (b) query time on datasets where GF runs ----
    let mut tb = Table::new(&["dataset", "query", "GM", "GF", "matches"]);
    for ds in ["am", "bs", "go", "hu", "yt"] {
        let g = load(ds, &args);
        let gm = GmEngine::new(g.clone());
        let gf = GfLike::new(&g);
        for id in [17usize, 19, 16] {
            let q = template_query_probed(&g, gm.session(), id, Flavor::C, args.seed);
            let rg = gm.evaluate(&q, &budget);
            let rf = gf.evaluate(&q, &budget);
            tb.row(vec![
                ds.into(),
                format!("CQ{id}"),
                rg.display_cell(),
                rf.display_cell(),
                rg.occurrences.to_string(),
            ]);
        }
    }
    tb.print("Fig. 16(b): GM vs GF C-query time [s]");
}
