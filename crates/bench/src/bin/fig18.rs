//! Fig. 18 — reachability (D-) queries against engines without a
//! reachability index, on small Email fragments.
//!
//! (a) build time of: BFL (what GM needs), the full transitive closure
//!     (what GF needs to even express reachability), and the GF catalog —
//!     for varying label counts and growing node counts.
//! (b) D-query time of Neo4j-like (on-line DFS expansion), GF-like (WCOJ
//!     on the materialized closure) and GM, on 1k-node Email graphs.
//!
//! Expected shape: BFL build time is negligible and flat; TC build grows
//! fast with |V|; GM ≈ GF ≪ Neo4j once labels are plentiful, and GF's
//! hidden TC cost dwarfs everything (the paper ignores it when quoting GF
//! query times, and so do we — it is shown in panel (a)).

use rig_baselines::{Budget, Catalog, Engine, GfLike, GmEngine, NeoLike};
use rig_bench::{load_scaled, template_query_probed, Args, Table};
use rig_datasets::spec;
use rig_query::{EdgeKind, Flavor, PatternQuery};
use rig_reach::TransitiveClosure;

/// Converts a D-query into the equivalent C-query over a materialized
/// transitive closure graph.
fn reach_to_direct(q: &PatternQuery) -> PatternQuery {
    let mut out = PatternQuery::new(q.labels().to_vec());
    for e in q.edges() {
        out.ensure_edge(e.from, e.to, EdgeKind::Direct);
    }
    out
}

fn email_fragment(nodes: usize, labels: usize, seed: u64) -> rig_graph::DataGraph {
    let s = spec("em").unwrap();
    let scale = nodes as f64 / s.nodes as f64;
    let g = load_scaled("em", scale, seed);
    rig_datasets::zipf_labels(&g, labels, 0.8, seed ^ 0xF1)
}

fn main() {
    let args = Args::parse();
    let budget = args.budget();

    // ---- (a) index build times ----
    let mut ta = Table::new(&["labels", "nodes", "BFL[s]", "TC[s]", "TC-pairs", "CAT[s]"]);
    for (labels, nodes) in [
        (5usize, 1000usize),
        (10, 1000),
        (15, 1000),
        (20, 1000),
        (20, 2000),
        (20, 3000),
        (20, 5000),
    ] {
        let g = email_fragment(nodes, labels, args.seed);
        let bfl = rig_reach::BflIndex::new(&g);
        let tc = TransitiveClosure::new(&g);
        use rig_reach::Reachability;
        let cat = Catalog::build(&g);
        ta.row(vec![
            labels.to_string(),
            nodes.to_string(),
            format!("{:.4}", rig_reach::Reachability::build_seconds(&bfl)),
            format!("{:.4}", tc.build_seconds()),
            tc.pair_count().to_string(),
            match &cat {
                Ok(c) => format!("{:.4}", c.build_time.as_secs_f64()),
                Err(s) => s.code().to_string(),
            },
        ]);
    }
    ta.print("Fig. 18(a): BFL vs transitive closure vs catalog build time");

    // ---- (b) D-query times on 1k-node email fragments ----
    let mut tb = Table::new(&["query", "labels", "Neo4j", "GF(on TC)", "GM", "matches"]);
    for labels in [5usize, 10, 15, 20] {
        let g = email_fragment(1000, labels, args.seed);
        let gm = GmEngine::new(g.clone());
        let neo = NeoLike::new(&g);
        let tc = TransitiveClosure::new(&g);
        let tc_graph = tc.to_graph(&g);
        let gf = GfLike::new(&tc_graph);
        for id in [4usize, 15, 16] {
            let q = template_query_probed(&g, gm.session(), id, Flavor::D, args.seed);
            let rg = gm.evaluate(&q, &budget);
            let rn = neo.evaluate(&q, &budget);
            // GF runs the direct-converted query on the closure graph
            let rf =
                gf.evaluate(&reach_to_direct(&q), &Budget { timeout: budget.timeout, ..budget });
            tb.row(vec![
                format!("DQ{id}"),
                labels.to_string(),
                rn.display_cell(),
                rf.display_cell(),
                rg.display_cell(),
                rg.occurrences.to_string(),
            ]);
        }
    }
    tb.print("Fig. 18(b): D-query time on 1k-node Email graphs [s]");
}
