//! Validates `BENCH_*.json` artifacts: parses each file with the in-tree
//! JSON parser and checks the schema the `--json` harnesses emit (top-level
//! metadata, a non-empty `queries` array, and finite numeric `totals`).
//! CI runs this after regenerating the artifacts so a malformed emitter
//! fails the gate.
//!
//! Usage: `benchcheck <file.json>...` — exits non-zero on the first
//! invalid file.

use rig_bench::json::{parse, JsonValue};

fn fail(path: &str, msg: &str) -> ! {
    eprintln!("benchcheck: {path}: {msg}");
    std::process::exit(1);
}

fn require_num(path: &str, obj: &JsonValue, key: &str) -> f64 {
    match obj.get(key).and_then(|v| v.as_f64()) {
        Some(v) if v.is_finite() => v,
        _ => fail(path, &format!("totals.{key} missing or not a finite number")),
    }
}

fn check(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(path, &format!("read error: {e}")),
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => fail(path, &format!("parse error: {e}")),
    };
    for key in ["harness", "baseline"] {
        if doc.get(key).and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("missing string field {key:?}"));
        }
    }
    for key in ["scale", "seed", "timeout_s", "limit"] {
        if !doc.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
            fail(path, &format!("missing numeric field {key:?}"));
        }
    }
    let queries = match doc.get("queries").and_then(|q| q.as_arr()) {
        Some(q) if !q.is_empty() => q,
        _ => fail(path, "queries must be a non-empty array"),
    };
    for (i, q) in queries.iter().enumerate() {
        if q.get("query").and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("queries[{i}].query missing"));
        }
        if !matches!(q.get("comparable"), Some(JsonValue::Bool(_))) {
            fail(path, &format!("queries[{i}].comparable missing or not a bool"));
        }
        for side in ["csr", "reference"] {
            let s = match q.get(side) {
                Some(s) => s,
                None => fail(path, &format!("queries[{i}].{side} missing")),
            };
            for key in ["build_s", "heap_bytes", "enum_s", "steps", "matches"] {
                if !s.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                    fail(path, &format!("queries[{i}].{side}.{key} missing"));
                }
            }
            for key in ["timed_out", "limit_hit"] {
                if !matches!(s.get(key), Some(JsonValue::Bool(_))) {
                    fail(path, &format!("queries[{i}].{side}.{key} missing or not a bool"));
                }
            }
        }
    }
    let totals = match doc.get("totals") {
        Some(t) => t,
        None => fail(path, "missing totals object"),
    };
    let enum_speedup = require_num(path, totals, "enum_speedup");
    let heap_reduction = require_num(path, totals, "heap_reduction_pct");
    for key in [
        "queries",
        "comparable_queries",
        "incomparable_queries",
        "matches",
        "csr_enum_s",
        "ref_enum_s",
        "csr_throughput_per_s",
        "ref_throughput_per_s",
        "csr_build_s",
        "ref_build_s",
        "build_speedup",
        "csr_heap_bytes",
        "ref_heap_bytes",
    ] {
        require_num(path, totals, key);
    }
    let comparable = require_num(path, totals, "comparable_queries");
    if comparable == 0.0 {
        fail(path, "no comparable queries — throughput totals are meaningless");
    }
    println!(
        "benchcheck: {path}: OK ({} queries, {comparable} comparable, \
         enum speedup {enum_speedup:.2}x, heap reduction {heap_reduction:.1}%)",
        queries.len()
    );
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: benchcheck <file.json>...");
        std::process::exit(2);
    }
    for path in &paths {
        check(path);
    }
}
