//! Validates `BENCH_*.json` artifacts: parses each file with the in-tree
//! JSON parser and checks the schema the `--json` harnesses emit (top-level
//! metadata, a non-empty `queries` array, and finite numeric `totals`).
//! CI runs this after regenerating the artifacts so a malformed emitter
//! fails the gate.
//!
//! Parallel-sweep artifacts (`"parallel": true`, emitted by
//! `fig9 --json-parallel`) are validated against the sweep schema instead;
//! with `--min-par-speedup <x>` the best measured speedup must reach `x`.
//! When the artifact records fewer than 4 hardware threads the speedup
//! gate is skipped **with an explicit log line** (wall-clock parallel
//! scaling is meaningless without cores to run on) — the schema and the
//! in-harness count agreement still validate.
//!
//! Sharded-execution artifacts (`"shard": true`, emitted by
//! `bench_shard --json`) are validated against the shard schema: the
//! per-(shard count, partitioner) scaling sweep, per-configuration
//! cut-edge totals, and — hard gate — **zero unverified runs** (every
//! sharded count must have matched the single-graph engine in-harness).
//!
//! Dynamic-graph artifacts (`"updates": true`, emitted by
//! `bench_updates --json`) are validated against the updates schema: base
//! sizes, per-fill-level update throughput, per-query cold latency, and —
//! hard gate — **zero unverified queries** (every overlay count must have
//! matched its from-scratch-rebuild oracle in the harness).
//!
//! Durability artifacts (`"storage": true`, emitted by
//! `bench_storage --json`) are validated against the storage schema:
//! per-policy commit throughput, cold-start timings, and — hard gate —
//! **every recovery differentially verified** (recovered version and graph
//! matched the mutation-stream mirror; cold-start answers identical).
//!
//! Serving artifacts (`"serving": true`, emitted by
//! `bench_serving --json`) are validated against the serving schema:
//! per-kind latency percentiles, sustained throughput, and — hard gates —
//! **zero unverified queries** (every workload count served over HTTP
//! must have matched the direct in-process count), at least one request
//! served, and at least one `/update` commit applied.
//!
//! Factorized-counting artifacts (`"factorized": true`, emitted by
//! `bench_factorized --json`) are validated against the factorized schema:
//! per-query DP vs enumeration latency and — hard gate — **zero
//! unverified queries** (every count must have matched the RIG-free
//! brute-force oracle in the harness). With `--min-factorized-speedup <x>`
//! the aggregate DP-over-enumeration speedup must reach `x`.
//!
//! Static-analysis reports (`"analysis": true`, emitted by
//! `rigmatch check --format json`) are validated against the analysis
//! schema: severity counts that match the diagnostics array, a
//! `proven_empty` flag consistent with the emptiness-proof codes, and
//! well-formed per-diagnostic code/severity/span fields.
//!
//! Usage: `benchcheck [--min-par-speedup X] [--min-factorized-speedup X]
//! <file.json>...` — exits non-zero on the first invalid file.

use rig_bench::json::{parse, JsonValue};

fn fail(path: &str, msg: &str) -> ! {
    eprintln!("benchcheck: {path}: {msg}");
    std::process::exit(1);
}

fn require_num(path: &str, obj: &JsonValue, key: &str) -> f64 {
    match obj.get(key).and_then(|v| v.as_f64()) {
        Some(v) if v.is_finite() => v,
        _ => fail(path, &format!("totals.{key} missing or not a finite number")),
    }
}

/// Validates a `rigmatch check --format json` report. The counts are
/// cross-checked against the diagnostics array and `proven_empty` must
/// agree with the emptiness-proof codes, so a drifting emitter (or a
/// report truncated in flight) fails the gate rather than slipping
/// through as "clean".
fn check_analysis(path: &str, doc: &JsonValue) {
    match doc.get("query") {
        Some(JsonValue::Str(_) | JsonValue::Null) => {}
        _ => fail(path, "query must be a string or null"),
    }
    let proven_empty = match doc.get("proven_empty") {
        Some(JsonValue::Bool(b)) => *b,
        _ => fail(path, "proven_empty missing or not a bool"),
    };
    for key in ["errors", "warnings", "notes"] {
        require_num(path, doc, key);
    }
    let diagnostics = match doc.get("diagnostics").and_then(|d| d.as_arr()) {
        Some(d) => d,
        None => fail(path, "diagnostics must be an array"),
    };
    const CODES: [&str; 12] = [
        "P001", "A001", "A002", "E101", "E102", "E103", "R201", "R202", "R203", "C301", "C302",
        "C303",
    ];
    const PROOF_CODES: [&str; 3] = ["E101", "E102", "E103"];
    let (mut errors, mut warnings, mut notes) = (0.0, 0.0, 0.0);
    let mut any_proof = false;
    for (i, d) in diagnostics.iter().enumerate() {
        let code = match d.get("code").and_then(|v| v.as_str()) {
            Some(c) if CODES.contains(&c) => c,
            Some(c) => fail(path, &format!("diagnostics[{i}].code {c:?} is not a known lint code")),
            None => fail(path, &format!("diagnostics[{i}].code missing")),
        };
        any_proof |= PROOF_CODES.contains(&code);
        match d.get("severity").and_then(|v| v.as_str()) {
            Some("error") => errors += 1.0,
            Some("warning") => warnings += 1.0,
            Some("note") => notes += 1.0,
            _ => fail(path, &format!("diagnostics[{i}].severity must be error|warning|note")),
        }
        if d.get("message").and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("diagnostics[{i}].message missing"));
        }
        // span fields are optional but must be all-or-nothing numerics
        let span_fields = ["line", "col", "len"].iter().filter(|k| d.get(k).is_some()).count();
        if span_fields != 0 && span_fields != 3 {
            fail(path, &format!("diagnostics[{i}] has a partial span (need line+col+len)"));
        }
        if span_fields == 3 {
            for key in ["line", "col", "len"] {
                if !d.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                    fail(path, &format!("diagnostics[{i}].{key} not a finite number"));
                }
            }
        }
    }
    for (key, counted) in [("errors", errors), ("warnings", warnings), ("notes", notes)] {
        let declared = require_num(path, doc, key);
        if declared != counted {
            fail(path, &format!("{key} says {declared} but the diagnostics array holds {counted}"));
        }
    }
    if proven_empty != any_proof {
        fail(
            path,
            &format!(
                "proven_empty is {proven_empty} but the diagnostics {} an emptiness-proof code",
                if any_proof { "contain" } else { "lack" }
            ),
        );
    }
    println!(
        "benchcheck: {path}: OK (analysis, {} diagnostic(s): {errors:.0} error(s), \
         {warnings:.0} warning(s), {notes:.0} note(s){})",
        diagnostics.len(),
        if proven_empty { ", proven empty" } else { "" }
    );
}

/// Validates a parallel-sweep artifact; returns its best speedup.
fn check_parallel(path: &str, doc: &JsonValue) -> f64 {
    for key in ["harness", "baseline"] {
        if doc.get(key).and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("missing string field {key:?}"));
        }
    }
    for key in ["scale", "seed", "timeout_s", "limit", "hw_threads", "morsel"] {
        if !doc.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
            fail(path, &format!("missing numeric field {key:?}"));
        }
    }
    let thread_counts = match doc.get("thread_counts").and_then(|t| t.as_arr()) {
        Some(t) if !t.is_empty() => t,
        _ => fail(path, "thread_counts must be a non-empty array"),
    };
    let queries = match doc.get("queries").and_then(|q| q.as_arr()) {
        Some(q) if !q.is_empty() => q,
        _ => fail(path, "queries must be a non-empty array"),
    };
    for (i, q) in queries.iter().enumerate() {
        if q.get("query").and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("queries[{i}].query missing"));
        }
        let runs = match q.get("runs").and_then(|r| r.as_arr()) {
            Some(r) if r.len() == thread_counts.len() => r,
            _ => fail(path, &format!("queries[{i}].runs must have one entry per thread count")),
        };
        for (j, r) in runs.iter().enumerate() {
            for key in ["threads", "enum_s", "matches", "steps"] {
                if !r.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                    fail(path, &format!("queries[{i}].runs[{j}].{key} missing"));
                }
            }
            for key in ["timed_out", "limit_hit"] {
                if !matches!(r.get(key), Some(JsonValue::Bool(_))) {
                    fail(path, &format!("queries[{i}].runs[{j}].{key} missing or not a bool"));
                }
            }
        }
    }
    let totals = match doc.get("totals") {
        Some(t) => t,
        None => fail(path, "missing totals object"),
    };
    for key in ["queries", "comparable_queries", "incomparable_queries", "matches", "base_threads"]
    {
        require_num(path, totals, key);
    }
    let sweeps = match totals.get("sweeps").and_then(|s| s.as_arr()) {
        Some(s) if s.len() == thread_counts.len() => s,
        _ => fail(path, "totals.sweeps must have one entry per thread count"),
    };
    for (i, s) in sweeps.iter().enumerate() {
        for key in ["threads", "enum_s", "throughput_per_s", "speedup_vs_base"] {
            if !s.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                fail(path, &format!("totals.sweeps[{i}].{key} missing"));
            }
        }
    }
    let comparable = require_num(path, totals, "comparable_queries");
    if comparable == 0.0 {
        fail(path, "no comparable queries — speedup totals are meaningless");
    }
    let best = require_num(path, totals, "best_speedup");
    let hw = doc.get("hw_threads").and_then(|v| v.as_f64()).unwrap_or(1.0);
    println!(
        "benchcheck: {path}: OK (parallel sweep, {} queries, {comparable} comparable, \
         best speedup {best:.2}x on {hw} hw thread(s))",
        queries.len()
    );
    best
}

/// Validates a `bench_updates` artifact.
fn check_updates(path: &str, doc: &JsonValue) {
    if doc.get("harness").and_then(|v| v.as_str()).is_none() {
        fail(path, "missing string field \"harness\"");
    }
    for key in ["scale", "seed", "timeout_s", "limit"] {
        if !doc.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
            fail(path, &format!("missing numeric field {key:?}"));
        }
    }
    let base = match doc.get("base") {
        Some(b) => b,
        None => fail(path, "missing base object"),
    };
    for key in ["nodes", "edges", "labels"] {
        require_num(path, base, key);
    }
    let levels = match doc.get("levels").and_then(|l| l.as_arr()) {
        Some(l) if !l.is_empty() => l,
        _ => fail(path, "levels must be a non-empty array"),
    };
    for (i, l) in levels.iter().enumerate() {
        for key in ["fill_pct", "target_ops", "applied_ops", "update_s", "update_ops_per_s"] {
            if !l.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                fail(path, &format!("levels[{i}].{key} missing"));
            }
        }
        let queries = match l.get("queries").and_then(|q| q.as_arr()) {
            Some(q) if !q.is_empty() => q,
            _ => fail(path, &format!("levels[{i}].queries must be a non-empty array")),
        };
        for (j, q) in queries.iter().enumerate() {
            if q.get("query").and_then(|v| v.as_str()).is_none() {
                fail(path, &format!("levels[{i}].queries[{j}].query missing"));
            }
            for key in ["cold_s", "matches"] {
                if !q.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                    fail(path, &format!("levels[{i}].queries[{j}].{key} missing"));
                }
            }
            if !matches!(q.get("verified"), Some(JsonValue::Bool(_))) {
                fail(path, &format!("levels[{i}].queries[{j}].verified missing or not a bool"));
            }
        }
    }
    let totals = match doc.get("totals") {
        Some(t) => t,
        None => fail(path, "missing totals object"),
    };
    for key in
        ["levels", "queries", "verified_queries", "matches", "update_ops", "update_ops_per_s"]
    {
        require_num(path, totals, key);
    }
    let unverified = require_num(path, totals, "unverified_queries");
    if unverified != 0.0 {
        fail(path, &format!("{unverified} query run(s) failed update-vs-rebuild verification"));
    }
    let ops_per_s = require_num(path, totals, "update_ops_per_s");
    println!(
        "benchcheck: {path}: OK (updates, {} level(s), {} verified queries, \
         {ops_per_s:.0} update ops/s)",
        levels.len(),
        require_num(path, totals, "verified_queries"),
    );
}

/// Validates a `bench_serving` artifact. Hard gates: every workload
/// query's HTTP count must have matched the direct in-process count
/// (`unverified_queries == 0` — a mismatch is a wire-protocol or
/// snapshot-consistency bug), at least one request must have succeeded,
/// and at least one mutation commit must have landed through `/update`.
fn check_serving(path: &str, doc: &JsonValue) {
    for key in ["harness", "baseline"] {
        if doc.get(key).and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("missing string field {key:?}"));
        }
    }
    for key in ["scale", "seed", "workers", "queue_depth", "target_qps"] {
        if !doc.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
            fail(path, &format!("missing numeric field {key:?}"));
        }
    }
    let latency = match doc.get("latency") {
        Some(l) => l,
        None => fail(path, "missing latency object"),
    };
    for kind in ["query_stream", "query_count", "update"] {
        let k = match latency.get(kind) {
            Some(k) => k,
            None => fail(path, &format!("latency.{kind} missing")),
        };
        for key in ["sent", "ok", "p50_ms", "p99_ms", "mean_ms"] {
            if !k.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                fail(path, &format!("latency.{kind}.{key} missing"));
            }
        }
    }
    let queries = match doc.get("queries").and_then(|q| q.as_arr()) {
        Some(q) if !q.is_empty() => q,
        _ => fail(path, "queries must be a non-empty array"),
    };
    for (i, q) in queries.iter().enumerate() {
        if q.get("query").and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("queries[{i}].query missing"));
        }
        for key in ["http_count", "direct_count"] {
            if !q.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                fail(path, &format!("queries[{i}].{key} missing"));
            }
        }
        match q.get("verified") {
            Some(JsonValue::Bool(true)) => {}
            Some(JsonValue::Bool(false)) => fail(
                path,
                &format!("queries[{i}]: HTTP count disagreed with the direct count — wire bug"),
            ),
            _ => fail(path, &format!("queries[{i}].verified missing or not a bool")),
        }
    }
    let totals = match doc.get("totals") {
        Some(t) => t,
        None => fail(path, "missing totals object"),
    };
    for key in [
        "requests",
        "rejected_503",
        "errors",
        "wall_s",
        "sustained_qps",
        "tuples_streamed",
        "counts_via_dp",
        "distinct_queries",
        "verified_queries",
    ] {
        require_num(path, totals, key);
    }
    let unverified = require_num(path, totals, "unverified_queries");
    if unverified != 0.0 {
        fail(path, &format!("{unverified} workload count(s) disagreed over HTTP — serving bug"));
    }
    let ok = require_num(path, totals, "ok");
    if ok == 0.0 {
        fail(path, "no request succeeded — the server never served");
    }
    let commits = require_num(path, totals, "commits_applied");
    if commits == 0.0 {
        fail(path, "no mutation commit landed — the /update path went unexercised");
    }
    let qps = require_num(path, totals, "sustained_qps");
    println!(
        "benchcheck: {path}: OK (serving, {ok} requests ok at {qps:.0} req/s, \
         {commits} commits, {} queries HTTP-vs-direct verified)",
        queries.len()
    );
}

/// Validates a `bench_storage` artifact. Hard gate: every durability
/// policy's recovery must have been differentially verified against the
/// mutation-stream mirror, and the cold-start comparison must have served
/// identical probe answers — an unverified recovery count is a durability
/// bug, not a performance data point.
fn check_storage(path: &str, doc: &JsonValue) {
    for key in ["harness", "baseline"] {
        if doc.get(key).and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("missing string field {key:?}"));
        }
    }
    for key in ["scale", "seed", "commits", "txn_ops"] {
        if !doc.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
            fail(path, &format!("missing numeric field {key:?}"));
        }
    }
    let base = match doc.get("base") {
        Some(b) => b,
        None => fail(path, "missing base object"),
    };
    for key in ["nodes", "edges", "labels"] {
        require_num(path, base, key);
    }
    let policies = match doc.get("policies").and_then(|p| p.as_arr()) {
        Some(p) if !p.is_empty() => p,
        _ => fail(path, "policies must be a non-empty array"),
    };
    for (i, p) in policies.iter().enumerate() {
        let durability = match p.get("durability").and_then(|v| v.as_str()) {
            Some(d) if ["strict", "batched", "none"].contains(&d) => d,
            _ => fail(path, &format!("policies[{i}].durability missing or unknown")),
        };
        for key in [
            "commits",
            "ops",
            "commit_s",
            "commits_per_s",
            "ops_per_s",
            "recovered_version",
            "wal_records_replayed",
        ] {
            if !p.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                fail(path, &format!("policies[{i}].{key} missing"));
            }
        }
        match p.get("recovery_verified") {
            Some(JsonValue::Bool(true)) => {}
            Some(JsonValue::Bool(false)) => fail(
                path,
                &format!("policy {durability:?}: recovery count was NOT verified — durability bug"),
            ),
            _ => fail(path, &format!("policies[{i}].recovery_verified missing or not a bool")),
        }
    }
    let cold = match doc.get("cold_start") {
        Some(c) => c,
        None => fail(path, "missing cold_start object"),
    };
    for key in ["snapshot_open_s", "text_load_s", "speedup", "snapshot_bytes", "text_bytes"] {
        require_num(path, cold, key);
    }
    match cold.get("verified") {
        Some(JsonValue::Bool(true)) => {}
        Some(JsonValue::Bool(false)) => {
            fail(path, "cold_start: snapshot and text loader served different answers")
        }
        _ => fail(path, "cold_start.verified missing or not a bool"),
    }
    let totals = match doc.get("totals") {
        Some(t) => t,
        None => fail(path, "missing totals object"),
    };
    for key in ["policies", "verified_recoveries"] {
        require_num(path, totals, key);
    }
    let unverified = require_num(path, totals, "unverified_recoveries");
    if unverified != 0.0 {
        fail(path, &format!("{unverified} recovery count(s) unverified — durability bug"));
    }
    let speedup = cold.get("speedup").and_then(|v| v.as_f64()).unwrap_or(0.0);
    println!(
        "benchcheck: {path}: OK (storage, {} policies all recovery-verified, \
         cold start {speedup:.1}x faster from snapshot)",
        policies.len()
    );
}

/// Validates a `bench_factorized` artifact; returns its aggregate speedup.
fn check_factorized(path: &str, doc: &JsonValue) -> f64 {
    for key in ["harness", "baseline", "oracle"] {
        if doc.get(key).and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("missing string field {key:?}"));
        }
    }
    for key in ["scale", "seed", "timeout_s", "limit"] {
        if !doc.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
            fail(path, &format!("missing numeric field {key:?}"));
        }
    }
    let queries = match doc.get("queries").and_then(|q| q.as_arr()) {
        Some(q) if !q.is_empty() => q,
        _ => fail(path, "queries must be a non-empty array"),
    };
    for (i, q) in queries.iter().enumerate() {
        if q.get("query").and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("queries[{i}].query missing"));
        }
        for key in ["matches", "dp_s", "enum_s", "speedup"] {
            if !q.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                fail(path, &format!("queries[{i}].{key} missing"));
            }
        }
        for key in ["tree", "via_dp", "verified"] {
            if !matches!(q.get(key), Some(JsonValue::Bool(_))) {
                fail(path, &format!("queries[{i}].{key} missing or not a bool"));
            }
        }
    }
    if doc.get("skipped").and_then(|s| s.as_arr()).is_none() {
        fail(path, "skipped must be an array");
    }
    let totals = match doc.get("totals") {
        Some(t) => t,
        None => fail(path, "missing totals object"),
    };
    for key in ["queries", "skipped_queries", "verified_queries", "matches", "dp_s", "enum_s"] {
        require_num(path, totals, key);
    }
    let unverified = require_num(path, totals, "unverified_queries");
    if unverified != 0.0 {
        fail(path, &format!("{unverified} count(s) failed brute-force-oracle verification"));
    }
    let speedup = require_num(path, totals, "speedup");
    println!(
        "benchcheck: {path}: OK (factorized, {} queries all oracle-verified, \
         DP speedup {speedup:.0}x over enumeration)",
        queries.len()
    );
    speedup
}

/// Validates a `bench_shard` artifact: the sharded scaling sweep, with
/// — hard gate — **every run verified** (each sharded count matched the
/// single-graph engine's count in-harness).
fn check_shard(path: &str, doc: &JsonValue) {
    for key in ["harness", "baseline"] {
        if doc.get(key).and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("missing string field {key:?}"));
        }
    }
    for key in ["scale", "seed", "timeout_s", "limit"] {
        if !doc.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
            fail(path, &format!("missing numeric field {key:?}"));
        }
    }
    let shard_counts = match doc.get("shard_counts").and_then(|t| t.as_arr()) {
        Some(t) if !t.is_empty() => t,
        _ => fail(path, "shard_counts must be a non-empty array"),
    };
    let queries = match doc.get("queries").and_then(|q| q.as_arr()) {
        Some(q) if !q.is_empty() => q,
        _ => fail(path, "queries must be a non-empty array"),
    };
    for (i, q) in queries.iter().enumerate() {
        if q.get("query").and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("queries[{i}].query missing"));
        }
        for key in ["matches", "base_s"] {
            if !q.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                fail(path, &format!("queries[{i}].{key} missing"));
            }
        }
        let runs = match q.get("runs").and_then(|r| r.as_arr()) {
            // every shard count ran under at least one partitioner
            Some(r) if r.len() >= shard_counts.len() => r,
            _ => fail(path, &format!("queries[{i}].runs must cover every shard count")),
        };
        for (j, r) in runs.iter().enumerate() {
            for key in ["shards", "enum_s"] {
                if !r.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                    fail(path, &format!("queries[{i}].runs[{j}].{key} missing"));
                }
            }
            if r.get("partitioner").and_then(|v| v.as_str()).is_none() {
                fail(path, &format!("queries[{i}].runs[{j}].partitioner missing"));
            }
            if !matches!(r.get("verified"), Some(JsonValue::Bool(_))) {
                fail(path, &format!("queries[{i}].runs[{j}].verified missing or not a bool"));
            }
        }
    }
    if doc.get("skipped").and_then(|s| s.as_arr()).is_none() {
        fail(path, "skipped must be an array");
    }
    let cut_edges = match doc.get("cut_edges").and_then(|c| c.as_arr()) {
        Some(c) if !c.is_empty() => c,
        _ => fail(path, "cut_edges must be a non-empty array"),
    };
    for (i, c) in cut_edges.iter().enumerate() {
        for key in ["dataset", "partitioner"] {
            if c.get(key).and_then(|v| v.as_str()).is_none() {
                fail(path, &format!("cut_edges[{i}].{key} missing"));
            }
        }
        for key in ["shards", "cut_edges"] {
            if !c.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                fail(path, &format!("cut_edges[{i}].{key} missing"));
            }
        }
    }
    let totals = match doc.get("totals") {
        Some(t) => t,
        None => fail(path, "missing totals object"),
    };
    for key in ["queries", "skipped_queries", "runs", "verified_runs", "matches", "base_s"] {
        require_num(path, totals, key);
    }
    let sweeps = match totals.get("sweeps").and_then(|s| s.as_arr()) {
        Some(s) if s.len() >= shard_counts.len() => s,
        _ => fail(path, "totals.sweeps must cover every shard count"),
    };
    for (i, s) in sweeps.iter().enumerate() {
        for key in ["shards", "enum_s", "speedup_vs_single"] {
            if !s.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                fail(path, &format!("totals.sweeps[{i}].{key} missing"));
            }
        }
        if s.get("partitioner").and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("totals.sweeps[{i}].partitioner missing"));
        }
    }
    let unverified = require_num(path, totals, "unverified_runs");
    if unverified != 0.0 {
        fail(path, &format!("{unverified} sharded run(s) failed single-graph verification"));
    }
    let runs = require_num(path, totals, "runs");
    println!(
        "benchcheck: {path}: OK (shard sweep, {} queries x {} configurations, \
         all {runs} runs verified against the single-graph engine)",
        queries.len(),
        sweeps.len()
    );
}

fn check(path: &str, min_par_speedup: Option<f64>, min_factorized_speedup: Option<f64>) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(path, &format!("read error: {e}")),
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => fail(path, &format!("parse error: {e}")),
    };
    if matches!(doc.get("analysis"), Some(JsonValue::Bool(true))) {
        check_analysis(path, &doc);
        return;
    }
    if matches!(doc.get("updates"), Some(JsonValue::Bool(true))) {
        check_updates(path, &doc);
        return;
    }
    if matches!(doc.get("storage"), Some(JsonValue::Bool(true))) {
        check_storage(path, &doc);
        return;
    }
    if matches!(doc.get("serving"), Some(JsonValue::Bool(true))) {
        check_serving(path, &doc);
        return;
    }
    if matches!(doc.get("factorized"), Some(JsonValue::Bool(true))) {
        let speedup = check_factorized(path, &doc);
        if let Some(min) = min_factorized_speedup {
            if speedup < min {
                fail(path, &format!("factorized speedup {speedup:.1}x is below the {min}x gate"));
            }
        }
        return;
    }
    if matches!(doc.get("shard"), Some(JsonValue::Bool(true))) {
        check_shard(path, &doc);
        return;
    }
    if matches!(doc.get("parallel"), Some(JsonValue::Bool(true))) {
        let best = check_parallel(path, &doc);
        if let Some(min) = min_par_speedup {
            // wall-clock parallel scaling needs hardware that can run
            // threads concurrently; skip the gate loudly, never silently
            let hw = doc.get("hw_threads").and_then(|v| v.as_f64()).unwrap_or(1.0);
            if hw < 4.0 {
                println!(
                    "benchcheck: {path}: skipping the {min}x speedup gate — artifact records \
                     {hw} hardware thread(s) (need >= 4 for wall-clock scaling)"
                );
            } else if best < min {
                fail(path, &format!("best parallel speedup {best:.2}x is below the {min}x gate"));
            }
        }
        return;
    }
    for key in ["harness", "baseline"] {
        if doc.get(key).and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("missing string field {key:?}"));
        }
    }
    for key in ["scale", "seed", "timeout_s", "limit"] {
        if !doc.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
            fail(path, &format!("missing numeric field {key:?}"));
        }
    }
    let queries = match doc.get("queries").and_then(|q| q.as_arr()) {
        Some(q) if !q.is_empty() => q,
        _ => fail(path, "queries must be a non-empty array"),
    };
    for (i, q) in queries.iter().enumerate() {
        if q.get("query").and_then(|v| v.as_str()).is_none() {
            fail(path, &format!("queries[{i}].query missing"));
        }
        if !matches!(q.get("comparable"), Some(JsonValue::Bool(_))) {
            fail(path, &format!("queries[{i}].comparable missing or not a bool"));
        }
        for side in ["csr", "reference"] {
            let s = match q.get(side) {
                Some(s) => s,
                None => fail(path, &format!("queries[{i}].{side} missing")),
            };
            for key in ["build_s", "heap_bytes", "enum_s", "steps", "matches"] {
                if !s.get(key).and_then(|v| v.as_f64()).is_some_and(f64::is_finite) {
                    fail(path, &format!("queries[{i}].{side}.{key} missing"));
                }
            }
            for key in ["timed_out", "limit_hit"] {
                if !matches!(s.get(key), Some(JsonValue::Bool(_))) {
                    fail(path, &format!("queries[{i}].{side}.{key} missing or not a bool"));
                }
            }
        }
    }
    let totals = match doc.get("totals") {
        Some(t) => t,
        None => fail(path, "missing totals object"),
    };
    let enum_speedup = require_num(path, totals, "enum_speedup");
    let heap_reduction = require_num(path, totals, "heap_reduction_pct");
    for key in [
        "queries",
        "comparable_queries",
        "incomparable_queries",
        "matches",
        "csr_enum_s",
        "ref_enum_s",
        "csr_throughput_per_s",
        "ref_throughput_per_s",
        "csr_build_s",
        "ref_build_s",
        "build_speedup",
        "csr_heap_bytes",
        "ref_heap_bytes",
    ] {
        require_num(path, totals, key);
    }
    let comparable = require_num(path, totals, "comparable_queries");
    if comparable == 0.0 {
        fail(path, "no comparable queries — throughput totals are meaningless");
    }
    println!(
        "benchcheck: {path}: OK ({} queries, {comparable} comparable, \
         enum speedup {enum_speedup:.2}x, heap reduction {heap_reduction:.1}%)",
        queries.len()
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut min_par_speedup: Option<f64> = None;
    let mut min_factorized_speedup: Option<f64> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        let numeric_flag = |argv: &[String], i: usize, flag: &str| {
            argv.get(i).and_then(|s| s.parse::<f64>().ok()).unwrap_or_else(|| {
                eprintln!("benchcheck: {flag} needs a number");
                std::process::exit(2);
            })
        };
        if argv[i] == "--min-par-speedup" {
            i += 1;
            min_par_speedup = Some(numeric_flag(&argv, i, "--min-par-speedup"));
        } else if argv[i] == "--min-factorized-speedup" {
            i += 1;
            min_factorized_speedup = Some(numeric_flag(&argv, i, "--min-factorized-speedup"));
        } else {
            paths.push(argv[i].clone());
        }
        i += 1;
    }
    if paths.is_empty() {
        eprintln!(
            "usage: benchcheck [--min-par-speedup X] [--min-factorized-speedup X] <file.json>..."
        );
        std::process::exit(2);
    }
    for path in &paths {
        check(path, min_par_speedup, min_factorized_speedup);
    }
}
