//! Fig. 9 — C-query evaluation time of GM, TM, JM and ISO.
//!
//! ISO is GM's enumerator with injectivity enforced (the isomorphism
//! semantics of \[53\]); the paper compares it against the homomorphism
//! engines on the same child-edge-only workloads.
//!
//! `--json <path>` additionally measures GM's CSR RIG + allocation-free
//! MJoin against the in-process pre-refactor reference implementation on
//! the same workload and writes the comparison (enumeration throughput,
//! build time, heap bytes) as `BENCH_mjoin.json`.
//!
//! `--threads 1,2,8` additionally sweeps the morsel-driven parallel engine
//! over the same workload (RIG built once per query, enumeration timed at
//! each worker count); `--json-parallel <path>` writes the sweep as
//! `BENCH_parallel.json` for the benchcheck speedup gate.

use rig_baselines::{Budget, Engine, GmEngine, Jm, Tm};
use rig_bench::{
    load, measure_pair, measure_parallel, parallel_totals_json, random_queries,
    template_query_probed, totals_json, write_bench_json, write_parallel_json, Args,
    PairMeasurement, ParallelMeasurement, Table,
};
use rig_core::{GmConfig, Session};
use rig_mjoin::EnumOptions;
use rig_query::Flavor;

fn iso_config(budget: &Budget) -> GmConfig {
    GmConfig {
        enumeration: EnumOptions {
            injective: true,
            limit: budget.match_limit,
            timeout: budget.timeout,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn main() {
    let args = Args::parse();
    let budget = args.budget();
    let ids = [0usize, 3, 5, 6, 8, 17, 11, 12, 19, 10, 13, 14];
    let mut measurements: Vec<PairMeasurement> = Vec::new();
    let mut par_measurements: Vec<ParallelMeasurement> = Vec::new();

    for ds in ["ep", "bs"] {
        let g = std::sync::Arc::new(load(ds, &args));
        println!("# dataset {ds}: {:?}", g.stats());
        // the engine-comparison harnesses borrow the graph; the parallel
        // sweep (when requested) runs through the owning Session
        // (cached-RIG execution). Built lazily — a Session carries its own
        // reachability index, which a sweep-less run should not pay for.
        let session = (!args.threads.is_empty()).then(|| Session::new(std::sync::Arc::clone(&g)));
        let gm = GmEngine::new(g.clone());
        let iso = GmEngine::with_config(g.clone(), iso_config(&budget), "ISO");
        let tm = Tm::new(&g);
        let jm = Jm::new(&g);
        let mut table = Table::new(&["query", "GM", "TM", "JM", "ISO", "matches"]);
        for id in ids {
            let q = template_query_probed(&g, gm.session(), id, Flavor::C, args.seed);
            let rg = gm.evaluate(&q, &budget);
            let rt = tm.evaluate(&q, &budget);
            let rj = jm.evaluate(&q, &budget);
            let ri = iso.evaluate(&q, &budget);
            table.row(vec![
                format!("CQ{id}"),
                rg.display_cell(),
                rt.display_cell(),
                rj.display_cell(),
                ri.display_cell(),
                rg.occurrences.to_string(),
            ]);
            if args.json.is_some() {
                measurements.push(measure_pair(gm.session(), &format!("{ds}/CQ{id}"), &q, &budget));
            }
            if !args.threads.is_empty() {
                par_measurements.push(measure_parallel(
                    session.as_ref().expect("sweep implies a session"),
                    &format!("{ds}/CQ{id}"),
                    &q,
                    &budget,
                    &args.threads,
                ));
            }
        }
        table.print(&format!("Fig. 9 ({ds}) C-query time [s]"));
    }

    // hu: random C-queries by size
    let g = std::sync::Arc::new(load("hu", &args));
    println!("# dataset hu: {:?}", g.stats());
    let session = (!args.threads.is_empty()).then(|| Session::new(std::sync::Arc::clone(&g)));
    let gm = GmEngine::new(g.clone());
    let iso = GmEngine::with_config(g.clone(), iso_config(&budget), "ISO");
    let tm = Tm::new(&g);
    let jm = Jm::new(&g);
    let mut table = Table::new(&["query", "GM", "TM", "JM", "ISO", "matches"]);
    for (name, q) in random_queries(&g, &[4, 8, 12, 16, 20], Flavor::C, args.seed) {
        let rg = gm.evaluate(&q, &budget);
        let rt = tm.evaluate(&q, &budget);
        let rj = jm.evaluate(&q, &budget);
        let ri = iso.evaluate(&q, &budget);
        table.row(vec![
            name.clone(),
            rg.display_cell(),
            rt.display_cell(),
            rj.display_cell(),
            ri.display_cell(),
            rg.occurrences.to_string(),
        ]);
        if args.json.is_some() {
            measurements.push(measure_pair(gm.session(), &format!("hu/{name}"), &q, &budget));
        }
        if !args.threads.is_empty() {
            par_measurements.push(measure_parallel(
                session.as_ref().expect("sweep implies a session"),
                &format!("hu/{name}"),
                &q,
                &budget,
                &args.threads,
            ));
        }
    }
    table.print("Fig. 9 (hu) random C-query time [s]");

    if let Some(path) = &args.json {
        let records = measurements.iter().map(|m| m.to_json()).collect();
        let totals = totals_json(&measurements);
        write_bench_json(path, "fig9", &args, records, totals);
    }

    if !args.threads.is_empty() {
        let totals = parallel_totals_json(&par_measurements, &args.threads);
        let mut sweep_table = Table::new(&["threads", "enum [s]", "speedup"]);
        if let Some(sweeps) = totals.get("sweeps").and_then(|s| s.as_arr()) {
            for s in sweeps {
                sweep_table.row(vec![
                    format!("{}", s.get("threads").and_then(|v| v.as_f64()).unwrap_or(0.0)),
                    format!("{:.3}", s.get("enum_s").and_then(|v| v.as_f64()).unwrap_or(0.0)),
                    format!(
                        "{:.2}x",
                        s.get("speedup_vs_base").and_then(|v| v.as_f64()).unwrap_or(0.0)
                    ),
                ]);
            }
        }
        sweep_table.print("Fig. 9 morsel-parallel enumeration sweep");
        if let Some(path) = &args.json_parallel {
            let records = par_measurements.iter().map(|m| m.to_json()).collect();
            write_parallel_json(path, "fig9-parallel", &args, &args.threads, records, totals);
        }
    }
}
