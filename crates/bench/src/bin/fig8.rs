//! Fig. 8 — H-query evaluation time of GM, TM and JM.
//!
//! Panels (a)/(b): template instances (three per structural class, as the
//! paper plots) on em and ep. Panels (c)/(d)/(e): random H-queries of
//! growing node count on hp, yt and hu.

use rig_baselines::{Engine, GmEngine, Jm, Tm};
use rig_bench::{load, random_queries, template_query_probed, Args, Table};
use rig_query::Flavor;

fn main() {
    let args = Args::parse();
    let budget = args.budget();
    // the template ids Fig. 8 plots, grouped Acyc | Cyc | Clique | Combo
    let ids = [0usize, 3, 5, 6, 8, 17, 11, 12, 19, 10, 14, 16];

    for ds in ["em", "ep"] {
        let g = load(ds, &args);
        println!("# dataset {ds}: {:?}", g.stats());
        let gm = GmEngine::new(g.clone());
        let tm = Tm::new(&g);
        let jm = Jm::new(&g);
        let mut table = Table::new(&["query", "class", "GM", "TM", "JM", "matches"]);
        for id in ids {
            let q = template_query_probed(&g, gm.session(), id, Flavor::H, args.seed);
            let rg = gm.evaluate(&q, &budget);
            let rt = tm.evaluate(&q, &budget);
            let rj = jm.evaluate(&q, &budget);
            table.row(vec![
                format!("HQ{id}"),
                format!("{:?}", q.class()),
                rg.display_cell(),
                rt.display_cell(),
                rj.display_cell(),
                rg.occurrences.to_string(),
            ]);
        }
        table.print(&format!("Fig. 8 ({ds}) H-query time [s]"));
    }

    for ds in ["hp", "yt", "hu"] {
        let g = load(ds, &args);
        println!("# dataset {ds}: {:?}", g.stats());
        let gm = GmEngine::new(g.clone());
        let tm = Tm::new(&g);
        let jm = Jm::new(&g);
        let mut table = Table::new(&["query", "GM", "TM", "JM", "matches"]);
        for (name, q) in random_queries(&g, &[4, 8, 12, 16, 20], Flavor::H, args.seed) {
            let rg = gm.evaluate(&q, &budget);
            let rt = tm.evaluate(&q, &budget);
            let rj = jm.evaluate(&q, &budget);
            table.row(vec![
                name,
                rg.display_cell(),
                rt.display_cell(),
                rj.display_cell(),
                rg.occurrences.to_string(),
            ]);
        }
        table.print(&format!("Fig. 8 ({ds}) random H-query time [s]"));
    }
}
