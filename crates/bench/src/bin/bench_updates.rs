//! `bench_updates` — dynamic-graph figure: update throughput and query
//! latency at increasing delta fill levels.
//!
//! For each fill level (0%, 25%, 75% of the base edge count, compaction
//! disabled so the level holds), the harness:
//!
//! 1. opens a fresh [`Session`] on the shared base graph;
//! 2. applies random valid mutations (weighted edge churn + node
//!    add/remove) in fixed-size transactions until the target delta size
//!    is reached, timing commit throughput;
//! 3. runs the probed template workload cold (`no_cache`) on the overlay,
//!    timing per-query latency;
//! 4. **differentially verifies** every count against a from-scratch
//!    rebuild of the materialized snapshot (fresh CSR + BFL) — a mismatch
//!    aborts the run.
//!
//! `--json <path>` writes the `BENCH_updates.json` artifact (flagged
//! `"updates": true` for `benchcheck`).

use std::sync::Arc;
use std::time::Instant;

use rig_bench::json::JsonValue;
use rig_bench::{load, template_query_probed, Args, Table};
use rig_core::{CompactionPolicy, Session};
use rig_graph::{CommitImpact, DeltaOverlay};
use rig_query::{Flavor, PatternQuery};

const FILL_LEVELS: [f64; 3] = [0.0, 0.25, 0.75];
const TXN_OPS: usize = 128;

struct QueryPoint {
    name: String,
    cold_s: f64,
    matches: u64,
    verified: bool,
}

struct LevelPoint {
    fill_pct: f64,
    target_ops: u64,
    applied_ops: u64,
    update_s: f64,
    queries: Vec<QueryPoint>,
}

fn main() {
    let args = Args::parse();
    let g = Arc::new(load("yt", &args));
    println!("# dataset yt: {:?}", g.stats());
    let base_nodes = g.num_nodes();
    let base_edges = g.num_edges();
    let num_labels = g.num_labels() as u32;

    // the workload is fixed on the *base* graph so every level runs the
    // same queries
    let probe_session = Session::new(Arc::clone(&g));
    let ids = [0usize, 6, 11, 17];
    let queries: Vec<(String, PatternQuery)> = ids
        .iter()
        .map(|&id| {
            (format!("CQ{id}"), template_query_probed(&g, &probe_session, id, Flavor::C, args.seed))
        })
        .collect();
    drop(probe_session);

    let mut table =
        Table::new(&["fill", "delta ops", "update ops/s", "Σ cold query [s]", "matches"]);
    let mut levels: Vec<LevelPoint> = Vec::new();

    for fill in FILL_LEVELS {
        let target_ops = (fill * base_edges as f64) as u64;
        let session = Session::new(Arc::clone(&g)).with_compaction(CompactionPolicy::disabled());
        let mut gen_state = args.seed ^ (fill * 1000.0) as u64;

        // ---- update phase ----
        let update_start = Instant::now();
        let mut applied = 0u64;
        while applied < target_ops {
            let mut scratch: DeltaOverlay = (**session.graph().delta()).clone();
            let mut txn = session.begin();
            let batch = TXN_OPS.min((target_ops - applied) as usize);
            for _ in 0..batch {
                // the shared workload generator (also drives the
                // update-vs-rebuild differential suite)
                if let Some(op) = scratch.random_mutation(&mut gen_state, num_labels) {
                    let mut impact = CommitImpact::default();
                    // only count ops that changed something (an AddEdge of
                    // an existing edge is an idempotent no-op)
                    if scratch.apply(&op, &mut impact).is_ok() && impact.ops() > 0 {
                        txn.push(op);
                        applied += 1;
                    }
                }
            }
            session.commit(txn).expect("scratch-validated batch commits");
        }
        let update_s = update_start.elapsed().as_secs_f64();
        let delta_ops = session.graph().delta().ops();

        // ---- query phase (cold plans on the overlay) + verification ----
        let rebuilt = Session::new(session.graph().materialize());
        let mut points = Vec::new();
        let mut total_cold = 0.0f64;
        let mut total_matches = 0u64;
        for (name, q) in &queries {
            let p = session.prepare(q).expect("workload validates");
            let start = Instant::now();
            let o = p.run().no_cache().limit(args.limit).timeout(args.timeout).count();
            let cold_s = start.elapsed().as_secs_f64();
            let expect = rebuilt
                .prepare(q)
                .expect("rebuild validates")
                .run()
                .limit(args.limit)
                .timeout(args.timeout)
                .count();
            let comparable = !o.result.timed_out && !expect.result.timed_out;
            let verified = comparable && o.result.count == expect.result.count;
            assert!(
                verified || !comparable,
                "{name}: overlay count {} != rebuild count {}",
                o.result.count,
                expect.result.count
            );
            total_cold += cold_s;
            total_matches += o.result.count;
            points.push(QueryPoint {
                name: name.clone(),
                cold_s,
                matches: o.result.count,
                verified,
            });
        }
        let ops_per_s = if update_s > 0.0 { applied as f64 / update_s } else { 0.0 };
        table.row(vec![
            format!("{:.0}%", fill * 100.0),
            delta_ops.to_string(),
            format!("{ops_per_s:.0}"),
            format!("{total_cold:.5}"),
            total_matches.to_string(),
        ]);
        levels.push(LevelPoint {
            fill_pct: fill * 100.0,
            target_ops,
            applied_ops: applied,
            update_s,
            queries: points,
        });
    }
    table.print("Dynamic graphs: update throughput and cold query latency by delta fill");

    if let Some(path) = &args.json {
        let verified: u64 =
            levels.iter().flat_map(|l| &l.queries).filter(|q| q.verified).count() as u64;
        let total_queries: u64 = levels.iter().map(|l| l.queries.len() as u64).sum();
        let matches: u64 = levels.iter().flat_map(|l| &l.queries).map(|q| q.matches).sum();
        let update_ops: u64 = levels.iter().map(|l| l.applied_ops).sum();
        let update_s: f64 = levels.iter().map(|l| l.update_s).sum();
        let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
        let level_records: Vec<JsonValue> = levels
            .iter()
            .map(|l| {
                JsonValue::obj(vec![
                    ("fill_pct", l.fill_pct.into()),
                    ("target_ops", l.target_ops.into()),
                    ("applied_ops", l.applied_ops.into()),
                    ("update_s", l.update_s.into()),
                    ("update_ops_per_s", ratio(l.applied_ops as f64, l.update_s).into()),
                    (
                        "queries",
                        JsonValue::Arr(
                            l.queries
                                .iter()
                                .map(|q| {
                                    JsonValue::obj(vec![
                                        ("query", q.name.as_str().into()),
                                        ("cold_s", q.cold_s.into()),
                                        ("matches", q.matches.into()),
                                        ("verified", JsonValue::Bool(q.verified)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let doc = JsonValue::obj(vec![
            ("harness", "bench_updates".into()),
            ("updates", JsonValue::Bool(true)),
            ("scale", args.scale.into()),
            ("seed", args.seed.into()),
            ("timeout_s", args.timeout.as_secs_f64().into()),
            ("limit", args.limit.into()),
            (
                "base",
                JsonValue::obj(vec![
                    ("nodes", base_nodes.into()),
                    ("edges", base_edges.into()),
                    ("labels", (num_labels as usize).into()),
                ]),
            ),
            ("baseline", "from-scratch rebuild (materialized snapshot, fresh CSR + BFL)".into()),
            ("levels", JsonValue::Arr(level_records)),
            (
                "totals",
                JsonValue::obj(vec![
                    ("levels", levels.len().into()),
                    ("queries", total_queries.into()),
                    ("verified_queries", verified.into()),
                    ("unverified_queries", (total_queries - verified).into()),
                    ("matches", matches.into()),
                    ("update_ops", update_ops.into()),
                    ("update_ops_per_s", ratio(update_ops as f64, update_s).into()),
                ]),
            ),
        ]);
        std::fs::write(path, doc.to_pretty()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
