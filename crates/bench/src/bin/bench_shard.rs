//! `bench_shard` — sharded-execution scaling curve: scatter-gather
//! enumeration at shard counts {1, 2, 4, 8} (hash and range partitioning)
//! vs the single-graph morsel engine on the fig9 C-query workload.
//!
//! For each template instance (datasets ep/bs, probed non-empty label
//! assignments), the harness:
//!
//! 1. probes feasibility with a capped forced enumeration on the
//!    single-graph engine — a query with more matches than `--limit` is
//!    skipped and recorded as such (its exhaustive verification below
//!    would be unbounded);
//! 2. times the single-graph enumeration baseline
//!    (`force_enumerate().count()` — the sharded engine always
//!    enumerates, so the curve compares enumeration to enumeration);
//! 3. for every (shard count, partitioner) configuration, runs the query
//!    through a session with that sharding installed (one warm run to
//!    build the sharded store and plan, then the timed run) and
//!    **verifies the sharded count equals the single-graph count** — a
//!    mismatch aborts the run;
//! 4. records per-configuration cut-edge totals from the session's
//!    sharding stats.
//!
//! `--json <path>` writes the `BENCH_shard.json` artifact (flagged
//! `"shard": true` for `benchcheck`, which hard-fails any unverified
//! count).

use std::sync::Arc;
use std::time::Instant;

use rig_bench::json::JsonValue;
use rig_bench::{load, template_query_probed, Args, Table};
use rig_core::{Partitioner, Session, ShardOptions};
use rig_query::Flavor;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const PARTITIONERS: [Partitioner; 2] = [Partitioner::Hash, Partitioner::Range];

struct RunRec {
    shards: usize,
    partitioner: Partitioner,
    enum_s: f64,
    verified: bool,
}

struct QueryRec {
    name: String,
    matches: u64,
    base_s: f64,
    runs: Vec<RunRec>,
}

/// Cut-edge totals of one (dataset, shards, partitioner) store.
struct CutRec {
    dataset: String,
    shards: usize,
    partitioner: Partitioner,
    cut_edges: u64,
}

fn shard_configs() -> Vec<ShardOptions> {
    SHARD_COUNTS
        .iter()
        .flat_map(|&n| PARTITIONERS.map(|p| ShardOptions { shards: n, partitioner: p }))
        .collect()
}

fn main() {
    let args = Args::parse();
    let ids = [0usize, 3, 5, 6, 8, 17, 11, 12, 19, 10, 13, 14];
    let mut queries: Vec<QueryRec> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    let mut cuts: Vec<CutRec> = Vec::new();
    let cap = args.limit;

    for ds in ["ep", "bs"] {
        let g = Arc::new(load(ds, &args));
        println!("# dataset {ds}: {:?}", g.stats());
        let baseline = Session::new(Arc::clone(&g));

        // instantiate the workload once, with its feasibility probes and
        // single-graph timings, so every sharded configuration then sees
        // the identical query list
        let mut work: Vec<(String, rig_query::PatternQuery)> = Vec::new();
        for id in ids {
            let name = format!("{ds}/CQ{id}");
            let q = template_query_probed(&g, &baseline, id, Flavor::C, args.seed);
            let p = baseline.prepare(&q).expect("template query validates");
            p.run().count(); // warm the plan cache
            let probe = p.run().force_enumerate().limit(cap).count();
            if probe.result.limit_hit {
                println!("# {name}: > {cap} matches, skipped (verification infeasible)");
                skipped.push(name);
                continue;
            }
            let start = Instant::now();
            let base = p.run().force_enumerate().count();
            let base_s = start.elapsed().as_secs_f64();
            queries.push(QueryRec {
                name: name.clone(),
                matches: base.result.count,
                base_s,
                runs: Vec::new(),
            });
            work.push((name, q));
        }

        // one session per sharding configuration, reused across the
        // whole query list so the sharded store builds once per config
        for opts in shard_configs() {
            let session = Session::new(Arc::clone(&g));
            session.set_sharding(opts);
            for (name, q) in &work {
                let rec = queries
                    .iter_mut()
                    .find(|r| &r.name == name)
                    .expect("probed query was recorded");
                let p = session.prepare(q).expect("template query validates");
                p.run().count(); // warm: builds the sharded store + plan
                let start = Instant::now();
                let got = p.run().count();
                let enum_s = start.elapsed().as_secs_f64();
                let verified = got.result.count == rec.matches;
                assert!(
                    verified,
                    "{name} {opts:?}: sharded count {} != single-graph count {}",
                    got.result.count, rec.matches
                );
                rec.runs.push(RunRec {
                    shards: opts.effective_shards(),
                    partitioner: opts.partitioner,
                    enum_s,
                    verified,
                });
            }
            let stats = session.sharding_stats().expect("sharding installed");
            cuts.push(CutRec {
                dataset: ds.to_string(),
                shards: opts.effective_shards(),
                partitioner: opts.partitioner,
                cut_edges: stats.cut_edges,
            });
        }
    }
    assert!(!queries.is_empty(), "every query skipped — raise --limit or lower --scale");

    // per-configuration aggregates over the whole workload
    let base_s: f64 = queries.iter().map(|r| r.base_s).sum();
    let mut table = Table::new(&["shards", "partitioner", "enum [s]", "vs single-graph"]);
    let mut sweeps: Vec<JsonValue> = Vec::new();
    for opts in shard_configs() {
        let cfg_s: f64 = queries
            .iter()
            .flat_map(|r| &r.runs)
            .filter(|r| r.shards == opts.effective_shards() && r.partitioner == opts.partitioner)
            .map(|r| r.enum_s)
            .sum();
        let speedup = if cfg_s > 0.0 { base_s / cfg_s } else { 0.0 };
        table.row(vec![
            opts.effective_shards().to_string(),
            opts.partitioner.name().to_string(),
            format!("{cfg_s:.4}"),
            format!("{speedup:.2}x"),
        ]);
        sweeps.push(JsonValue::obj(vec![
            ("shards", opts.effective_shards().into()),
            ("partitioner", opts.partitioner.name().into()),
            ("enum_s", cfg_s.into()),
            ("speedup_vs_single", speedup.into()),
        ]));
    }
    table.print(&format!(
        "Sharded scatter-gather vs single-graph enumeration [s] \
         ({} queries, base {base_s:.4}s)",
        queries.len()
    ));

    let verified =
        queries.iter().map(|r| r.runs.iter().filter(|x| x.verified).count()).sum::<usize>();
    let total_runs = queries.iter().map(|r| r.runs.len()).sum::<usize>();
    println!(
        "total: {} queries x {} configurations, {verified}/{total_runs} runs verified, \
         {} skipped",
        queries.len(),
        shard_configs().len(),
        skipped.len()
    );

    if let Some(path) = &args.json {
        let records: Vec<JsonValue> = queries
            .iter()
            .map(|r| {
                JsonValue::obj(vec![
                    ("query", r.name.as_str().into()),
                    ("matches", r.matches.into()),
                    ("base_s", r.base_s.into()),
                    (
                        "runs",
                        JsonValue::Arr(
                            r.runs
                                .iter()
                                .map(|x| {
                                    JsonValue::obj(vec![
                                        ("shards", x.shards.into()),
                                        ("partitioner", x.partitioner.name().into()),
                                        ("enum_s", x.enum_s.into()),
                                        ("verified", JsonValue::Bool(x.verified)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let cut_records: Vec<JsonValue> = cuts
            .iter()
            .map(|c| {
                JsonValue::obj(vec![
                    ("dataset", c.dataset.as_str().into()),
                    ("shards", c.shards.into()),
                    ("partitioner", c.partitioner.name().into()),
                    ("cut_edges", c.cut_edges.into()),
                ])
            })
            .collect();
        let doc = JsonValue::obj(vec![
            ("harness", "bench_shard".into()),
            ("shard", JsonValue::Bool(true)),
            ("scale", args.scale.into()),
            ("seed", args.seed.into()),
            ("timeout_s", args.timeout.as_secs_f64().into()),
            ("limit", args.limit.into()),
            ("shard_counts", JsonValue::Arr(SHARD_COUNTS.iter().map(|&n| n.into()).collect())),
            ("baseline", "single-graph forced tuple enumeration (morsel engine, 1 thread)".into()),
            ("queries", JsonValue::Arr(records)),
            ("skipped", JsonValue::Arr(skipped.iter().map(|s| s.as_str().into()).collect())),
            ("cut_edges", JsonValue::Arr(cut_records)),
            (
                "totals",
                JsonValue::obj(vec![
                    ("queries", queries.len().into()),
                    ("skipped_queries", skipped.len().into()),
                    ("runs", total_runs.into()),
                    ("verified_runs", verified.into()),
                    ("unverified_runs", (total_runs - verified).into()),
                    ("matches", queries.iter().map(|r| r.matches).sum::<u64>().into()),
                    ("base_s", base_s.into()),
                    ("sweeps", JsonValue::Arr(sweeps)),
                ]),
            ),
        ]);
        std::fs::write(path, doc.to_pretty()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
