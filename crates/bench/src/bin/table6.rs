//! Table 6 — H-queries on a 30K-node Email fragment: Neo4j-like vs GM.
//!
//! Neither GF, EH nor RM can evaluate hybrid queries at all (§7.5); the
//! Neo4j analogue can (via DFS path expansion) but is orders of magnitude
//! slower than GM on every query.

use rig_baselines::{Engine, GmEngine, NeoLike};
use rig_bench::{load_scaled, template_query_probed, Args, Table};
use rig_datasets::spec;
use rig_query::Flavor;

fn main() {
    let args = Args::parse();
    let budget = args.budget();
    // 30K-node fragment at full scale; scaled down by the harness factor
    let target_nodes = (30_000.0 * (args.scale / 0.02).min(1.0)) as usize;
    let s = spec("em").unwrap();
    let g = load_scaled("em", target_nodes as f64 / s.nodes as f64, args.seed);
    println!("# em fragment: {:?}", g.stats());

    let gm = GmEngine::new(g.clone());
    let neo = NeoLike::new(&g);
    let ids = [0usize, 3, 5, 6, 8, 17, 11, 12, 19, 10, 13, 16];
    let mut table = Table::new(&["query", "Neo4j", "GM", "matches"]);
    for id in ids {
        let q = template_query_probed(&g, gm.session(), id, Flavor::H, args.seed);
        let rn = neo.evaluate(&q, &budget);
        let rg = gm.evaluate(&q, &budget);
        table.row(vec![
            format!("HQ{id}"),
            rn.display_cell(),
            rg.display_cell(),
            rg.occurrences.to_string(),
        ]);
    }
    table.print("Table 6: H-queries on the Email fragment, Neo4j vs GM [s]");
}
