//! `bench_serving` — load generator for the concurrent query server
//! (ROADMAP item 2, ISSUE 8).
//!
//! Default mode spawns an in-process [`rig_server::Server`] over a
//! generated dataset and drives it **open-loop**: request arrival times
//! are fixed up front from the target rate (deterministic, seeded
//! jitter) and each request gets its own client thread, so a slow server
//! backs up instead of silently slowing the offered load. Traffic is
//! mixed — ~80% queries (alternating NDJSON streams and factorized
//! counts) and ~20% mutation commits — and every request's end-to-end
//! latency and status are recorded.
//!
//! After the load phase the harness **quiesces and differentially
//! verifies** the serving path: every distinct workload query is counted
//! once over HTTP (`mode=count`) and once directly through the shared
//! [`Session`]; a mismatch is a protocol bug and fails the run (and the
//! `benchcheck` gate: `totals.unverified_queries` must be 0).
//!
//! `--json <path>` writes the `BENCH_serving.json` artifact (flagged
//! `"serving": true`). `--smoke --addr HOST:PORT` instead runs a short
//! round-trip against an *external* server (healthz → query → update →
//! metrics → shutdown) and exits 0 — `ci.sh` uses it against a real
//! `rigmatch serve` process.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rig_bench::json::JsonValue;
use rig_bench::{load, template_query_probed, Args, Table};
use rig_core::Session;
use rig_query::{to_hpql, Flavor};
use rig_server::{Server, ServerConfig};

// ---------------------------------------------------------------------
// arguments (hand-parsed: `rig_bench::Args::parse` rejects unknown flags)
// ---------------------------------------------------------------------

struct ServingArgs {
    scale: f64,
    seed: u64,
    json: Option<String>,
    requests: usize,
    qps: f64,
    workers: usize,
    queue_depth: usize,
    smoke: bool,
    addr: String,
    query: String,
}

impl Default for ServingArgs {
    fn default() -> Self {
        ServingArgs {
            scale: 0.02,
            seed: 42,
            json: None,
            requests: 300,
            qps: 150.0,
            workers: 4,
            queue_depth: 16,
            smoke: false,
            addr: String::new(),
            query: "MATCH (a:0)->(b:0)".to_string(),
        }
    }
}

fn parse_args() -> ServingArgs {
    let mut out = ServingArgs::default();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let take = |name: &str| -> String {
            argv.get(i + 1).unwrap_or_else(|| panic!("{name} needs a value")).clone()
        };
        match argv[i].as_str() {
            "--smoke" => {
                out.smoke = true;
                i += 1;
                continue;
            }
            "--scale" => out.scale = take("--scale").parse().expect("bad --scale"),
            "--seed" => out.seed = take("--seed").parse().expect("bad --seed"),
            "--json" => out.json = Some(take("--json")),
            "--requests" => out.requests = take("--requests").parse().expect("bad --requests"),
            "--qps" => out.qps = take("--qps").parse().expect("bad --qps"),
            "--workers" => out.workers = take("--workers").parse().expect("bad --workers"),
            "--queue-depth" => {
                out.queue_depth = take("--queue-depth").parse().expect("bad --queue-depth")
            }
            "--addr" => out.addr = take("--addr"),
            "--query" => out.query = take("--query"),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    assert!(out.qps > 0.0, "--qps must be positive");
    out
}

// ---------------------------------------------------------------------
// minimal raw-socket HTTP client
// ---------------------------------------------------------------------

/// One request over its own connection (the server is
/// `Connection: close`). The request goes out as a single `write_all`
/// and the response is accumulated manually so a reset at the tail
/// still yields everything received before it.
fn send_raw(addr: &str, method: &str, target: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(30)))?;
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(request.as_bytes())?;
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
        }
    }
    let text = String::from_utf8(response)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let status: u16 =
        text.split_whitespace().nth(1).and_then(|v| v.parse().ok()).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
        })?;
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

/// Pulls `"name":value` out of a flat JSON object (the wire format never
/// nests).
fn json_field(obj: &str, name: &str) -> Option<String> {
    let key = format!("\"{name}\":");
    let start = obj.find(&key)? + key.len();
    let rest = &obj[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim_matches('"').to_string())
}

/// Reads `name value` off a Prometheus text page.
fn metric_value(page: &str, name: &str) -> u64 {
    page.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{name} missing from metrics page"))
}

// ---------------------------------------------------------------------
// smoke mode (external server; used by ci.sh against `rigmatch serve`)
// ---------------------------------------------------------------------

fn run_smoke(args: &ServingArgs) {
    assert!(!args.addr.is_empty(), "--smoke needs --addr HOST:PORT");
    let addr = &args.addr;
    let check = |step: &str, r: std::io::Result<(u16, String)>| -> String {
        match r {
            Ok((200, body)) => body,
            Ok((status, body)) => panic!("smoke {step}: status {status}, body {body:?}"),
            Err(e) => panic!("smoke {step}: {e}"),
        }
    };
    check("healthz", send_raw(addr, "GET", "/healthz", ""));
    let summary = check("query", send_raw(addr, "POST", "/query?mode=count", &args.query));
    let count = json_field(&summary, "count").expect("count in query response");
    check("update", send_raw(addr, "POST", "/update", "a e 0 1\ncommit"));
    let page = check("metrics", send_raw(addr, "GET", "/metrics", ""));
    assert!(metric_value(&page, "rigmatch_queries_total") >= 1);
    assert!(metric_value(&page, "rigmatch_commits_applied_total") >= 1);
    check("shutdown", send_raw(addr, "POST", "/shutdown", ""));
    println!("serving smoke against {addr}: OK ({:?} counted {count} occurrences)", args.query);
}

// ---------------------------------------------------------------------
// load generation
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    StreamQuery,
    CountQuery,
    Update,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::StreamQuery => "query_stream",
            Kind::CountQuery => "query_count",
            Kind::Update => "update",
        }
    }
}

struct Sample {
    kind: Kind,
    status: u16,
    ms: f64,
}

/// A request in the precomputed open-loop schedule.
struct Slot {
    at: Duration,
    kind: Kind,
    /// Workload query index for queries, edge serial for updates.
    pick: usize,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn latency_summary(samples: &[Sample], kind: Kind) -> JsonValue {
    let mut ms: Vec<f64> = samples.iter().filter(|s| s.kind == kind).map(|s| s.ms).collect();
    ms.sort_by(f64::total_cmp);
    let ok = samples.iter().filter(|s| s.kind == kind && s.status == 200).count();
    JsonValue::obj(vec![
        ("sent", ms.len().into()),
        ("ok", ok.into()),
        ("p50_ms", percentile(&ms, 0.50).into()),
        ("p99_ms", percentile(&ms, 0.99).into()),
        ("mean_ms", (ms.iter().sum::<f64>() / ms.len().max(1) as f64).into()),
    ])
}

fn main() {
    let args = parse_args();
    if args.smoke {
        run_smoke(&args);
        return;
    }

    let bench_args = Args { scale: args.scale, seed: args.seed, ..Args::default() };
    let g = Arc::new(load("yt", &bench_args));
    println!("# dataset yt: {:?}", g.stats());
    let num_nodes = g.num_nodes() as u32;
    let session = Arc::new(Session::new(Arc::clone(&g)));

    // Workload: probed template instances (non-empty answers preferred),
    // half chain/cycle direct patterns, half hybrid with reachability
    // edges — printed back to HPQL, which is what goes over the wire.
    let specs = [(0usize, Flavor::C), (6, Flavor::H), (11, Flavor::C), (17, Flavor::H)];
    let queries: Vec<String> = specs
        .iter()
        .map(|&(id, flavor)| {
            let q = template_query_probed(&g, &session, id, flavor, args.seed);
            to_hpql(&q, None, |_| None)
        })
        .collect();
    for (i, q) in queries.iter().enumerate() {
        println!("# Q{i}: {q}");
    }

    let config = ServerConfig {
        workers: args.workers,
        queue_depth: args.queue_depth,
        ..ServerConfig::default()
    };
    let (addr, server_thread) =
        Server::spawn(Arc::clone(&session), "127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = addr.to_string();
    println!("# serving on {addr}: {} workers, queue depth {}", args.workers, args.queue_depth);

    // Open-loop schedule: arrivals at the target rate with seeded jitter,
    // fixed before the first request goes out.
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5E41);
    let mut edge_serial = 0usize;
    let schedule: Vec<Slot> = (0..args.requests)
        .map(|i| {
            let jitter = rng.gen_range(0.0..0.6 / args.qps);
            let at = Duration::from_secs_f64(i as f64 / args.qps + jitter);
            let kind = match rng.gen_range(0..10) {
                0 | 1 => Kind::Update,
                n if n % 2 == 0 => Kind::CountQuery,
                _ => Kind::StreamQuery,
            };
            let pick = if kind == Kind::Update {
                edge_serial += 1;
                edge_serial
            } else {
                rng.gen_range(0..queries.len())
            };
            Slot { at, kind, pick }
        })
        .collect();

    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let load_start = Instant::now();
    let clients: Vec<_> = schedule
        .iter()
        .map(|slot| {
            if let Some(wait) = slot.at.checked_sub(load_start.elapsed()) {
                std::thread::sleep(wait);
            }
            let (kind, pick) = (slot.kind, slot.pick);
            let addr = addr.clone();
            let samples = Arc::clone(&samples);
            let body = match kind {
                Kind::Update => {
                    // distinct serials so concurrent adds rarely collide;
                    // re-adding an existing edge is an idempotent commit
                    let u = (pick as u32).wrapping_mul(7919) % num_nodes;
                    let mut v = (pick as u32).wrapping_mul(104_729).wrapping_add(1) % num_nodes;
                    if v == u {
                        v = (v + 1) % num_nodes;
                    }
                    format!("a e {u} {v}\ncommit")
                }
                _ => queries[pick].clone(),
            };
            std::thread::spawn(move || {
                let target = match kind {
                    Kind::StreamQuery => "/query?mode=stream&limit=200&timeout_ms=5000",
                    // no budget: lets DP-eligible plans take the
                    // factorized counting route (a budget disables it)
                    Kind::CountQuery => "/query?mode=count",
                    Kind::Update => "/update",
                };
                let start = Instant::now();
                let status = match send_raw(&addr, "POST", target, &body) {
                    Ok((status, _)) => status,
                    Err(_) => 0, // connect/transport failure
                };
                let ms = start.elapsed().as_secs_f64() * 1e3;
                samples.lock().unwrap().push(Sample { kind, status, ms });
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let wall_s = load_start.elapsed().as_secs_f64();
    let samples = Arc::try_unwrap(samples).ok().expect("clients joined").into_inner().unwrap();

    // ---- quiesced differential verification ----
    // The store now contains the load phase's commits; HTTP counts and
    // direct in-process counts must agree exactly on it.
    let mut records = Vec::new();
    let mut unverified = 0u64;
    for q in &queries {
        // unbudgeted HTTP count (factorized DP when eligible) against a
        // direct enumeration count: the differential spans both engines
        let (status, summary) =
            send_raw(&addr, "POST", "/query?mode=count", q).expect("verify query");
        assert_eq!(status, 200, "verification count failed: {summary}");
        let http_count: u64 =
            json_field(&summary, "count").expect("count field").parse().expect("numeric count");
        let direct = session
            .prepare(q.as_str())
            .expect("workload re-parses")
            .run()
            .timeout(Duration::from_secs(30))
            .count();
        let verified = !direct.result.timed_out && http_count == direct.result.count;
        if !verified {
            unverified += 1;
            eprintln!("MISMATCH {q}: http {http_count} vs direct {}", direct.result.count);
        }
        records.push(JsonValue::obj(vec![
            ("query", q.as_str().into()),
            ("http_count", http_count.into()),
            ("direct_count", direct.result.count.into()),
            ("verified", JsonValue::Bool(verified)),
        ]));
    }

    let (_, page) = send_raw(&addr, "GET", "/metrics", "").expect("metrics");
    let commits = metric_value(&page, "rigmatch_commits_applied_total");
    let tuples = metric_value(&page, "rigmatch_tuples_streamed_total");
    let via_dp = metric_value(&page, "rigmatch_queries_via_dp_total");
    let (status, _) = send_raw(&addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    server_thread.join().expect("server thread").expect("clean serve exit");

    let ok = samples.iter().filter(|s| s.status == 200).count();
    let rejected = samples.iter().filter(|s| s.status == 503).count();
    let errors = samples.len() - ok - rejected;
    let sustained_qps = samples.len() as f64 / wall_s;

    let mut table = Table::new(&["kind", "sent", "ok", "p50 [ms]", "p99 [ms]"]);
    for kind in [Kind::StreamQuery, Kind::CountQuery, Kind::Update] {
        let s = latency_summary(&samples, kind);
        table.row(vec![
            kind.name().to_string(),
            format!("{}", s.get("sent").and_then(|v| v.as_f64()).unwrap_or(0.0)),
            format!("{}", s.get("ok").and_then(|v| v.as_f64()).unwrap_or(0.0)),
            format!("{:.2}", s.get("p50_ms").and_then(|v| v.as_f64()).unwrap_or(0.0)),
            format!("{:.2}", s.get("p99_ms").and_then(|v| v.as_f64()).unwrap_or(0.0)),
        ]);
    }
    table.print("serving latency");
    println!(
        "sustained {sustained_qps:.0} req/s over {wall_s:.2}s: {ok} ok, {rejected} rejected \
         (503), {errors} errors; {commits} commits, {tuples} tuples streamed, {via_dp} DP counts"
    );
    assert_eq!(unverified, 0, "{unverified} workload queries disagreed over HTTP");

    if let Some(path) = &args.json {
        let doc = JsonValue::obj(vec![
            ("harness", "bench_serving".into()),
            ("serving", JsonValue::Bool(true)),
            ("scale", args.scale.into()),
            ("seed", args.seed.into()),
            ("workers", args.workers.into()),
            ("queue_depth", args.queue_depth.into()),
            ("target_qps", args.qps.into()),
            ("baseline", "direct in-process Session evaluation of the same workload".into()),
            (
                "latency",
                JsonValue::obj(
                    [Kind::StreamQuery, Kind::CountQuery, Kind::Update]
                        .map(|k| (k.name(), latency_summary(&samples, k)))
                        .to_vec(),
                ),
            ),
            ("queries", JsonValue::Arr(records)),
            (
                "totals",
                JsonValue::obj(vec![
                    ("requests", samples.len().into()),
                    ("ok", ok.into()),
                    ("rejected_503", rejected.into()),
                    ("errors", errors.into()),
                    ("wall_s", wall_s.into()),
                    ("sustained_qps", sustained_qps.into()),
                    ("commits_applied", commits.into()),
                    ("tuples_streamed", tuples.into()),
                    ("counts_via_dp", via_dp.into()),
                    ("distinct_queries", queries.len().into()),
                    ("verified_queries", (queries.len() as u64 - unverified).into()),
                    ("unverified_queries", unverified.into()),
                ]),
            ),
        ]);
        std::fs::write(path, doc.to_pretty()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
