//! Fig. 11 — scalability with graph size: HQ8 and HQ12 instances on
//! increasingly larger subsets of DBLP.
//!
//! Expected shape: all engines grow with |V|; GM grows smoothly while TM
//! and JM deteriorate (or fail) faster.

use rig_baselines::{Engine, GmEngine, Jm, Tm};
use rig_bench::{load_scaled, template_query_probed, Args, Table};
use rig_query::Flavor;

fn main() {
    let args = Args::parse();
    let budget = args.budget();

    for id in [8usize, 12] {
        let mut table = Table::new(&["nodes", "GM", "TM", "JM", "matches"]);
        for step in 1..=5u32 {
            let scale = args.scale * step as f64 / 5.0;
            let g = load_scaled("db", scale, args.seed);
            let gm = GmEngine::new(g.clone());
            let q = template_query_probed(&g, gm.session(), id, Flavor::H, args.seed);
            let tm = Tm::new(&g);
            let jm = Jm::new(&g);
            let rg = gm.evaluate(&q, &budget);
            let rt = tm.evaluate(&q, &budget);
            let rj = jm.evaluate(&q, &budget);
            table.row(vec![
                g.num_nodes().to_string(),
                rg.display_cell(),
                rt.display_cell(),
                rj.display_cell(),
                rg.occurrences.to_string(),
            ]);
        }
        table.print(&format!("Fig. 11 HQ{id}: time vs |V| on dblp subsets [s]"));
    }
}
