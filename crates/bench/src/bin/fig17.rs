//! Fig. 17 — GM-JO / GM-RI vs the RapidMatch analogue on the (undirected,
//! dense) Human graph: mean query time for dense and sparse query sets of
//! 8–20 nodes.
//!
//! Expected shape: GM-JO best on dense query sets, GM-RI best on sparse
//! ones (cardinality differences vanish on sparse queries, §7.5), RM in
//! between.

use rig_baselines::{Engine, GmEngine, RmLike};
use rig_bench::{load, Args, Table};
use rig_core::GmConfig;
use rig_mjoin::{EnumOptions, SearchOrder};
use rig_query::{random_query, Flavor, GeneratorConfig};

fn main() {
    let args = Args::parse();
    let budget = args.budget();
    // RM considers undirected graphs: store both edge directions (§7.5)
    let hu = load("hu", &args);
    let mut b = rig_graph::GraphBuilder::new();
    for v in 0..hu.num_nodes() as u32 {
        b.add_node(hu.label(v));
    }
    for (u, v) in hu.edges() {
        b.add_edge(u, v);
        b.add_edge(v, u);
    }
    let g = b.build();
    println!("# undirected hu: {:?}", g.stats());

    let gm_jo = GmEngine::with_config(
        g.clone(),
        GmConfig {
            enumeration: EnumOptions { order: SearchOrder::Jo, ..Default::default() },
            ..Default::default()
        },
        "GM-JO",
    );
    let gm_ri = GmEngine::with_config(
        g.clone(),
        GmConfig {
            enumeration: EnumOptions { order: SearchOrder::Ri, ..Default::default() },
            ..Default::default()
        },
        "GM-RI",
    );
    let rm = RmLike::new(&g);

    for dense in [true, false] {
        let mut table = Table::new(&["size", "GM-JO", "GM-RI", "RM"]);
        for n in [8usize, 12, 16, 20] {
            let mut sums = [0.0f64; 3];
            let mut runs = 0;
            for rep in 0..3u64 {
                let mut cfg = GeneratorConfig::new(n, Flavor::C, args.seed + rep * 131 + n as u64);
                if dense {
                    cfg = cfg.dense();
                }
                let Some(q) = random_query(&g, &cfg) else { continue };
                runs += 1;
                sums[0] += gm_jo.evaluate(&q, &budget).secs();
                sums[1] += gm_ri.evaluate(&q, &budget).secs();
                sums[2] += rm.evaluate(&q, &budget).secs();
            }
            if runs == 0 {
                continue;
            }
            table.row(vec![
                format!("{n}N"),
                format!("{:.4}", sums[0] / runs as f64),
                format!("{:.4}", sums[1] / runs as f64),
                format!("{:.4}", sums[2] / runs as f64),
            ]);
        }
        let kind = if dense { "dense" } else { "sparse" };
        table.print(&format!("Fig. 17 ({kind} query sets on Human): mean time [s]"));
    }
}
