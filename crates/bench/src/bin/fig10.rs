//! Fig. 10 — H-query time on em while varying the number of distinct
//! labels (5, 10, 15, 20); graph size fixed. Queries: HQ2, HQ4, HQ7, HQ18.
//!
//! Expected shape: all engines get slower as labels decrease (inverted
//! lists grow), with the increase steepest near 5 labels; GM stays best.

use rig_baselines::{Engine, GmEngine, Jm, Tm};
use rig_bench::{load, template_query_probed, Args, Table};
use rig_query::Flavor;

fn main() {
    let args = Args::parse();
    let budget = args.budget();
    let base = load("em", &args);
    println!("# base em: {:?}", base.stats());

    for id in [2usize, 4, 7, 18] {
        let mut table = Table::new(&["labels", "GM", "TM", "JM", "matches"]);
        for nl in [5usize, 10, 15, 20] {
            let g = base.relabel(|v, old| if (old as usize) < nl { old } else { v % nl as u32 });
            let gm = GmEngine::new(g.clone());
            let q = template_query_probed(&g, gm.session(), id, Flavor::H, args.seed);
            let tm = Tm::new(&g);
            let jm = Jm::new(&g);
            let rg = gm.evaluate(&q, &budget);
            let rt = tm.evaluate(&q, &budget);
            let rj = jm.evaluate(&q, &budget);
            table.row(vec![
                nl.to_string(),
                rg.display_cell(),
                rt.display_cell(),
                rj.display_cell(),
                rg.occurrences.to_string(),
            ]);
        }
        table.print(&format!("Fig. 10 HQ{id}: time vs #labels on em [s]"));
    }
}
