//! Table 4 — search-order effectiveness: GM-RI vs GM-JO vs GM-BJ on the
//! H-queries HQ2, HQ3, HQ4, HQ15, HQ18 over em and ep.
//!
//! Expected shape: GM-JO best overall, GM-BJ close behind, GM-RI worst on
//! most hybrid queries (topology-only ordering ignores data statistics).

use rig_baselines::{Engine, GmEngine};
use rig_bench::{load, template_query_probed, Args, Table};
use rig_core::GmConfig;
use rig_mjoin::{EnumOptions, SearchOrder};
use rig_query::Flavor;

fn main() {
    let args = Args::parse();
    let budget = args.budget();
    let ids = [2usize, 3, 4, 15, 18];

    let mut table = Table::new(&[
        "query", "em GM-RI", "em GM-JO", "em GM-BJ", "ep GM-RI", "ep GM-JO", "ep GM-BJ",
    ]);
    let em = load("em", &args);
    let ep = load("ep", &args);
    println!("# em: {:?}\n# ep: {:?}", em.stats(), ep.stats());

    let make = |g: &rig_graph::DataGraph, order, name| {
        GmEngine::with_config(
            g.clone(),
            GmConfig {
                enumeration: EnumOptions { order, ..Default::default() },
                ..Default::default()
            },
            name,
        )
    };
    let engines_em = [
        make(&em, SearchOrder::Ri, "GM-RI"),
        make(&em, SearchOrder::Jo, "GM-JO"),
        make(&em, SearchOrder::Bj, "GM-BJ"),
    ];
    let engines_ep = [
        make(&ep, SearchOrder::Ri, "GM-RI"),
        make(&ep, SearchOrder::Jo, "GM-JO"),
        make(&ep, SearchOrder::Bj, "GM-BJ"),
    ];

    for id in ids {
        let mut row = vec![format!("HQ{id}")];
        let qe = template_query_probed(&em, engines_em[1].session(), id, Flavor::H, args.seed);
        for e in &engines_em {
            row.push(e.evaluate(&qe, &budget).display_cell());
        }
        let qp = template_query_probed(&ep, engines_ep[1].session(), id, Flavor::H, args.seed);
        for e in &engines_ep {
            row.push(e.evaluate(&qp, &budget).display_cell());
        }
        table.row(row);
    }
    table.print("Table 4: search ordering methods, H-queries [s]");
}
