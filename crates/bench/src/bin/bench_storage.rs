//! `bench_storage` — durability figures for the WAL + snapshot layer:
//!
//! 1. **commit throughput per durability policy**: the same deterministic
//!    [`MutationStream`] transaction sequence committed through a durable
//!    [`Session`] under `strict` (fsync every commit), `batched` and
//!    `none`, reported as commits/s and mutation ops/s;
//! 2. **cold start**: opening the compacted store (binary snapshot
//!    segment + BFL rebuild) vs loading the equivalent text file
//!    (parse + BFL rebuild).
//!
//! Every policy run ends with a **verified recovery**: the store is
//! reopened with [`Session::open`] and its recovered version and graph
//! must match the stream's mirror exactly; the cold-start comparison
//! verifies both sessions serve identical probe answers. `benchcheck`
//! hard-fails the artifact if any verification flag is false.
//!
//! `--json <path>` writes the `BENCH_storage.json` artifact (flagged
//! `"storage": true` for `benchcheck`).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use rig_bench::json::JsonValue;
use rig_bench::{load, Args, Table};
use rig_core::{Durability, FsBackend, Session, StoreOptions};
use rig_graph::{encode_segment, parse_text, to_text, MutationStream};
use rig_query::{EdgeKind, PatternQuery};

const TXN_OPS: usize = 8;

struct PolicyPoint {
    durability: Durability,
    commits: u64,
    ops: u64,
    commit_s: f64,
    recovered_version: u64,
    wal_records_replayed: u64,
    recovery_verified: bool,
}

struct ColdStart {
    snapshot_open_s: f64,
    text_load_s: f64,
    snapshot_bytes: u64,
    text_bytes: u64,
    verified: bool,
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rig_bench_storage_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn probe_counts(session: &Session) -> Vec<u64> {
    [EdgeKind::Direct, EdgeKind::Reachability]
        .into_iter()
        .map(|kind| {
            let mut q = PatternQuery::new(vec![0, 1]);
            q.add_edge(0, 1, kind);
            session.prepare(&q).expect("probe validates").run().count().result.count
        })
        .collect()
}

/// Commits the same stream prefix under `durability`, then reopens and
/// differentially verifies the recovered store against the stream mirror.
fn run_policy(
    g: &Arc<rig_graph::DataGraph>,
    seed: u64,
    commits: u64,
    durability: Durability,
) -> PolicyPoint {
    let dir = scratch(durability.as_str());
    let session = Session::create_at_with(
        &dir,
        Arc::clone(g),
        Default::default(),
        Arc::new(FsBackend),
        StoreOptions::with_durability(durability),
    )
    .expect("create store");

    let mut stream = MutationStream::new(Arc::clone(g), seed);
    let mut ops = 0u64;
    let start = Instant::now();
    for _ in 0..commits {
        let txn = stream.next_txn(TXN_OPS);
        ops += txn.len() as u64;
        session.apply(&txn).expect("commit");
    }
    // flushing inside the timed window keeps the batched/none numbers
    // honest: the loss window is closed before the clock stops
    session.flush_wal().expect("flush");
    let commit_s = start.elapsed().as_secs_f64();
    drop(session);

    let recovered = Session::open(&dir).expect("recover");
    let report = recovered.recovery_report().expect("report").clone();
    let recovery_verified = report.recovered_version == commits
        && encode_segment(&recovered.graph().materialize(), 0)
            == encode_segment(&stream.mirror().materialize(), 0);
    let _ = std::fs::remove_dir_all(&dir);

    PolicyPoint {
        durability,
        commits,
        ops,
        commit_s,
        recovered_version: report.recovered_version,
        wal_records_replayed: report.wal_records_replayed,
        recovery_verified,
    }
}

/// Times `Session::open` of a compacted store against the text loader on
/// the same graph; both sides must serve identical probe answers.
fn run_cold_start(g: &Arc<rig_graph::DataGraph>, seed: u64, commits: u64) -> ColdStart {
    let dir = scratch("coldstart");
    let session = Session::create_at(&dir, Arc::clone(g)).expect("create store");
    let mut stream = MutationStream::new(Arc::clone(g), seed);
    for _ in 0..commits {
        session.apply(&stream.next_txn(TXN_OPS)).expect("commit");
    }
    assert!(session.compact(), "a mutated store compacts");
    let materialized = session.graph().materialize();
    drop(session);

    let text_path = dir.join("graph.txt");
    std::fs::write(&text_path, to_text(&materialized)).expect("write text");
    let text_bytes = std::fs::metadata(&text_path).expect("stat text").len();
    let snapshot_bytes: u64 = std::fs::read_dir(&dir)
        .expect("list store")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".seg"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();

    let start = Instant::now();
    let from_snapshot = Session::open(&dir).expect("cold open");
    let snapshot_open_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let text = std::fs::read_to_string(&text_path).expect("read text");
    let from_text = Session::new(parse_text(&text).expect("parse text"));
    let text_load_s = start.elapsed().as_secs_f64();

    let verified = probe_counts(&from_snapshot) == probe_counts(&from_text);
    let _ = std::fs::remove_dir_all(&dir);

    ColdStart { snapshot_open_s, text_load_s, snapshot_bytes, text_bytes, verified }
}

fn main() {
    let args = Args::parse();
    let g = Arc::new(load("yt", &args));
    println!("# dataset yt: {:?}", g.stats());
    let commits = ((args.scale * 40_000.0) as u64).max(50);
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };

    let policies: Vec<PolicyPoint> = [Durability::Strict, Durability::Batched, Durability::None]
        .into_iter()
        .map(|d| run_policy(&g, args.seed, commits, d))
        .collect();

    let mut table =
        Table::new(&["durability", "commits", "commit/s", "ops/s", "recovered", "verified"]);
    for p in &policies {
        table.row(vec![
            p.durability.as_str().to_string(),
            p.commits.to_string(),
            format!("{:.0}", ratio(p.commits as f64, p.commit_s)),
            format!("{:.0}", ratio(p.ops as f64, p.commit_s)),
            format!("v{}", p.recovered_version),
            p.recovery_verified.to_string(),
        ]);
    }
    table.print("Durable commit throughput by fsync policy (recovery verified)");

    let cold = run_cold_start(&g, args.seed, commits);
    let mut table = Table::new(&["cold start", "time [s]", "bytes"]);
    table.row(vec![
        "snapshot (segment + BFL)".into(),
        format!("{:.5}", cold.snapshot_open_s),
        cold.snapshot_bytes.to_string(),
    ]);
    table.row(vec![
        "text loader (parse + BFL)".into(),
        format!("{:.5}", cold.text_load_s),
        cold.text_bytes.to_string(),
    ]);
    table.print("Cold start: snapshot open vs text load (answers verified identical)");

    for p in &policies {
        assert!(
            p.recovery_verified,
            "{}: recovery mismatch (recovered v{}, expected v{})",
            p.durability.as_str(),
            p.recovered_version,
            p.commits
        );
    }
    assert!(cold.verified, "cold-start probe answers diverge");

    if let Some(path) = &args.json {
        let verified = policies.iter().filter(|p| p.recovery_verified).count();
        let policy_records: Vec<JsonValue> = policies
            .iter()
            .map(|p| {
                JsonValue::obj(vec![
                    ("durability", p.durability.as_str().into()),
                    ("commits", p.commits.into()),
                    ("ops", p.ops.into()),
                    ("commit_s", p.commit_s.into()),
                    ("commits_per_s", ratio(p.commits as f64, p.commit_s).into()),
                    ("ops_per_s", ratio(p.ops as f64, p.commit_s).into()),
                    ("recovered_version", p.recovered_version.into()),
                    ("wal_records_replayed", p.wal_records_replayed.into()),
                    ("recovery_verified", JsonValue::Bool(p.recovery_verified)),
                ])
            })
            .collect();
        let doc = JsonValue::obj(vec![
            ("harness", "bench_storage".into()),
            ("storage", JsonValue::Bool(true)),
            ("scale", args.scale.into()),
            ("seed", args.seed.into()),
            ("commits", commits.into()),
            ("txn_ops", TXN_OPS.into()),
            (
                "base",
                JsonValue::obj(vec![
                    ("nodes", g.num_nodes().into()),
                    ("edges", g.num_edges().into()),
                    ("labels", g.num_labels().into()),
                ]),
            ),
            ("baseline", "text loader (parse + BFL rebuild)".into()),
            ("policies", JsonValue::Arr(policy_records)),
            (
                "cold_start",
                JsonValue::obj(vec![
                    ("snapshot_open_s", cold.snapshot_open_s.into()),
                    ("text_load_s", cold.text_load_s.into()),
                    ("speedup", ratio(cold.text_load_s, cold.snapshot_open_s).into()),
                    ("snapshot_bytes", cold.snapshot_bytes.into()),
                    ("text_bytes", cold.text_bytes.into()),
                    ("verified", JsonValue::Bool(cold.verified)),
                ]),
            ),
            (
                "totals",
                JsonValue::obj(vec![
                    ("policies", policies.len().into()),
                    ("verified_recoveries", verified.into()),
                    ("unverified_recoveries", (policies.len() - verified).into()),
                ]),
            ),
        ]);
        std::fs::write(path, doc.to_pretty()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
