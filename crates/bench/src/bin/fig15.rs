//! Fig. 15 — effect of query transitive reduction (§3) on D-query time,
//! on em and ep: GM (reduced) vs GM-NR (no reduction) vs TM (reduced).
//!
//! The D-flavor instances of the clique/combo templates contain transitive
//! reachability edges (e.g. a chord over a 2-edge path), which is exactly
//! the redundancy Fig. 14 illustrates.

use rig_baselines::{Engine, GmEngine, Tm};
use rig_bench::{load, template_query_probed, Args, Table};
use rig_core::GmConfig;
use rig_query::{transitive_reduction, Flavor};

fn main() {
    let args = Args::parse();
    let budget = args.budget();
    let ids = [12usize, 14, 15, 16, 18];

    for ds in ["em", "ep"] {
        let g = load(ds, &args);
        println!("# dataset {ds}: {:?}", g.stats());
        let gm = GmEngine::new(g.clone());
        let gm_nr = GmEngine::with_config(
            g.clone(),
            GmConfig { skip_reduction: true, ..Default::default() },
            "GM-NR",
        );
        let tm = Tm::new(&g);
        let mut table = Table::new(&["query", "edges", "reduced", "GM", "GM-NR", "TM", "matches"]);
        for id in ids {
            let q = template_query_probed(&g, gm.session(), id, Flavor::D, args.seed);
            let reduced = transitive_reduction(&q);
            let rg = gm.evaluate(&q, &budget);
            let rn = gm_nr.evaluate(&q, &budget);
            let rt = tm.evaluate(&reduced, &budget);
            table.row(vec![
                format!("DQ{id}"),
                q.num_edges().to_string(),
                reduced.num_edges().to_string(),
                rg.display_cell(),
                rn.display_cell(),
                rt.display_cell(),
                rg.occurrences.to_string(),
            ]);
        }
        table.print(&format!("Fig. 15 ({ds}): D-queries with/without reduction [s]"));
    }
}
