//! Fig. 12 — micro-ablations on em.
//!
//! (a) child-constraint checking inside double simulation: binSearch vs
//!     bitIter vs bitBat, on C-queries (expected: bitBat ≫ bitIter ≫
//!     binSearch).
//! (b) simulation relation construction: Gra (FBSimBas) vs Dag (FBSimDag)
//!     vs DagMap (FBSimDag + change flags), on H-queries; plus the Dag+Δ
//!     comparison on cyclic variants.

use std::time::Instant;

use rig_bench::{load, template_query, Args, Table};
use rig_query::{EdgeKind, Flavor};
use rig_reach::BflIndex;
use rig_sim::{double_simulation, DirectCheckMode, SimAlgorithm, SimContext, SimOptions};

fn main() {
    let args = Args::parse();
    let g = load("em", &args);
    println!("# dataset em: {:?}", g.stats());
    let bfl = BflIndex::new(&g);
    let ids = [0usize, 3, 5, 6, 8, 17, 11, 12, 19, 10, 14, 16];

    // ---- (a) child-constraint checking modes ----
    let mut ta = Table::new(&["query", "binSearch", "bitIter", "bitBat"]);
    for id in ids {
        let q = template_query(&g, id, Flavor::C, args.seed);
        let ctx = SimContext::new(&g, &q, &bfl);
        let mut cells = vec![format!("CQ{id}")];
        for mode in [DirectCheckMode::BinSearch, DirectCheckMode::BitIter, DirectCheckMode::BitBat]
        {
            let opts = SimOptions { direct_mode: mode, ..SimOptions::exact() };
            let t = Instant::now();
            let r = double_simulation(&ctx, &opts);
            std::hint::black_box(r.total_candidates());
            cells.push(format!("{:.4}", t.elapsed().as_secs_f64()));
        }
        ta.row(cells);
    }
    ta.print("Fig. 12(a): child-constraint check time on em [s]");

    // ---- (b) simulation construction algorithms ----
    let mut tb = Table::new(&["query", "Gra", "Dag", "DagMap"]);
    for id in ids {
        let q = template_query(&g, id, Flavor::H, args.seed);
        let ctx = SimContext::new(&g, &q, &bfl);
        let mut cells = vec![format!("HQ{id}")];
        for (alg, flags) in
            [(SimAlgorithm::Basic, false), (SimAlgorithm::Dag, false), (SimAlgorithm::Dag, true)]
        {
            let opts = SimOptions { algorithm: alg, change_flags: flags, ..SimOptions::exact() };
            let t = Instant::now();
            let r = double_simulation(&ctx, &opts);
            std::hint::black_box(r.total_candidates());
            cells.push(format!("{:.4}", t.elapsed().as_secs_f64()));
        }
        tb.row(cells);
    }
    tb.print("Fig. 12(b): FB construction time on em [s]");

    // ---- Dag+Δ on cyclic variants (the §7.4 'Gra vs Dag+Δ' remark) ----
    let mut tc = Table::new(&["query", "Gra", "Dag+Δ"]);
    for id in [6usize, 8, 10] {
        // make a cyclic variant by closing a directed cycle: add a
        // reachability back edge from the template's last node to node 0
        let base = template_query(&g, id, Flavor::H, args.seed);
        let mut q = base.clone();
        q.ensure_edge(base.num_nodes() as u32 - 1, 0, EdgeKind::Reachability);
        assert!(!q.is_dag(), "HQ{id} variant must be cyclic");
        let ctx = SimContext::new(&g, &q, &bfl);
        let mut cells = vec![format!("HQ{id}-cyc")];
        for alg in [SimAlgorithm::Basic, SimAlgorithm::DagDelta] {
            let opts = SimOptions { algorithm: alg, ..SimOptions::exact() };
            let t = Instant::now();
            let r = double_simulation(&ctx, &opts);
            std::hint::black_box(r.total_candidates());
            cells.push(format!("{:.4}", t.elapsed().as_secs_f64()));
        }
        tc.row(cells);
    }
    tc.print("§7.4: Gra vs Dag+Δ on cyclic patterns [s]");
}
