//! Table 5 — C-queries on em and ep: EH-probe, EH (with precomputation),
//! Neo4j-like and GM, with the paper's OM/FA/TO failure notation.
//!
//! Expected shape: GM fastest everywhere; EH dominated by precomputation;
//! Neo4j slow on cyclic/clique patterns (binary joins).

use rig_baselines::{EhLike, Engine, GmEngine, NeoLike};
use rig_bench::{load, template_query_probed, Args, Table};
use rig_query::Flavor;

fn main() {
    let args = Args::parse();
    let budget = args.budget();
    let ids = [0usize, 3, 5, 6, 8, 17, 11, 12, 19, 10, 13, 16];

    for ds in ["em", "ep"] {
        let g = load(ds, &args);
        println!("# dataset {ds}: {:?}", g.stats());
        let eh_probe = EhLike::probe_only(&g);
        let eh = EhLike::new(&g);
        let neo = NeoLike::new(&g);
        let gm = GmEngine::new(g.clone());
        let mut table = Table::new(&["query", "EH-probe", "EH", "Neo4j", "GM", "matches"]);
        for id in ids {
            let q = template_query_probed(&g, gm.session(), id, Flavor::C, args.seed);
            let rp = eh_probe.evaluate(&q, &budget);
            let re = eh.evaluate(&q, &budget);
            let rn = neo.evaluate(&q, &budget);
            let rg = gm.evaluate(&q, &budget);
            table.row(vec![
                format!("CQ{id}"),
                rp.display_cell(),
                re.display_cell(),
                rn.display_cell(),
                rg.display_cell(),
                rg.occurrences.to_string(),
            ]);
        }
        table.print(&format!("Table 5 ({ds}): C-query time, engines vs GM [s]"));
    }
}
