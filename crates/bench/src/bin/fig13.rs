//! Fig. 13 — RIG size, construction time and total query time for the
//! selection-mode ablations on ep:
//!
//! * GM   = pre-filter + double simulation (seeded)
//! * GM-S = double simulation only
//! * GM-F = pre-filter only (no simulation)
//! * TM   = the tree answer graph, for reference
//!
//! Expected shape: GM/GM-S build the smallest auxiliary structure (≈0.4%
//! of the graph in the paper), GM-F an order of magnitude larger; smaller
//! RIG ⇒ faster enumeration.
//!
//! `--json <path>` additionally compares the CSR RIG against the
//! pre-refactor hashmap reference (build time + heap bytes + enumeration)
//! on this workload and writes the artifact as `BENCH_rig.json`.
//!
//! `--threads 1,2,8` additionally sweeps **parallel RIG construction**
//! (per-query-edge CSR blocks built on scoped worker threads) over the
//! same workload and prints total build time per thread count.

use rig_baselines::{Engine, GmEngine, Tm};
use rig_bench::{
    load, measure_pair, template_query_probed, totals_json, write_bench_json, Args,
    PairMeasurement, Table,
};
use rig_core::{GmConfig, SelectMode, Session};
use rig_index::{build_rig, Rig, RigOptions};
use rig_query::Flavor;
use rig_query::PatternQuery;
use rig_sim::SimContext;

fn main() {
    let args = Args::parse();
    let budget = args.budget();
    let g = load("ep", &args);
    println!("# dataset ep: {:?}", g.stats());
    let gsize = (g.num_nodes() + g.num_edges()) as f64;
    let ids = [0usize, 3, 5, 6, 8, 17, 11, 12, 19, 10, 13, 16];

    let g_arc = std::sync::Arc::new(g.clone());
    let session = Session::new(std::sync::Arc::clone(&g_arc));
    let bfl = session.bfl();
    // one engine per variant, hoisted out of the query loop: constructing
    // a GmEngine builds a Session (graph share + BFL) — doing that per
    // (query, variant) pair would dominate the numbers being measured
    let engines: Vec<(SelectMode, GmEngine)> =
        [SelectMode::PrefilterThenSim, SelectMode::SimOnly, SelectMode::PrefilterOnly]
            .into_iter()
            .map(|select| {
                let cfg = GmConfig {
                    rig: RigOptions { select, ..RigOptions::default() },
                    ..Default::default()
                };
                (select, GmEngine::with_config(std::sync::Arc::clone(&g_arc), cfg, "GM-variant"))
            })
            .collect();
    let build_only = |q: &PatternQuery, opts: &RigOptions| -> Rig {
        let ctx = SimContext::new(&g, q, &*bfl);
        build_rig(&ctx, &bfl, opts)
    };
    let tm = Tm::new(&g);
    let mut measurements: Vec<PairMeasurement> = Vec::new();

    let mut size_t = Table::new(&["query", "GM%", "GM-S%", "GM-F%", "TM%"]);
    let mut build_t = Table::new(&["query", "GM", "GM-S", "GM-F", "TM"]);
    let mut query_t = Table::new(&["query", "GM", "GM-S", "GM-F", "TM"]);

    for id in ids {
        let q = template_query_probed(&g, &session, id, Flavor::H, args.seed);
        let mut sizes = vec![format!("HQ{id}")];
        let mut builds = vec![format!("HQ{id}")];
        let mut times = vec![format!("HQ{id}")];
        for (select, eng) in &engines {
            let opts = RigOptions { select: *select, ..RigOptions::default() };
            let rig = build_only(&q, &opts);
            sizes.push(format!("{:.3}", 100.0 * rig.stats.size() as f64 / gsize));
            builds.push(format!(
                "{:.4}",
                (rig.stats.select_time + rig.stats.expand_time).as_secs_f64()
            ));
            // total query time through the engine adapter
            let r = eng.evaluate(&q, &budget);
            times.push(r.display_cell());
        }
        // TM: answer-graph size via its report
        let rt = tm.evaluate(&q, &budget);
        sizes.push(format!("{:.3}", 100.0 * rt.aux_size as f64 / gsize));
        builds.push(format!("{:.4}", rt.matching_time.as_secs_f64()));
        times.push(rt.display_cell());
        size_t.row(sizes);
        build_t.row(builds);
        query_t.row(times);

        if args.json.is_some() {
            measurements.push(measure_pair(&session, &format!("ep/HQ{id}"), &q, &budget));
        }
    }

    size_t.print("Fig. 13(a): auxiliary-structure size, % of |G| (nodes+edges)");
    build_t.print("Fig. 13(b): auxiliary-structure construction time [s]");
    query_t.print("Fig. 13(c): total query time [s]");

    if !args.threads.is_empty() {
        let mut sweep = Table::new(&["threads", "total RIG build [s]", "Σ|RIG|"]);
        for &t in &args.threads {
            let cfg =
                GmConfig { rig: RigOptions::default().with_build_threads(t), ..Default::default() };
            let mut total_s = 0.0f64;
            let mut total_size = 0u64;
            for id in ids {
                let q = template_query_probed(&g, &session, id, Flavor::H, args.seed);
                let rig = build_only(&q, &cfg.rig);
                total_s += (rig.stats.select_time + rig.stats.expand_time).as_secs_f64();
                total_size += rig.stats.size();
            }
            sweep.row(vec![t.to_string(), format!("{total_s:.4}"), total_size.to_string()]);
        }
        sweep.print("Fig. 13 parallel RIG-construction sweep (build_threads)");
    }

    if let Some(path) = &args.json {
        let records = measurements.iter().map(|m| m.to_json()).collect();
        let totals = totals_json(&measurements);
        write_bench_json(path, "fig13", &args, records, totals);
    }
}
