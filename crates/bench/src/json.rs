//! Minimal JSON value model, writer and parser for the `--json` benchmark
//! artifacts (`BENCH_mjoin.json`, `BENCH_rig.json`).
//!
//! The workspace is fully offline (no serde), so this implements exactly
//! the subset the harnesses need: objects, arrays, strings, finite
//! numbers, booleans and null, with a recursive-descent parser used by the
//! `benchcheck` validator and by CI to prove the emitted artifacts parse.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Insertion-ordered key/value pairs (stable output for diffs).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and `\n` line ends.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => write_num(out, *v),
            JsonValue::Str(s) => write_str(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
    if v == v.trunc() && v.abs() < 9e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (strict enough for round-tripping the emitted
/// artifacts; escapes limited to the ones the writer produces plus
/// `\uXXXX`).
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(JsonValue::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = JsonValue::obj(vec![
            ("harness", "fig9".into()),
            ("scale", JsonValue::Num(0.02)),
            ("seed", 42u64.into()),
            ("ok", JsonValue::Bool(true)),
            ("nothing", JsonValue::Null),
            (
                "queries",
                JsonValue::Arr(vec![JsonValue::obj(vec![
                    ("name", "CQ0".into()),
                    ("matches", 123u64.into()),
                    ("enum_s", JsonValue::Num(0.25)),
                ])]),
            ),
            ("empty_arr", JsonValue::Arr(vec![])),
            ("empty_obj", JsonValue::Obj(vec![])),
        ]);
        let text = v.to_pretty();
        let back = parse(&text).expect("parse back");
        assert_eq!(back, v);
        assert_eq!(back.get("harness").and_then(|h| h.as_str()), Some("fig9"));
        assert_eq!(back.get("seed").and_then(|s| s.as_f64()), Some(42.0));
        assert_eq!(back.get("queries").and_then(|q| q.as_arr()).map(|a| a.len()), Some(1));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = JsonValue::Str("a\"b\\c\nd\te\u{1}f — µ".to_string());
        let text = v.to_pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut s = String::new();
        write_num(&mut s, 1_000_000.0);
        assert_eq!(s, "1000000");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parses_plain_json() {
        let v = parse(r#"{ "a": [1, 2.5, -3e2], "b": {"c": "d"} }"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }
}
