//! Criterion micro-benchmarks for the CSR RIG + allocation-free MJoin
//! against the pre-refactor reference implementation, plus the
//! scratch-reusing bitset kernels that back them. These are the
//! fine-grained companions to the `--json` artifacts (`BENCH_mjoin.json` /
//! `BENCH_rig.json`): same comparison, micro scale.
//!
//! Run with `cargo bench -p rig_bench --bench mjoin_csr`; set
//! `CRITERION_SMOKE=1` for the single-shot CI smoke configuration.

use criterion::{criterion_group, criterion_main, Criterion};

use rig_bitset::Bitset;
use rig_datasets::spec;
use rig_index::reference::build_reference_rig;
use rig_index::{build_rig, RigOptions};
use rig_mjoin::reference::ref_count;
use rig_mjoin::{count, par_count, EnumOptions};
use rig_query::{template, Flavor};
use rig_reach::BflIndex;
use rig_sim::SimContext;

fn test_graph() -> rig_graph::DataGraph {
    spec("em").unwrap().generate(0.01, 7)
}

fn test_query() -> rig_query::PatternQuery {
    template(6).instantiate_modulo(Flavor::H, 4)
}

fn bench_rig_build(c: &mut Criterion) {
    let g = test_graph();
    let q = test_query();
    let bfl = BflIndex::new(&g);
    let ctx = SimContext::new(&g, &q, &bfl);
    let opts = RigOptions::default();
    c.bench_function("rig/build/csr", |b| b.iter(|| build_rig(&ctx, &bfl, &opts)));
    c.bench_function("rig/build/reference", |b| b.iter(|| build_reference_rig(&ctx, &bfl, &opts)));
}

fn bench_enumerate(c: &mut Criterion) {
    let g = test_graph();
    let q = test_query();
    let bfl = BflIndex::new(&g);
    let ctx = SimContext::new(&g, &q, &bfl);
    let opts = RigOptions::default();
    let rig = build_rig(&ctx, &bfl, &opts);
    let ref_rig = build_reference_rig(&ctx, &bfl, &opts);
    // No limit: the workload is bounded by the graph scale, so every
    // engine enumerates the identical full answer.
    let eo = EnumOptions::default();
    c.bench_function("mjoin/enumerate/csr", |b| b.iter(|| count(&q, &rig, &eo)));
    c.bench_function("mjoin/enumerate/reference", |b| b.iter(|| ref_count(&q, &ref_rig, &eo)));
    c.bench_function("mjoin/enumerate/csr-par4", |b| b.iter(|| par_count(&q, &rig, &eo, 4)));
}

fn bench_bitset_into(c: &mut Criterion) {
    let a: Bitset = (0..100_000u32).filter(|v| v % 3 == 0).collect();
    let b: Bitset = (0..100_000u32).filter(|v| v % 5 == 0).collect();
    let d: Bitset = (0..100_000u32).filter(|v| v % 7 == 0).collect();
    c.bench_function("bitset/multi_and (alloc per call)", |bench| {
        bench.iter(|| Bitset::multi_and(&[&a, &b, &d]))
    });
    c.bench_function("bitset/multi_and_into (scratch reuse)", |bench| {
        let mut scratch = Bitset::new();
        bench.iter(|| {
            Bitset::multi_and_into(&[&a, &b, &d], &mut scratch);
            scratch.len()
        })
    });
    c.bench_function("bitset/and_into (scratch reuse)", |bench| {
        let mut scratch = Bitset::new();
        bench.iter(|| {
            a.and_into(&b, &mut scratch);
            scratch.len()
        })
    });
}

criterion_group!(benches, bench_rig_build, bench_enumerate, bench_bitset_into);
criterion_main!(benches);
