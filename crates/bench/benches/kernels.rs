//! Criterion micro-benchmarks for the hot kernels behind the figure
//! harnesses: bitmap algebra (§6), BFL reachability probes, double
//! simulation (§4), RIG construction (Alg. 4) and MJoin enumeration
//! (Alg. 5). Run with `cargo bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use rig_baselines::{Budget, Engine, GmEngine, Jm, Tm};
use rig_bitset::Bitset;
use rig_core::Session;
use rig_datasets::spec;
use rig_index::{build_rig, RigOptions};
use rig_mjoin::{count, EnumOptions};
use rig_query::{template, Flavor};
use rig_reach::{BflIndex, Reachability};
use rig_sim::{double_simulation, SimContext, SimOptions};

fn test_graph() -> rig_graph::DataGraph {
    spec("em").unwrap().generate(0.01, 7)
}

fn test_query(id: usize, flavor: Flavor, labels: usize) -> rig_query::PatternQuery {
    template(id).instantiate_modulo(flavor, labels)
}

fn bench_bitset(c: &mut Criterion) {
    let a: Bitset = (0..100_000u32).filter(|v| v % 3 == 0).collect();
    let b: Bitset = (0..100_000u32).filter(|v| v % 5 == 0).collect();
    let d: Bitset = (0..100_000u32).filter(|v| v % 7 == 0).collect();
    c.bench_function("bitset/and", |bench| bench.iter(|| a.and(&b)));
    c.bench_function("bitset/multi_and", |bench| bench.iter(|| Bitset::multi_and(&[&a, &b, &d])));
    c.bench_function("bitset/batch_iter", |bench| {
        bench.iter(|| {
            let mut it = a.batch_iter(256);
            let mut acc = 0u64;
            while let Some(chunk) = it.next_batch() {
                acc += chunk.len() as u64;
            }
            acc
        })
    });
}

fn bench_bfl(c: &mut Criterion) {
    let g = test_graph();
    let idx = BflIndex::new(&g);
    let n = g.num_nodes() as u32;
    c.bench_function("bfl/build", |bench| bench.iter(|| BflIndex::new(&g)));
    c.bench_function("bfl/probe", |bench| {
        let mut i = 0u32;
        bench.iter(|| {
            i = (i + 17) % n;
            idx.reaches(i, (i * 31 + 5) % n)
        })
    });
}

fn bench_sim_and_rig(c: &mut Criterion) {
    let g = test_graph();
    let bfl = BflIndex::new(&g);
    let q = test_query(8, Flavor::H, g.num_labels());
    let ctx = SimContext::new(&g, &q, &bfl);
    c.bench_function("sim/double_simulation_hq8", |bench| {
        bench.iter(|| double_simulation(&ctx, &SimOptions::paper_default()))
    });
    c.bench_function("rig/build_hq8", |bench| {
        bench.iter(|| build_rig(&ctx, &bfl, &RigOptions::default()))
    });
}

fn bench_mjoin(c: &mut Criterion) {
    let g = test_graph();
    let bfl = BflIndex::new(&g);
    let q = test_query(8, Flavor::H, g.num_labels());
    let ctx = SimContext::new(&g, &q, &bfl);
    let rig = build_rig(&ctx, &bfl, &RigOptions::default());
    c.bench_function("mjoin/enumerate_hq8", |bench| {
        bench.iter(|| count(&q, &rig, &EnumOptions { limit: Some(100_000), ..Default::default() }))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let g = test_graph();
    let q = test_query(6, Flavor::H, g.num_labels());
    let budget = Budget { match_limit: Some(100_000), ..Budget::unlimited() };
    c.bench_function("e2e/gm_hq6", |bench| {
        bench.iter_batched(
            || GmEngine::new(g.clone()),
            |e| e.evaluate(&q, &budget),
            BatchSize::PerIteration,
        )
    });
    // warm index, cold plan: bypass the plan cache so every iteration
    // measures the RIG build + enumeration (the pre-Session semantics of
    // this benchmark); the cached-plan variant isolates enumeration.
    let session = Session::new(g.clone());
    let prepared = session.prepare(&q).expect("workload validates");
    c.bench_function("e2e/gm_hq6_warm_index", |bench| {
        bench.iter(|| prepared.run().no_cache().limit(100_000).count())
    });
    c.bench_function("e2e/gm_hq6_cached_plan", |bench| {
        bench.iter(|| prepared.run().limit(100_000).count())
    });
    let tm = Tm::new(&g);
    c.bench_function("e2e/tm_hq6", |bench| bench.iter(|| tm.evaluate(&q, &budget)));
    let jm = Jm::new(&g);
    c.bench_function("e2e/jm_hq6", |bench| bench.iter(|| jm.evaluate(&q, &budget)));
    c.bench_function("e2e/session_build", |bench| bench.iter(|| Session::new(g.clone())));
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_bitset, bench_bfl, bench_sim_and_rig, bench_mjoin, bench_end_to_end
}
criterion_main!(kernels);
