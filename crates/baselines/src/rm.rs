//! RapidMatch analogue (§7.5, Fig. 17).
//!
//! RapidMatch is a *tree-based* WCOJ engine: it filters candidates along a
//! (nucleus-)decomposition of the query, then enumerates with multiway
//! intersections and a density-driven static order. The analogue keeps
//! that architecture: spanning-tree-restricted candidate filtering (no
//! full double simulation — RM's filter reasons only over the tree), full
//! RIG expansion over the filtered candidates, and RI-style topology-only
//! ordering for enumeration.

use std::time::Instant;

use crate::{failure_report, Budget, Engine};
use rig_core::{RunReport, RunStatus};
use rig_graph::DataGraph;
use rig_index::{build_rig_from_candidates, RigOptions};
use rig_mjoin::{count, EnumOptions, SearchOrder};
use rig_query::{EdgeKind, PatternQuery};
use rig_reach::BflIndex;
use rig_sim::{double_simulation, SimContext, SimOptions};

/// The RapidMatch-like engine (direct-edge queries only, like RM itself).
pub struct RmLike<'g> {
    graph: &'g DataGraph,
    bfl: BflIndex,
}

impl<'g> RmLike<'g> {
    pub fn new(graph: &'g DataGraph) -> Self {
        RmLike { graph, bfl: BflIndex::new(graph) }
    }
}

impl Engine for RmLike<'_> {
    fn name(&self) -> &'static str {
        "RM"
    }

    fn evaluate(&self, query: &PatternQuery, budget: &Budget) -> RunReport {
        let start = Instant::now();
        if query.edges().iter().any(|e| e.kind == EdgeKind::Reachability) {
            // RM evaluates subgraph (edge-to-edge) queries only.
            return failure_report("RM", RunStatus::Failed, start.elapsed(), 0);
        }
        // tree-restricted filtering
        let (tree_edges, _) = crate::Tm::spanning_tree(query);
        let tree_query = query.with_edges(&tree_edges);
        let tree_ctx = SimContext::new(self.graph, &tree_query, &self.bfl);
        let filtered = double_simulation(&tree_ctx, &SimOptions::paper_default());

        // expansion over the full query, directly from the tree-filtered
        // candidate sets (FB of the tree query sandwiches os ⊆ fb ⊆ ms, so
        // the RIG stays lossless for the full query)
        let ctx = SimContext::new(self.graph, query, &self.bfl);
        let rig = build_rig_from_candidates(&ctx, &self.bfl, &RigOptions::default(), filtered.fb);
        let matching_time = start.elapsed();
        if rig.is_empty() {
            let total = start.elapsed();
            return RunReport {
                engine: "RM".into(),
                status: RunStatus::Completed,
                occurrences: 0,
                total_time: total,
                matching_time,
                enumeration_time: total.saturating_sub(matching_time),
                intermediate_tuples: 0,
                aux_size: rig.stats.size(),
            };
        }
        let opts = EnumOptions {
            order: SearchOrder::Ri,
            limit: budget.match_limit,
            timeout: budget.timeout.map(|t| t.saturating_sub(start.elapsed())),
            injective: false,
        };
        let result = count(query, &rig, &opts);
        let total = start.elapsed();
        RunReport {
            engine: "RM".into(),
            status: if result.timed_out { RunStatus::Timeout } else { RunStatus::Completed },
            occurrences: result.count,
            total_time: total,
            matching_time,
            enumeration_time: total.saturating_sub(matching_time),
            intermediate_tuples: 0,
            aux_size: rig.stats.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_datasets::examples::fig2_graph;
    use rig_query::{EdgeKind, PatternQuery};

    #[test]
    fn rm_counts_direct_queries() {
        let g = fig2_graph();
        let rm = RmLike::new(&g);
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(0, 2, EdgeKind::Direct);
        let r = rm.evaluate(&q, &Budget::unlimited());
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.occurrences, 2);
    }

    #[test]
    fn rm_rejects_reachability() {
        let g = fig2_graph();
        let rm = RmLike::new(&g);
        let r = rm.evaluate(&rig_query::fig2_query(), &Budget::unlimited());
        assert_eq!(r.status, RunStatus::Failed);
    }

    #[test]
    fn rm_equals_gm_on_random_direct_queries() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use rig_graph::{GraphBuilder, NodeId};
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed + 900);
            let mut b = GraphBuilder::new();
            for _ in 0..14 {
                b.add_node(rng.gen_range(0..3));
            }
            for _ in 0..30 {
                let u = rng.gen_range(0..14) as NodeId;
                let v = rng.gen_range(0..14) as NodeId;
                if u != v {
                    b.add_edge(u, v);
                }
            }
            let g = b.build();
            let mut q = PatternQuery::new((0..3).map(|_| rng.gen_range(0..3)).collect());
            q.add_edge(0, 1, EdgeKind::Direct);
            q.add_edge(1, 2, EdgeKind::Direct);
            if rng.gen_bool(0.5) {
                q.add_edge(0, 2, EdgeKind::Direct);
            }
            let rm = RmLike::new(&g);
            let gm = crate::GmEngine::new(g.clone());
            assert_eq!(
                rm.evaluate(&q, &Budget::unlimited()).occurrences,
                gm.evaluate(&q, &Budget::unlimited()).occurrences,
                "seed={seed}"
            );
        }
    }
}
