//! A worst-case-optimal join matcher over the *raw* data graph (no RIG).
//!
//! This is the enumeration core shared by the GraphflowDB and EmptyHeaded
//! analogues: node-at-a-time extension with adjacency-list intersections,
//! like MJoin, but (a) candidates are raw label inverted lists rather than
//! simulation-refined sets, and (b) only **direct** edges are supported —
//! matching the paper's observation that these engines cannot evaluate
//! reachability edges without a materialized transitive closure (§7.5).

use std::time::{Duration, Instant};

use crate::Budget;
use rig_bitset::Bitset;
use rig_core::RunStatus;
use rig_graph::{DataGraph, NodeId};
use rig_query::{EdgeKind, PatternQuery, QNode};

/// Result of a raw-graph WCOJ run.
#[derive(Debug, Clone)]
pub struct WcojOutcome {
    pub count: u64,
    pub status: RunStatus,
    pub elapsed: Duration,
    pub steps: u64,
}

/// Counts homomorphisms of a direct-edge-only query by WCOJ over the data
/// graph. Returns `RunStatus::Failed` if the query has reachability edges.
pub fn wcoj_count(g: &DataGraph, query: &PatternQuery, budget: &Budget) -> WcojOutcome {
    let start = Instant::now();
    if query.edges().iter().any(|e| e.kind == EdgeKind::Reachability) {
        return WcojOutcome {
            count: 0,
            status: RunStatus::Failed,
            elapsed: start.elapsed(),
            steps: 0,
        };
    }
    let n = query.num_nodes();
    if n == 0 {
        return WcojOutcome {
            count: 0,
            status: RunStatus::Completed,
            elapsed: start.elapsed(),
            steps: 0,
        };
    }
    // greedy connected order on inverted-list sizes
    let order = raw_order(g, query);
    let mut pos_of = vec![usize::MAX; n];
    for (i, &q) in order.iter().enumerate() {
        pos_of[q as usize] = i;
    }
    // constraints per step: (bound position, bound_is_source)
    let mut constraints: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    for e in query.edges() {
        let pf = pos_of[e.from as usize];
        let pt = pos_of[e.to as usize];
        if pf < pt {
            constraints[pt].push((pf, true));
        } else {
            constraints[pf].push((pt, false));
        }
    }
    let mut st = State {
        g,
        query,
        order: &order,
        constraints: &constraints,
        deadline: budget.timeout.map(|t| start + t),
        limit: budget.match_limit.unwrap_or(u64::MAX),
        count: 0,
        steps: 0,
        timed_out: false,
    };
    let mut tuple = vec![0 as NodeId; n];
    st.recurse(0, &mut tuple);
    WcojOutcome {
        count: st.count,
        status: if st.timed_out { RunStatus::Timeout } else { RunStatus::Completed },
        elapsed: start.elapsed(),
        steps: st.steps,
    }
}

fn raw_order(g: &DataGraph, query: &PatternQuery) -> Vec<QNode> {
    let n = query.num_nodes();
    let card = |q: QNode| g.nodes_with_label(query.label(q)).len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let start = (0..n as QNode).min_by_key(|&q| (card(q), q)).unwrap();
    order.push(start);
    used[start as usize] = true;
    while order.len() < n {
        let next = (0..n as QNode)
            .filter(|&q| !used[q as usize])
            .min_by_key(|&q| {
                let connected = query.neighbors(q).any(|(nb, _, _)| used[nb as usize]);
                (!connected, card(q), q)
            })
            .unwrap();
        order.push(next);
        used[next as usize] = true;
    }
    order
}

struct State<'a> {
    g: &'a DataGraph,
    query: &'a PatternQuery,
    order: &'a [QNode],
    constraints: &'a [Vec<(usize, bool)>],
    deadline: Option<Instant>,
    limit: u64,
    count: u64,
    steps: u64,
    timed_out: bool,
}

impl State<'_> {
    fn recurse(&mut self, i: usize, tuple: &mut [NodeId]) -> bool {
        if i == self.order.len() {
            self.count += 1;
            return self.count < self.limit;
        }
        self.steps += 1;
        if self.steps.is_multiple_of(4096) {
            if let Some(d) = self.deadline {
                if Instant::now() > d {
                    self.timed_out = true;
                    return false;
                }
            }
        }
        let q = self.order[i];
        let label = self.query.label(q);
        let base = self.g.label_bitset(label);
        let cons = &self.constraints[i];
        if cons.is_empty() {
            for v in base.iter() {
                tuple[i] = v;
                if !self.recurse(i + 1, tuple) {
                    return false;
                }
            }
            return true;
        }
        // adjacency bitmaps of bound neighbors, intersected with the label set
        let mut sets: Vec<Bitset> = Vec::with_capacity(cons.len());
        for &(pos, bound_is_source) in cons {
            let b = tuple[pos];
            let adj =
                if bound_is_source { self.g.out_neighbors(b) } else { self.g.in_neighbors(b) };
            sets.push(Bitset::from_sorted_dedup(adj));
        }
        let refs: Vec<&Bitset> = std::iter::once(base).chain(sets.iter()).collect();
        let cand = Bitset::multi_and(&refs);
        for v in cand.iter() {
            tuple[i] = v;
            if !self.recurse(i + 1, tuple) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_datasets::examples::fig2_graph;
    use rig_query::{EdgeKind, PatternQuery};

    #[test]
    fn counts_direct_triangle() {
        let g = fig2_graph();
        // A -> B, A -> C direct only (drop the reachability edge)
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(0, 2, EdgeKind::Direct);
        let r = wcoj_count(&g, &q, &Budget::unlimited());
        assert_eq!(r.status, RunStatus::Completed);
        // a1->{b0,c0}, a2->{b2,c2}: 2 matches
        assert_eq!(r.count, 2);
    }

    #[test]
    fn rejects_reachability_edges() {
        let g = fig2_graph();
        let q = rig_query::fig2_query();
        let r = wcoj_count(&g, &q, &Budget::unlimited());
        assert_eq!(r.status, RunStatus::Failed);
    }

    #[test]
    fn limit_stops_early() {
        let g = fig2_graph();
        let mut q = PatternQuery::new(vec![0, 1]);
        q.add_edge(0, 1, EdgeKind::Direct);
        let r = wcoj_count(&g, &q, &Budget::with_limit(1));
        assert_eq!(r.count, 1);
    }
}
