//! JM — the join-based approach (§1, §7.1; R-Join \[12\] style).
//!
//! 1. Materialize one binary relation per query edge: the edge's match
//!    set over (pre-filtered) candidate lists.
//! 2. Pick a left-deep join order — exhaustive subset DP when the query
//!    has ≤ 12 edges (the paper notes JM's DP enumerates millions of plans
//!    on large queries), greedy smallest-relation-first otherwise.
//! 3. Execute the plan as a sequence of hash joins, materializing every
//!    intermediate relation. Intermediates can exceed the final output by
//!    orders of magnitude — that blow-up is JM's defining weakness and is
//!    bounded by [`Budget::max_intermediate`].

use std::time::Instant;

use crate::{failure_report, Budget, Engine};
use rig_core::{RunReport, RunStatus};
use rig_graph::{DataGraph, FxHashMap, NodeId};
use rig_query::{EdgeId, EdgeKind, PatternQuery, QNode};
use rig_reach::{BflIndex, Reachability};
use rig_sim::{prefilter, SimContext};

/// The JM engine. Holds the per-graph BFL index (like GM, JM needs a
/// reachability index for reachability edges).
pub struct Jm<'g> {
    graph: &'g DataGraph,
    bfl: BflIndex,
    /// Apply the [11, 63] node pre-filter before materializing relations
    /// (the paper applies it to both JM and TM).
    pub use_prefilter: bool,
}

impl<'g> Jm<'g> {
    pub fn new(graph: &'g DataGraph) -> Self {
        Jm { graph, bfl: BflIndex::new(graph), use_prefilter: true }
    }

    /// Number of left-deep plans the DP enumerates for an `m`-edge query —
    /// the statistic behind the paper's "2,384,971 query plans" remark.
    pub fn plans_enumerated(m: usize) -> u64 {
        // subset DP touches every (subset, next-edge) pair
        if m >= 63 {
            return u64::MAX;
        }
        (1u64 << m) * m as u64
    }

    fn edge_relation(
        &self,
        q: &PatternQuery,
        cand: &[rig_bitset::Bitset],
        eid: EdgeId,
        budget: &Budget,
    ) -> Result<Vec<(NodeId, NodeId)>, RunStatus> {
        let e = q.edge(eid);
        let mut out = Vec::new();
        let cap = budget.max_intermediate.unwrap_or(u64::MAX);
        match e.kind {
            EdgeKind::Direct => {
                for u in cand[e.from as usize].iter() {
                    for &v in self.graph.out_neighbors(u) {
                        if cand[e.to as usize].contains(v) {
                            out.push((u, v));
                            if out.len() as u64 > cap {
                                return Err(RunStatus::MemoryExceeded);
                            }
                        }
                    }
                }
            }
            EdgeKind::Reachability => {
                for u in cand[e.from as usize].iter() {
                    for v in cand[e.to as usize].iter() {
                        if self.bfl.reaches(u, v) {
                            out.push((u, v));
                            if out.len() as u64 > cap {
                                return Err(RunStatus::MemoryExceeded);
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Left-deep plan: the order in which edge relations are joined.
fn plan_order(q: &PatternQuery, sizes: &[u64]) -> Vec<EdgeId> {
    let m = q.num_edges();
    if m == 0 {
        return Vec::new();
    }
    if m <= 12 {
        dp_plan(q, sizes)
    } else {
        greedy_plan(q, sizes)
    }
}

fn edge_nodes(q: &PatternQuery, e: EdgeId) -> (QNode, QNode) {
    let pe = q.edge(e);
    (pe.from, pe.to)
}

fn greedy_plan(q: &PatternQuery, sizes: &[u64]) -> Vec<EdgeId> {
    let m = q.num_edges();
    let mut used = vec![false; m];
    let mut bound: Vec<bool> = vec![false; q.num_nodes()];
    let first = (0..m).min_by_key(|&e| sizes[e]).unwrap() as EdgeId;
    let mut order = vec![first];
    used[first as usize] = true;
    let (f, t) = edge_nodes(q, first);
    bound[f as usize] = true;
    bound[t as usize] = true;
    while order.len() < m {
        let next = (0..m as EdgeId)
            .filter(|&e| !used[e as usize])
            .min_by_key(|&e| {
                let (f, t) = edge_nodes(q, e);
                let connected = bound[f as usize] || bound[t as usize];
                (!connected, sizes[e as usize], e)
            })
            .unwrap();
        used[next as usize] = true;
        let (f, t) = edge_nodes(q, next);
        bound[f as usize] = true;
        bound[t as usize] = true;
        order.push(next);
    }
    order
}

/// Exhaustive left-deep DP over edge subsets, minimizing the running
/// product of relation sizes scaled by shared-variable selectivities.
#[allow(clippy::needless_range_loop)] // `e` doubles as bitmask position
fn dp_plan(q: &PatternQuery, sizes: &[u64]) -> Vec<EdgeId> {
    let m = q.num_edges();
    let full = (1u32 << m) - 1;
    let size = 1usize << m;
    let mut cost = vec![f64::INFINITY; size];
    let mut pred = vec![(0u32, 0 as EdgeId); size];
    for e in 0..m {
        cost[1 << e] = sizes[e] as f64;
    }
    for mask in 1..=full {
        if cost[mask as usize].is_infinite() {
            continue;
        }
        // query nodes bound by this subset
        let mut bound = vec![false; q.num_nodes()];
        for e in 0..m {
            if mask & (1 << e) != 0 {
                let (f, t) = edge_nodes(q, e as EdgeId);
                bound[f as usize] = true;
                bound[t as usize] = true;
            }
        }
        for e in 0..m {
            let bit = 1u32 << e;
            if mask & bit != 0 {
                continue;
            }
            let (f, t) = edge_nodes(q, e as EdgeId);
            let connected = bound[f as usize] || bound[t as usize];
            // disconnected extension allowed only if no connected one exists
            if !connected {
                let any_connected = (0..m).any(|e2| {
                    let b2 = 1u32 << e2;
                    if mask & b2 != 0 {
                        return false;
                    }
                    let (f2, t2) = edge_nodes(q, e2 as EdgeId);
                    bound[f2 as usize] || bound[t2 as usize]
                });
                if any_connected {
                    continue;
                }
            }
            // crude selectivity: shared variable caps growth
            let extension = if connected { (sizes[e] as f64).sqrt() } else { sizes[e] as f64 };
            let c = cost[mask as usize] * extension.max(1.0);
            let nm = (mask | bit) as usize;
            if c < cost[nm] {
                cost[nm] = c;
                pred[nm] = (mask, e as EdgeId);
            }
        }
    }
    let mut order = Vec::with_capacity(m);
    let mut mask = full;
    while mask.count_ones() > 1 {
        let (prev, e) = pred[mask as usize];
        order.push(e);
        mask = prev;
    }
    order.push(mask.trailing_zeros() as EdgeId);
    order.reverse();
    order
}

impl Engine for Jm<'_> {
    fn name(&self) -> &'static str {
        "JM"
    }

    fn evaluate(&self, query: &PatternQuery, budget: &Budget) -> RunReport {
        let start = Instant::now();
        let deadline = budget.timeout.map(|t| start + t);
        let over_deadline = |i: &Instant| deadline.is_some_and(|d| *i > d);

        // node pre-filtering [11, 63]
        let ctx = SimContext::new(self.graph, query, &self.bfl);
        let cand = if self.use_prefilter { prefilter(&ctx) } else { ctx.match_sets() };

        // materialize edge relations
        let mut relations: Vec<Vec<(NodeId, NodeId)>> = Vec::with_capacity(query.num_edges());
        let mut intermediate_total = 0u64;
        for eid in 0..query.num_edges() as EdgeId {
            match self.edge_relation(query, &cand, eid, budget) {
                Ok(r) => {
                    intermediate_total += r.len() as u64;
                    relations.push(r);
                }
                Err(status) => {
                    return failure_report("JM", status, start.elapsed(), intermediate_total)
                }
            }
            if over_deadline(&Instant::now()) {
                return failure_report(
                    "JM",
                    RunStatus::Timeout,
                    start.elapsed(),
                    intermediate_total,
                );
            }
        }
        let matching_time = start.elapsed();

        // plan + execute
        let sizes: Vec<u64> = relations.iter().map(|r| r.len() as u64).collect();
        let order = plan_order(query, &sizes);
        let cap = budget.max_intermediate.unwrap_or(u64::MAX);

        // intermediate schema: which query nodes are bound, tuple layout
        let mut schema: Vec<QNode> = Vec::new();
        let mut tuples: Vec<Vec<NodeId>> = Vec::new();
        for (step, &eid) in order.iter().enumerate() {
            if over_deadline(&Instant::now()) {
                return failure_report(
                    "JM",
                    RunStatus::Timeout,
                    start.elapsed(),
                    intermediate_total,
                );
            }
            let (f, t) = edge_nodes(query, eid);
            let rel = &relations[eid as usize];
            if step == 0 {
                schema = vec![f, t];
                tuples = rel.iter().map(|&(u, v)| vec![u, v]).collect();
            } else {
                let fpos = schema.iter().position(|&x| x == f);
                let tpos = schema.iter().position(|&x| x == t);
                let mut next: Vec<Vec<NodeId>> = Vec::new();
                match (fpos, tpos) {
                    (Some(fp), Some(tp)) => {
                        // both bound: semi-join filter
                        let set: rig_graph::FxHashSet<(NodeId, NodeId)> =
                            rel.iter().copied().collect();
                        next =
                            tuples.drain(..).filter(|tu| set.contains(&(tu[fp], tu[tp]))).collect();
                    }
                    (Some(fp), None) => {
                        // hash rel on its from column
                        let mut index: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
                        for &(u, v) in rel {
                            index.entry(u).or_default().push(v);
                        }
                        schema.push(t);
                        for tu in tuples.drain(..) {
                            if let Some(vs) = index.get(&tu[fp]) {
                                for &v in vs {
                                    let mut nt = tu.clone();
                                    nt.push(v);
                                    next.push(nt);
                                }
                            }
                            if next.len() as u64 > cap {
                                return failure_report(
                                    "JM",
                                    RunStatus::MemoryExceeded,
                                    start.elapsed(),
                                    intermediate_total + next.len() as u64,
                                );
                            }
                        }
                    }
                    (None, Some(tp)) => {
                        let mut index: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
                        for &(u, v) in rel {
                            index.entry(v).or_default().push(u);
                        }
                        schema.push(f);
                        for tu in tuples.drain(..) {
                            if let Some(us) = index.get(&tu[tp]) {
                                for &u in us {
                                    let mut nt = tu.clone();
                                    nt.push(u);
                                    next.push(nt);
                                }
                            }
                            if next.len() as u64 > cap {
                                return failure_report(
                                    "JM",
                                    RunStatus::MemoryExceeded,
                                    start.elapsed(),
                                    intermediate_total + next.len() as u64,
                                );
                            }
                        }
                    }
                    (None, None) => {
                        // Cartesian product (disconnected query component)
                        schema.push(f);
                        schema.push(t);
                        for tu in tuples.drain(..) {
                            for &(u, v) in rel {
                                let mut nt = tu.clone();
                                nt.push(u);
                                nt.push(v);
                                next.push(nt);
                                if next.len() as u64 > cap {
                                    return failure_report(
                                        "JM",
                                        RunStatus::MemoryExceeded,
                                        start.elapsed(),
                                        intermediate_total + next.len() as u64,
                                    );
                                }
                            }
                        }
                    }
                }
                tuples = next;
            }
            intermediate_total += tuples.len() as u64;
            if tuples.is_empty() {
                break;
            }
        }

        let mut count = tuples.len() as u64;
        if let Some(limit) = budget.match_limit {
            count = count.min(limit);
        }
        let total = start.elapsed();
        RunReport {
            engine: "JM".to_string(),
            status: RunStatus::Completed,
            occurrences: count,
            total_time: total,
            matching_time,
            enumeration_time: total.saturating_sub(matching_time),
            intermediate_tuples: intermediate_total,
            aux_size: sizes.iter().sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_datasets::examples::{fig2_graph, fig4_g2};
    use rig_query::fig2_query;

    #[test]
    fn jm_matches_gm_on_fig2() {
        let g = fig2_graph();
        let jm = Jm::new(&g);
        let r = jm.evaluate(&fig2_query(), &Budget::unlimited());
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.occurrences, 2);
        // JM materialized intermediates; GM would have none
        assert!(r.intermediate_tuples > 0);
    }

    #[test]
    fn jm_empty_answer() {
        let g = fig4_g2();
        let jm = Jm::new(&g);
        let r = jm.evaluate(&fig2_query(), &Budget::unlimited());
        assert_eq!(r.occurrences, 0);
    }

    #[test]
    fn jm_without_prefilter_same_count() {
        let g = fig2_graph();
        let mut jm = Jm::new(&g);
        jm.use_prefilter = false;
        let r = jm.evaluate(&fig2_query(), &Budget::unlimited());
        assert_eq!(r.occurrences, 2);
    }

    #[test]
    fn jm_oom_on_tiny_budget() {
        let g = fig2_graph();
        let jm = Jm::new(&g);
        let budget = Budget { max_intermediate: Some(1), ..Budget::unlimited() };
        let r = jm.evaluate(&fig2_query(), &budget);
        assert_eq!(r.status, RunStatus::MemoryExceeded);
    }

    #[test]
    fn plan_count_grows_exponentially() {
        assert!(Jm::plans_enumerated(24) > 2_000_000);
        assert!(Jm::plans_enumerated(4) < 100);
    }

    /// Randomized: JM count equals GM count (both exact homomorphism
    /// counts) on small instances.
    #[test]
    fn jm_equals_gm_randomized() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use rig_graph::GraphBuilder;
        use rig_query::EdgeKind;
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = GraphBuilder::new();
            for _ in 0..15 {
                b.add_node(rng.gen_range(0..3));
            }
            for _ in 0..30 {
                let u = rng.gen_range(0..15) as NodeId;
                let v = rng.gen_range(0..15) as NodeId;
                if u != v {
                    b.add_edge(u, v);
                }
            }
            let g = b.build();
            let mut q = PatternQuery::new((0..3).map(|_| rng.gen_range(0..3)).collect());
            q.add_edge(0, 1, EdgeKind::Direct);
            q.add_edge(1, 2, EdgeKind::Reachability);
            if rng.gen_bool(0.5) {
                q.add_edge(0, 2, EdgeKind::Reachability);
            }
            let jm = Jm::new(&g);
            let gm = crate::GmEngine::new(g.clone());
            let rj = jm.evaluate(&q, &Budget::unlimited());
            let rg = gm.evaluate(&q, &Budget::unlimited());
            assert_eq!(rj.occurrences, rg.occurrences, "seed={seed}");
        }
    }
}
