//! TM — the tree-based approach (§1, §7.1; DagStackD \[11\] / \[59\] style).
//!
//! Extract a spanning tree of the query, evaluate the tree pattern (we use
//! the \[59\]-style machinery: tree double simulation + answer-graph
//! enumeration, which the paper says outperforms older tree algorithms),
//! then check every tree occurrence against the non-tree edges. When the
//! tree has vastly more occurrences than the full query, almost all of
//! that work is wasted — TM's defining weakness (it times out on dense
//! graphs and combo patterns).

use std::time::Instant;

use crate::{failure_report, Budget, Engine};
use rig_core::{RunReport, RunStatus};
use rig_graph::DataGraph;
use rig_index::{build_rig, RigOptions};
use rig_mjoin::{enumerate, EnumOptions, SearchOrder};
use rig_query::{EdgeId, EdgeKind, PatternQuery, QNode};
use rig_reach::{BflIndex, Reachability};
use rig_sim::SimContext;

/// The TM engine.
pub struct Tm<'g> {
    graph: &'g DataGraph,
    bfl: BflIndex,
}

impl<'g> Tm<'g> {
    pub fn new(graph: &'g DataGraph) -> Self {
        Tm { graph, bfl: BflIndex::new(graph) }
    }

    /// Spanning tree edge ids (BFS over the undirected pattern from node
    /// 0); the complement is the non-tree edge set checked per tuple.
    pub fn spanning_tree(query: &PatternQuery) -> (Vec<EdgeId>, Vec<EdgeId>) {
        let n = query.num_nodes();
        let mut visited = vec![false; n];
        let mut tree = Vec::new();
        let mut stack: Vec<QNode> = vec![0];
        visited[0] = true;
        while let Some(q) = stack.pop() {
            for (nb, eid, _) in query.neighbors(q) {
                if !visited[nb as usize] {
                    visited[nb as usize] = true;
                    tree.push(eid);
                    stack.push(nb);
                }
            }
        }
        let tree_set: std::collections::HashSet<EdgeId> = tree.iter().copied().collect();
        let non_tree = (0..query.num_edges() as EdgeId).filter(|e| !tree_set.contains(e)).collect();
        (tree, non_tree)
    }
}

impl Engine for Tm<'_> {
    fn name(&self) -> &'static str {
        "TM"
    }

    fn evaluate(&self, query: &PatternQuery, budget: &Budget) -> RunReport {
        let start = Instant::now();
        let (tree_edges, non_tree) = Self::spanning_tree(query);
        let tree_query = query.with_edges(&tree_edges);

        // [59]-style tree evaluation: double simulation on the tree query
        // plus an answer graph (a RIG restricted to tree edges).
        let ctx = SimContext::new(self.graph, &tree_query, &self.bfl);
        let rig = build_rig(&ctx, &self.bfl, &RigOptions::default());
        let matching_time = start.elapsed();
        if rig.is_empty() {
            let total = start.elapsed();
            return RunReport {
                engine: "TM".into(),
                status: RunStatus::Completed,
                occurrences: 0,
                total_time: total,
                matching_time,
                enumeration_time: total.saturating_sub(matching_time),
                intermediate_tuples: 0,
                aux_size: rig.stats.size(),
            };
        }

        // enumerate tree occurrences, filtering each against non-tree edges
        let opts = EnumOptions {
            order: SearchOrder::Jo,
            limit: None,
            timeout: budget.timeout.map(|t| t.saturating_sub(start.elapsed())),
            injective: false,
        };
        let mut count = 0u64;
        let mut tree_tuples = 0u64;
        let mut exceeded = false;
        let cap = budget.max_intermediate.unwrap_or(u64::MAX);
        let limit = budget.match_limit.unwrap_or(u64::MAX);
        let g = self.graph;
        let bfl = &self.bfl;
        let result = enumerate(&tree_query, &rig, &opts, |t| {
            tree_tuples += 1;
            if tree_tuples > cap {
                exceeded = true;
                return false;
            }
            let ok = non_tree.iter().all(|&eid| {
                let e = query.edge(eid);
                let (u, v) = (t[e.from as usize], t[e.to as usize]);
                match e.kind {
                    EdgeKind::Direct => g.has_edge(u, v),
                    EdgeKind::Reachability => bfl.reaches(u, v),
                }
            });
            if ok {
                count += 1;
            }
            count < limit
        });
        let total = start.elapsed();
        let status = if exceeded {
            RunStatus::MemoryExceeded
        } else if result.timed_out {
            RunStatus::Timeout
        } else {
            RunStatus::Completed
        };
        if !status.is_solved() {
            return failure_report("TM", status, total, tree_tuples);
        }
        RunReport {
            engine: "TM".into(),
            status,
            occurrences: count,
            total_time: total,
            matching_time,
            enumeration_time: total.saturating_sub(matching_time),
            intermediate_tuples: tree_tuples,
            aux_size: rig.stats.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_datasets::examples::{fig2_graph, fig4_g2};
    use rig_query::fig2_query;

    #[test]
    fn spanning_tree_splits_edges() {
        let q = fig2_query();
        let (tree, non_tree) = Tm::spanning_tree(&q);
        assert_eq!(tree.len(), 2); // n-1 edges
        assert_eq!(non_tree.len(), 1);
        let tq = q.with_edges(&tree);
        assert!(tq.is_connected());
        assert_eq!(tq.cycle_rank(), 0);
    }

    #[test]
    fn tm_matches_gm_on_fig2() {
        let g = fig2_graph();
        let tm = Tm::new(&g);
        let r = tm.evaluate(&fig2_query(), &Budget::unlimited());
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.occurrences, 2);
        // tree tuples examined ≥ answers (the wasted work TM suffers from)
        assert!(r.intermediate_tuples >= r.occurrences);
    }

    #[test]
    fn tm_empty_answer() {
        let g = fig4_g2();
        let tm = Tm::new(&g);
        let r = tm.evaluate(&fig2_query(), &Budget::unlimited());
        assert_eq!(r.occurrences, 0);
    }

    #[test]
    fn tm_equals_gm_randomized() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use rig_graph::{GraphBuilder, NodeId};
        use rig_query::EdgeKind;
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let mut b = GraphBuilder::new();
            for _ in 0..15 {
                b.add_node(rng.gen_range(0..3));
            }
            for _ in 0..35 {
                let u = rng.gen_range(0..15) as NodeId;
                let v = rng.gen_range(0..15) as NodeId;
                if u != v {
                    b.add_edge(u, v);
                }
            }
            let g = b.build();
            let mut q = PatternQuery::new((0..4).map(|_| rng.gen_range(0..3)).collect());
            q.add_edge(0, 1, EdgeKind::Direct);
            q.add_edge(1, 2, EdgeKind::Reachability);
            q.add_edge(2, 3, EdgeKind::Direct);
            if rng.gen_bool(0.6) {
                q.add_edge(0, 3, EdgeKind::Reachability);
            }
            let tm = Tm::new(&g);
            let gm = crate::GmEngine::new(g.clone());
            let rt = tm.evaluate(&q, &Budget::unlimited());
            let rg = gm.evaluate(&q, &Budget::unlimited());
            assert_eq!(rt.occurrences, rg.occurrences, "seed={seed}");
        }
    }
}
