//! Brute-force reference counter: naive backtracking directly over the
//! raw data graph — **no RIG, no simulation pruning, no search-order
//! statistics** — so it shares no code (and no bugs) with the engine under
//! test. It is the ground-truth oracle for every counting test and for
//! the `bench_factorized` in-harness verification.
//!
//! Semantics match the engine exactly:
//! * tuples are homomorphisms (or isomorphism-style embeddings with
//!   `injective = true`);
//! * a `Direct` query edge requires a data edge;
//! * a `Reachability` query edge requires a **non-empty** path (the
//!   [`rig_reach::Reachability`] contract — a node reaches itself only
//!   through a cycle), checked here by plain on-line DFS.
//!
//! The only concession to practicality: candidates for a node with an
//! already-bound `Direct`-edge neighbor are drawn from that neighbor's
//! adjacency list instead of the label's full candidate list (adjacency
//! lists are sorted + deduplicated, so counts are unaffected). This keeps
//! the oracle usable on the dense benchmark templates while remaining
//! RIG-free.

use rig_graph::{DataGraph, NodeId};
use rig_query::{EdgeKind, PatternQuery, QNode};

/// On-line DFS reachability with a reusable visited stamp (no index).
struct DfsReach {
    stamp: Vec<u32>,
    epoch: u32,
    stack: Vec<NodeId>,
}

impl DfsReach {
    fn new(n: usize) -> DfsReach {
        DfsReach { stamp: vec![0; n], epoch: 0, stack: Vec::new() }
    }

    /// Non-empty path from `u` to `v`?
    fn reaches(&mut self, g: &DataGraph, u: NodeId, v: NodeId) -> bool {
        self.epoch += 1;
        self.stack.clear();
        for &w in g.out_neighbors(u) {
            if w == v {
                return true;
            }
            if self.stamp[w as usize] != self.epoch {
                self.stamp[w as usize] = self.epoch;
                self.stack.push(w);
            }
        }
        while let Some(x) = self.stack.pop() {
            for &w in g.out_neighbors(x) {
                if w == v {
                    return true;
                }
                if self.stamp[w as usize] != self.epoch {
                    self.stamp[w as usize] = self.epoch;
                    self.stack.push(w);
                }
            }
        }
        false
    }
}

/// A constraint of the node at step `i` against an earlier-bound node.
#[derive(Clone, Copy)]
struct Constraint {
    /// Index into the binding order of the other (already bound) endpoint.
    other: usize,
    kind: EdgeKind,
    /// True when the bound endpoint is the edge source.
    other_is_source: bool,
}

/// Counts the occurrences of `q` in `g` by naive backtracking. Exact and
/// unbudgeted — size inputs accordingly (tests and in-harness bench
/// verification only).
pub fn brute_force_count(g: &DataGraph, q: &PatternQuery, injective: bool) -> u64 {
    let n = q.num_nodes();
    if n == 0 {
        return 0;
    }
    // Binding order: start at the node with the fewest label candidates,
    // then greedily extend with a connected node (preferring one reachable
    // through a Direct edge from a bound node, so its candidates come from
    // an adjacency list).
    let cand_count = |qi: usize| {
        let l = q.label(qi as QNode);
        if (l as usize) < g.num_labels() {
            g.nodes_with_label(l).len()
        } else {
            0
        }
    };
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let start = (0..n).min_by_key(|&i| cand_count(i)).unwrap();
    order.push(start);
    placed[start] = true;
    while order.len() < n {
        let mut best: Option<(usize, usize, usize)> = None; // (direct?0:1, cands, node)
        for i in 0..n {
            if placed[i] {
                continue;
            }
            let mut connected = false;
            let mut direct = false;
            for (v, _, _) in q.neighbors(i as QNode) {
                if placed[v as usize] {
                    connected = true;
                }
            }
            for pe in q.edges() {
                let (f, t) = (pe.from as usize, pe.to as usize);
                if pe.kind == EdgeKind::Direct && ((f == i && placed[t]) || (t == i && placed[f])) {
                    direct = true;
                }
            }
            if !connected {
                continue;
            }
            let key = (if direct { 0 } else { 1 }, cand_count(i), i);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let next = match best {
            Some((_, _, i)) => i,
            // disconnected query: fall back to the smallest remaining
            None => (0..n).filter(|&i| !placed[i]).min_by_key(|&i| cand_count(i)).unwrap(),
        };
        order.push(next);
        placed[next] = true;
    }
    let pos_of = {
        let mut p = vec![0usize; n];
        for (i, &qi) in order.iter().enumerate() {
            p[qi] = i;
        }
        p
    };
    // Per step: all constraints against earlier steps, plus (optionally)
    // the Direct-edge generator to draw candidates from.
    let mut cons: Vec<Vec<Constraint>> = vec![Vec::new(); n];
    let mut generator: Vec<Option<Constraint>> = vec![None; n];
    for pe in q.edges() {
        let (pf, pt) = (pos_of[pe.from as usize], pos_of[pe.to as usize]);
        let (late, other, other_is_source) = if pf < pt { (pt, pf, true) } else { (pf, pt, false) };
        let c = Constraint { other, kind: pe.kind, other_is_source };
        if pe.kind == EdgeKind::Direct && generator[late].is_none() {
            generator[late] = Some(c);
        } else {
            cons[late].push(c);
        }
    }

    let mut reach = DfsReach::new(g.num_nodes());
    let mut binding = vec![0 as NodeId; n];
    let mut count = 0u64;
    rec(g, q, &order, &cons, &generator, injective, &mut reach, &mut binding, 0, &mut count);
    count
}

#[allow(clippy::too_many_arguments)]
fn rec(
    g: &DataGraph,
    q: &PatternQuery,
    order: &[usize],
    cons: &[Vec<Constraint>],
    generator: &[Option<Constraint>],
    injective: bool,
    reach: &mut DfsReach,
    binding: &mut [NodeId],
    depth: usize,
    count: &mut u64,
) {
    if depth == order.len() {
        *count += 1;
        return;
    }
    let qi = order[depth];
    let label = q.label(qi as QNode);
    let try_candidate =
        |v: NodeId, reach: &mut DfsReach, binding: &mut [NodeId], count: &mut u64| {
            if !g.is_live(v) || g.label(v) != label {
                return;
            }
            if injective && binding[..depth].contains(&v) {
                return;
            }
            for c in &cons[depth] {
                let b = binding[c.other];
                let (src, dst) = if c.other_is_source { (b, v) } else { (v, b) };
                let ok = match c.kind {
                    EdgeKind::Direct => g.has_edge(src, dst),
                    EdgeKind::Reachability => reach.reaches(g, src, dst),
                };
                if !ok {
                    return;
                }
            }
            binding[depth] = v;
            rec(g, q, order, cons, generator, injective, reach, binding, depth + 1, count);
        };
    match generator[depth] {
        Some(gen) => {
            let b = binding[gen.other];
            let list = if gen.other_is_source { g.out_neighbors(b) } else { g.in_neighbors(b) };
            for &v in list {
                try_candidate(v, reach, binding, count);
            }
        }
        None => {
            let l = label;
            if (l as usize) >= g.num_labels() {
                return;
            }
            for &v in g.nodes_with_label(l) {
                try_candidate(v, reach, binding, count);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::GraphBuilder;

    fn diamond() -> DataGraph {
        // 0 -> {1, 2} -> 3, labels A B B C
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(1);
        b.add_node(1);
        b.add_node(2);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn direct_chain_counts() {
        let g = diamond();
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Direct);
        assert_eq!(brute_force_count(&g, &q, false), 2);
        assert_eq!(brute_force_count(&g, &q, true), 2);
    }

    #[test]
    fn reachability_is_nonreflexive_without_cycles() {
        let g = diamond();
        let mut q = PatternQuery::new(vec![0, 2]);
        q.add_edge(0, 1, EdgeKind::Reachability);
        assert_eq!(brute_force_count(&g, &q, false), 1); // only 0 => 3

        // homomorphic square over the two B-nodes
        let mut q = PatternQuery::new(vec![1, 1]);
        q.add_edge(0, 1, EdgeKind::Reachability);
        assert_eq!(brute_force_count(&g, &q, false), 0, "no B reaches a B");
    }

    #[test]
    fn injectivity_prunes_repeats() {
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(0);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // 2-cycle, single label
        let g = b.build();
        let mut q = PatternQuery::new(vec![0, 0]);
        q.add_edge(0, 1, EdgeKind::Reachability);
        // homomorphic: every ordered pair incl. self-pairs through the cycle
        assert_eq!(brute_force_count(&g, &q, false), 4);
        assert_eq!(brute_force_count(&g, &q, true), 2);
    }
}
