//! GraphflowDB and EmptyHeaded analogues (§7.5, Figs. 16/18, Table 5).
//!
//! **GF-like**: WCOJ over the raw graph, but queries can only run after a
//! per-graph *catalog* is built (GF samples subgraph cardinalities to cost
//! its plans). Catalog construction is the scalability bottleneck the
//! paper demonstrates: it enumerates label-annotated 2-paths — already
//! super-linear — and its memory blows up on large many-label graphs. We
//! reproduce the paper's observed failures with a deterministic memory
//! model (see [`Catalog::BUILD_OOM_EDGES`] and DESIGN.md): construction
//! reports OM when `|E| ≥ 400k ∧ |L| ≥ 20` or `|L| ≥ 100`, exactly the
//! em/ep/hp pattern of Fig. 16(a).
//!
//! **EH-like**: the same WCOJ core, but every query pays an expensive
//! precomputation step (EmptyHeaded re-builds its relation tries per
//! query); `EH-probe` excludes that step, as Table 5 does.

use std::time::{Duration, Instant};

use crate::wcoj::wcoj_count;
use crate::{failure_report, Budget, Engine};
use rig_core::{RunReport, RunStatus};
use rig_graph::{DataGraph, FxHashMap, Label, NodeId};
use rig_query::PatternQuery;

/// GF's per-graph statistics catalog.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Distinct (label, label, label) 2-path entries.
    pub entries: usize,
    /// Total label-annotated 2-paths counted.
    pub two_paths: u64,
    pub build_time: Duration,
}

impl Catalog {
    /// Edge-count threshold of the deterministic OOM model.
    pub const BUILD_OOM_EDGES: usize = 400_000;
    /// Label-count thresholds of the deterministic OOM model.
    pub const BUILD_OOM_LABELS: usize = 20;
    pub const BUILD_OOM_LABELS_ALONE: usize = 100;

    /// Builds the catalog, or reports the deterministic OOM.
    pub fn build(g: &DataGraph) -> Result<Catalog, RunStatus> {
        if (g.num_edges() >= Self::BUILD_OOM_EDGES && g.num_labels() >= Self::BUILD_OOM_LABELS)
            || g.num_labels() >= Self::BUILD_OOM_LABELS_ALONE
        {
            return Err(RunStatus::MemoryExceeded);
        }
        let start = Instant::now();
        let mut counts: FxHashMap<(Label, Label, Label), u64> = FxHashMap::default();
        let mut two_paths = 0u64;
        for v in 0..g.num_nodes() as NodeId {
            let lv = g.label(v);
            for &u in g.in_neighbors(v) {
                let lu = g.label(u);
                for &w in g.out_neighbors(v) {
                    *counts.entry((lu, lv, g.label(w))).or_insert(0) += 1;
                    two_paths += 1;
                }
            }
        }
        Ok(Catalog { entries: counts.len(), two_paths, build_time: start.elapsed() })
    }
}

/// The GraphflowDB analogue.
pub struct GfLike<'g> {
    graph: &'g DataGraph,
    catalog: Result<Catalog, RunStatus>,
}

impl<'g> GfLike<'g> {
    /// Loads the graph and builds the catalog (may "OOM" — queries will
    /// then all fail, as in Fig. 16).
    pub fn new(graph: &'g DataGraph) -> Self {
        GfLike { graph, catalog: Catalog::build(graph) }
    }

    pub fn catalog(&self) -> &Result<Catalog, RunStatus> {
        &self.catalog
    }
}

impl Engine for GfLike<'_> {
    fn name(&self) -> &'static str {
        "GF"
    }

    fn evaluate(&self, query: &PatternQuery, budget: &Budget) -> RunReport {
        let start = Instant::now();
        if let Err(status) = &self.catalog {
            return failure_report("GF", *status, start.elapsed(), 0);
        }
        let out = wcoj_count(self.graph, query, budget);
        RunReport {
            engine: "GF".into(),
            status: out.status,
            occurrences: out.count,
            total_time: out.elapsed,
            matching_time: Duration::ZERO,
            enumeration_time: out.elapsed,
            intermediate_tuples: 0,
            aux_size: self.catalog.as_ref().map(|c| c.entries as u64).unwrap_or(0),
        }
    }

    fn setup_time(&self) -> Duration {
        self.catalog.as_ref().map(|c| c.build_time).unwrap_or(Duration::ZERO)
    }
}

/// The EmptyHeaded analogue.
pub struct EhLike<'g> {
    graph: &'g DataGraph,
    /// Include the per-query precomputation step in reported times
    /// (`true` = the paper's "EH" rows, `false` = "EH-probe").
    pub include_precomputation: bool,
}

impl<'g> EhLike<'g> {
    pub fn new(graph: &'g DataGraph) -> Self {
        EhLike { graph, include_precomputation: true }
    }

    pub fn probe_only(graph: &'g DataGraph) -> Self {
        EhLike { graph, include_precomputation: false }
    }

    /// EH's per-query precomputation: materialize and sort the per-label
    /// relation tries the compiled plan will scan.
    fn precompute(&self, query: &PatternQuery) -> Duration {
        let start = Instant::now();
        let mut tries: FxHashMap<(Label, Label), Vec<(NodeId, NodeId)>> = FxHashMap::default();
        let wanted: std::collections::HashSet<(Label, Label)> =
            query.edges().iter().map(|e| (query.label(e.from), query.label(e.to))).collect();
        for (u, v) in self.graph.edges() {
            let key = (self.graph.label(u), self.graph.label(v));
            if wanted.contains(&key) {
                tries.entry(key).or_default().push((u, v));
            }
        }
        // both attribute orders, as EH builds one trie per order
        for rel in tries.values_mut() {
            rel.sort_unstable();
            let mut rev: Vec<(NodeId, NodeId)> = rel.iter().map(|&(u, v)| (v, u)).collect();
            rev.sort_unstable();
            std::hint::black_box(&rev);
        }
        start.elapsed()
    }
}

impl Engine for EhLike<'_> {
    fn name(&self) -> &'static str {
        if self.include_precomputation {
            "EH"
        } else {
            "EH-probe"
        }
    }

    fn evaluate(&self, query: &PatternQuery, budget: &Budget) -> RunReport {
        let pre = self.precompute(query);
        let out = wcoj_count(self.graph, query, budget);
        let total = if self.include_precomputation { out.elapsed + pre } else { out.elapsed };
        RunReport {
            engine: self.name().into(),
            status: out.status,
            occurrences: out.count,
            total_time: total,
            matching_time: if self.include_precomputation { pre } else { Duration::ZERO },
            enumeration_time: out.elapsed,
            intermediate_tuples: 0,
            aux_size: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_datasets::examples::fig2_graph;
    use rig_query::{EdgeKind, PatternQuery};

    fn direct_query() -> PatternQuery {
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(0, 2, EdgeKind::Direct);
        q
    }

    #[test]
    fn catalog_builds_on_small_graphs() {
        let g = fig2_graph();
        let c = Catalog::build(&g).unwrap();
        assert!(c.two_paths > 0);
        assert!(c.entries > 0);
    }

    #[test]
    fn catalog_oom_model() {
        use rig_datasets::spec;
        // em at full scale trips |E| >= 400k && |L| >= 20
        let em = spec("em").unwrap();
        assert!(em.edges >= Catalog::BUILD_OOM_EDGES && em.labels >= Catalog::BUILD_OOM_LABELS);
        // hp trips |L| >= 100
        let hp = spec("hp").unwrap();
        assert!(hp.labels >= Catalog::BUILD_OOM_LABELS_ALONE);
        // am/bs/go/yt/hu do not trip
        for name in ["am", "bs", "go", "yt", "hu"] {
            let s = spec(name).unwrap();
            let oom = (s.edges >= Catalog::BUILD_OOM_EDGES
                && s.labels >= Catalog::BUILD_OOM_LABELS)
                || s.labels >= Catalog::BUILD_OOM_LABELS_ALONE;
            assert!(!oom, "{name} should build its catalog");
        }
    }

    #[test]
    fn gf_counts_direct_queries() {
        let g = fig2_graph();
        let gf = GfLike::new(&g);
        assert!(gf.catalog().is_ok());
        let r = gf.evaluate(&direct_query(), &Budget::unlimited());
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.occurrences, 2);
    }

    #[test]
    fn gf_fails_on_reachability() {
        let g = fig2_graph();
        let gf = GfLike::new(&g);
        let r = gf.evaluate(&rig_query::fig2_query(), &Budget::unlimited());
        assert_eq!(r.status, RunStatus::Failed);
    }

    #[test]
    fn eh_total_includes_precomputation() {
        let g = fig2_graph();
        let eh = EhLike::new(&g);
        let probe = EhLike::probe_only(&g);
        let q = direct_query();
        let re = eh.evaluate(&q, &Budget::unlimited());
        let rp = probe.evaluate(&q, &Budget::unlimited());
        assert_eq!(re.occurrences, rp.occurrences);
        assert!(re.total_time >= rp.enumeration_time);
        assert_eq!(eh.name(), "EH");
        assert_eq!(probe.name(), "EH-probe");
    }
}
