//! Baseline matchers and engine analogues for the §7 experiments.
//!
//! * [`Jm`] — the join-based approach: one binary hash join per query
//!   edge, left-deep plan from dynamic programming (R-Join style \[12\]),
//!   with explicit intermediate-result materialization. Its failure mode
//!   is memory blow-up, modeled as a deterministic intermediate-tuple
//!   budget (Tables 3 and 5's "OM" cells).
//! * [`Tm`] — the tree-based approach: evaluate a spanning tree of the
//!   query (\[59\]-style tree matching), then filter each tree occurrence
//!   against the non-tree edges. Its failure mode is timeout when tree
//!   occurrences vastly outnumber query occurrences.
//! * [`GfLike`] / [`EhLike`] — worst-case-optimal-join engine analogues of
//!   GraphflowDB and EmptyHeaded: direct-edge-only WCOJ over the raw data
//!   graph, preceded by an expensive per-graph precomputation (GF's
//!   catalog, EH's relation tries). For D-queries they must run on a
//!   materialized transitive closure (§7.5).
//! * [`NeoLike`] — a Neo4j analogue: tuple-at-a-time binary joins in
//!   syntactic edge order, no statistics, reachability via unindexed
//!   on-line DFS (the APOC expansion pattern).
//! * [`RmLike`] — a RapidMatch analogue: tree-decomposition filtering plus
//!   WCOJ-style enumeration with a topology-driven order.
//! * [`GmEngine`] — adapter putting GM behind the same [`Engine`] trait so
//!   harnesses can iterate engines uniformly.
//! * [`brute_force_count`] — the ground-truth oracle: naive backtracking
//!   over the raw graph with on-line DFS reachability, sharing no code
//!   with the engine; every counting test and the `bench_factorized`
//!   harness verify against it.
//!
//! See DESIGN.md ("Substitutions") for the fidelity argument: these
//! analogues reproduce the *architectural* properties the paper attributes
//! to each system, on identical inputs.

pub mod brute;
mod gf;
mod jm;
mod neo;
mod rm;
mod tm;
mod wcoj;

pub use brute::brute_force_count;
pub use gf::{Catalog, EhLike, GfLike};
pub use jm::Jm;
pub use neo::NeoLike;
pub use rm::RmLike;
pub use tm::Tm;
pub use wcoj::wcoj_count;

use std::sync::Arc;
use std::time::Duration;

use rig_core::{GmConfig, RunReport, RunStatus, Session};
use rig_graph::DataGraph;
use rig_query::PatternQuery;

/// Resource budget for one evaluation, mirroring the paper's experimental
/// protocol (10-minute timeout, 16 GB heap, 10^7-match cap).
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Wall-clock limit; `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Maximum intermediate tuples an engine may materialize before the
    /// run is declared out-of-memory.
    pub max_intermediate: Option<u64>,
    /// Stop after this many matches (the paper uses 10^7).
    pub match_limit: Option<u64>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            timeout: Some(Duration::from_secs(600)),
            max_intermediate: Some(5_000_000),
            match_limit: Some(10_000_000),
        }
    }
}

impl Budget {
    /// Unlimited budget (tests use this to compare exact counts).
    pub fn unlimited() -> Self {
        Budget { timeout: None, max_intermediate: None, match_limit: None }
    }

    /// Budget with only a match cap.
    pub fn with_limit(limit: u64) -> Self {
        Budget { match_limit: Some(limit), ..Budget::unlimited() }
    }
}

/// A pattern matching engine bound to one data graph.
pub trait Engine {
    /// Engine name as printed in the tables.
    fn name(&self) -> &'static str;

    /// Evaluates one query under the given budget.
    fn evaluate(&self, query: &PatternQuery, budget: &Budget) -> RunReport;

    /// One-time per-graph preparation cost (index/catalog/closure build).
    fn setup_time(&self) -> Duration {
        Duration::ZERO
    }
}

/// GM behind the [`Engine`] trait. With `threads > 1` the enumeration
/// stage runs the morsel-driven parallel engine (counting sinks — no
/// materialization), still honoring the budget's limit and timeout.
///
/// Owns a [`Session`] (the application entry point), so harness runs
/// exercise the same code path — including the plan cache — users do.
/// Constructors take `impl Into<Arc<DataGraph>>`: harnesses that share
/// one graph across several engines pass `Arc::clone(&g)` (or clone the
/// graph) explicitly.
pub struct GmEngine {
    session: Session,
    name: &'static str,
    threads: usize,
}

impl GmEngine {
    pub fn new(graph: impl Into<Arc<DataGraph>>) -> Self {
        GmEngine { session: Session::new(graph), name: "GM", threads: 1 }
    }

    pub fn with_config(
        graph: impl Into<Arc<DataGraph>>,
        config: GmConfig,
        name: &'static str,
    ) -> Self {
        GmEngine { session: Session::with_config(graph, config), name, threads: 1 }
    }

    /// GM with `threads` morsel-driven enumeration workers.
    pub fn with_threads(graph: impl Into<Arc<DataGraph>>, threads: usize) -> Self {
        GmEngine { session: Session::new(graph), name: "GM-par", threads }
    }

    pub fn session(&self) -> &Session {
        &self.session
    }
}

impl Engine for GmEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn evaluate(&self, query: &PatternQuery, budget: &Budget) -> RunReport {
        // An unpreparable query (validation failure) is the paper's "FA"
        // outcome for this engine, not a harness crash: report it and let
        // the sweep continue with the other engines.
        let prepared = match self.session.prepare(query) {
            Ok(p) => p,
            Err(_) => return failure_report(self.name, RunStatus::Failed, Duration::ZERO, 0),
        };
        let mut run = prepared.run().threads(self.threads);
        if let Some(l) = budget.match_limit {
            run = run.limit(l);
        }
        if let Some(d) = budget.timeout {
            run = run.timeout(d);
        }
        run.count().report(self.name)
    }

    fn setup_time(&self) -> Duration {
        self.session.index_build_time()
    }
}

/// Shared helper: stamp a report as timed out with the elapsed budget (the
/// paper records stopped queries at the full 10 minutes).
pub(crate) fn failure_report(
    engine: &str,
    status: RunStatus,
    elapsed: Duration,
    intermediate: u64,
) -> RunReport {
    RunReport {
        engine: engine.to_string(),
        status,
        occurrences: 0,
        total_time: elapsed,
        matching_time: elapsed,
        enumeration_time: Duration::ZERO,
        intermediate_tuples: intermediate,
        aux_size: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_datasets::examples::fig2_graph;
    use rig_query::fig2_query;

    #[test]
    fn gm_engine_adapter() {
        let e = GmEngine::new(fig2_graph());
        assert_eq!(e.name(), "GM");
        let r = e.evaluate(&fig2_query(), &Budget::default());
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.occurrences, 2);
        // repeated harness evaluations hit the session plan cache
        e.evaluate(&fig2_query(), &Budget::default());
        assert_eq!(e.session().cache_stats().hits, 1);
    }

    #[test]
    fn unpreparable_query_reports_fa_instead_of_panicking() {
        let e = GmEngine::new(fig2_graph());
        // label 99 is outside fig2's label space: prepare fails validation
        let mut q = PatternQuery::new(vec![0, 99]);
        q.add_edge(0, 1, rig_query::EdgeKind::Direct);
        let r = e.evaluate(&q, &Budget::default());
        assert_eq!(r.status, RunStatus::Failed);
        assert_eq!(r.status.code(), "FA");
        assert_eq!(r.occurrences, 0);
    }

    #[test]
    fn budget_limit_respected() {
        let e = GmEngine::new(fig2_graph());
        let r = e.evaluate(&fig2_query(), &Budget::with_limit(1));
        assert_eq!(r.occurrences, 1);
    }

    #[test]
    fn parallel_gm_engine_agrees_and_honors_limit() {
        let par = GmEngine::with_threads(fig2_graph(), 4);
        assert_eq!(par.name(), "GM-par");
        assert_eq!(par.evaluate(&fig2_query(), &Budget::default()).occurrences, 2);
        assert_eq!(par.evaluate(&fig2_query(), &Budget::with_limit(1)).occurrences, 1);
    }
}
