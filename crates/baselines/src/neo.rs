//! Neo4j analogue (§7.5, Tables 5/6 and Fig. 18).
//!
//! Architecture being modeled: tuple-at-a-time binary expansion in
//! *syntactic* edge order (Cypher without a cost-based graph-pattern
//! optimizer), no reachability index — descendant steps expand paths with
//! an on-line DFS (the APOC `subgraphNodes` pattern the paper uses to
//! express reachability edges). Strengths and weaknesses follow: it can
//! evaluate reachability edges directly (unlike GF/EH), but every join is
//! unoptimized and intermediate results are materialized.

use std::time::Instant;

use crate::{failure_report, Budget, Engine};
use rig_core::{RunReport, RunStatus};
use rig_graph::{DataGraph, NodeId};
use rig_query::{EdgeKind, PatternQuery, QNode};

/// The Neo4j-like engine.
pub struct NeoLike<'g> {
    graph: &'g DataGraph,
}

impl<'g> NeoLike<'g> {
    pub fn new(graph: &'g DataGraph) -> Self {
        NeoLike { graph }
    }

    /// On-line reachability: DFS from `u` (no index).
    fn dfs_reaches(&self, u: NodeId, v: NodeId) -> bool {
        let mut seen = vec![false; self.graph.num_nodes()];
        let mut stack: Vec<NodeId> = self.graph.out_neighbors(u).to_vec();
        while let Some(x) = stack.pop() {
            if x == v {
                return true;
            }
            if !seen[x as usize] {
                seen[x as usize] = true;
                stack.extend_from_slice(self.graph.out_neighbors(x));
            }
        }
        false
    }

    /// All label-matching nodes reachable from `u` (APOC-style expansion).
    fn dfs_descendants_with_label(&self, u: NodeId, label: u32) -> Vec<NodeId> {
        let mut seen = vec![false; self.graph.num_nodes()];
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.graph.out_neighbors(u).to_vec();
        while let Some(x) = stack.pop() {
            if seen[x as usize] {
                continue;
            }
            seen[x as usize] = true;
            if self.graph.label(x) == label {
                out.push(x);
            }
            stack.extend_from_slice(self.graph.out_neighbors(x));
        }
        out
    }

    fn dfs_ancestors_with_label(&self, v: NodeId, label: u32) -> Vec<NodeId> {
        let mut seen = vec![false; self.graph.num_nodes()];
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.graph.in_neighbors(v).to_vec();
        while let Some(x) = stack.pop() {
            if seen[x as usize] {
                continue;
            }
            seen[x as usize] = true;
            if self.graph.label(x) == label {
                out.push(x);
            }
            stack.extend_from_slice(self.graph.in_neighbors(x));
        }
        out
    }
}

impl Engine for NeoLike<'_> {
    fn name(&self) -> &'static str {
        "Neo4j"
    }

    fn evaluate(&self, query: &PatternQuery, budget: &Budget) -> RunReport {
        let start = Instant::now();
        let deadline = budget.timeout.map(|t| start + t);
        let cap = budget.max_intermediate.unwrap_or(u64::MAX);
        let g = self.graph;

        // syntactic edge order, seeded from the first edge
        let mut schema: Vec<QNode> = Vec::new();
        let mut tuples: Vec<Vec<NodeId>> = Vec::new();
        let mut intermediate = 0u64;
        for (step, e) in query.edges().iter().enumerate() {
            if let Some(d) = deadline {
                if Instant::now() > d {
                    return failure_report(
                        "Neo4j",
                        RunStatus::Timeout,
                        start.elapsed(),
                        intermediate,
                    );
                }
            }
            let lf = query.label(e.from);
            let lt = query.label(e.to);
            if step == 0 {
                schema = vec![e.from, e.to];
                match e.kind {
                    EdgeKind::Direct => {
                        for u in g.nodes_with_label(lf) {
                            for &v in g.out_neighbors(*u) {
                                if g.label(v) == lt {
                                    tuples.push(vec![*u, v]);
                                }
                            }
                        }
                    }
                    EdgeKind::Reachability => {
                        for u in g.nodes_with_label(lf) {
                            for v in self.dfs_descendants_with_label(*u, lt) {
                                tuples.push(vec![*u, v]);
                            }
                            if tuples.len() as u64 > cap {
                                return failure_report(
                                    "Neo4j",
                                    RunStatus::MemoryExceeded,
                                    start.elapsed(),
                                    intermediate + tuples.len() as u64,
                                );
                            }
                        }
                    }
                }
            } else {
                let fpos = schema.iter().position(|&x| x == e.from);
                let tpos = schema.iter().position(|&x| x == e.to);
                let mut next: Vec<Vec<NodeId>> = Vec::new();
                for tu in &tuples {
                    if let Some(d) = deadline {
                        if Instant::now() > d {
                            return failure_report(
                                "Neo4j",
                                RunStatus::Timeout,
                                start.elapsed(),
                                intermediate,
                            );
                        }
                    }
                    match (fpos, tpos) {
                        (Some(fp), Some(tp)) => {
                            let ok = match e.kind {
                                EdgeKind::Direct => g.has_edge(tu[fp], tu[tp]),
                                EdgeKind::Reachability => self.dfs_reaches(tu[fp], tu[tp]),
                            };
                            if ok {
                                next.push(tu.clone());
                            }
                        }
                        (Some(fp), None) => {
                            let exts: Vec<NodeId> = match e.kind {
                                EdgeKind::Direct => g
                                    .out_neighbors(tu[fp])
                                    .iter()
                                    .copied()
                                    .filter(|&v| g.label(v) == lt)
                                    .collect(),
                                EdgeKind::Reachability => {
                                    self.dfs_descendants_with_label(tu[fp], lt)
                                }
                            };
                            for v in exts {
                                let mut nt = tu.clone();
                                nt.push(v);
                                next.push(nt);
                            }
                        }
                        (None, Some(tp)) => {
                            let exts: Vec<NodeId> = match e.kind {
                                EdgeKind::Direct => g
                                    .in_neighbors(tu[tp])
                                    .iter()
                                    .copied()
                                    .filter(|&u| g.label(u) == lf)
                                    .collect(),
                                EdgeKind::Reachability => self.dfs_ancestors_with_label(tu[tp], lf),
                            };
                            for u in exts {
                                let mut nt = tu.clone();
                                nt.push(u);
                                next.push(nt);
                            }
                        }
                        (None, None) => {
                            // disconnected pattern: Cartesian with the edge
                            // relation (rare; queries are connected)
                            for u in g.nodes_with_label(lf) {
                                for &v in g.out_neighbors(*u) {
                                    if g.label(v) == lt {
                                        let mut nt = tu.clone();
                                        nt.push(*u);
                                        nt.push(v);
                                        next.push(nt);
                                    }
                                }
                            }
                        }
                    }
                    if next.len() as u64 > cap {
                        return failure_report(
                            "Neo4j",
                            RunStatus::MemoryExceeded,
                            start.elapsed(),
                            intermediate + next.len() as u64,
                        );
                    }
                }
                if fpos.is_none() && tpos.is_none() {
                    schema.push(e.from);
                    schema.push(e.to);
                } else if fpos.is_none() {
                    schema.push(e.from);
                } else if tpos.is_none() {
                    schema.push(e.to);
                }
                tuples = next;
            }
            intermediate += tuples.len() as u64;
            if tuples.is_empty() {
                break;
            }
        }

        let mut count = tuples.len() as u64;
        // isolated query nodes (no incident edges) — not produced by our
        // workloads; multiply by their label cardinality to stay exact
        for qn in 0..query.num_nodes() as QNode {
            if !schema.contains(&qn) && query.degree(qn) == 0 {
                count *= g.nodes_with_label(query.label(qn)).len() as u64;
            }
        }
        if let Some(limit) = budget.match_limit {
            count = count.min(limit);
        }
        let total = start.elapsed();
        RunReport {
            engine: "Neo4j".into(),
            status: RunStatus::Completed,
            occurrences: count,
            total_time: total,
            matching_time: std::time::Duration::ZERO,
            enumeration_time: total,
            intermediate_tuples: intermediate,
            aux_size: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_datasets::examples::{fig2_graph, fig4_g2};
    use rig_query::fig2_query;

    #[test]
    fn neo_matches_gm_on_fig2() {
        let g = fig2_graph();
        let neo = NeoLike::new(&g);
        let r = neo.evaluate(&fig2_query(), &Budget::unlimited());
        assert_eq!(r.status, RunStatus::Completed);
        assert_eq!(r.occurrences, 2);
    }

    #[test]
    fn neo_empty_answer() {
        let g = fig4_g2();
        let neo = NeoLike::new(&g);
        let r = neo.evaluate(&fig2_query(), &Budget::unlimited());
        assert_eq!(r.occurrences, 0);
    }

    #[test]
    fn neo_oom_on_tiny_budget() {
        let g = fig2_graph();
        let neo = NeoLike::new(&g);
        let budget = Budget { max_intermediate: Some(1), ..Budget::unlimited() };
        let r = neo.evaluate(&fig2_query(), &budget);
        assert_eq!(r.status, RunStatus::MemoryExceeded);
    }

    #[test]
    fn neo_equals_gm_randomized() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use rig_graph::GraphBuilder;
        use rig_query::EdgeKind;
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed + 500);
            let mut b = GraphBuilder::new();
            for _ in 0..12 {
                b.add_node(rng.gen_range(0..3));
            }
            for _ in 0..25 {
                let u = rng.gen_range(0..12) as NodeId;
                let v = rng.gen_range(0..12) as NodeId;
                if u != v {
                    b.add_edge(u, v);
                }
            }
            let g = b.build();
            let mut q = PatternQuery::new((0..3).map(|_| rng.gen_range(0..3)).collect());
            q.add_edge(0, 1, EdgeKind::Reachability);
            q.add_edge(1, 2, EdgeKind::Direct);
            let neo = NeoLike::new(&g);
            let gm = crate::GmEngine::new(g.clone());
            assert_eq!(
                neo.evaluate(&q, &Budget::unlimited()).occurrences,
                gm.evaluate(&q, &Budget::unlimited()).occurrences,
                "seed={seed}"
            );
        }
    }
}
