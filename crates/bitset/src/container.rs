//! Chunk containers: sorted `u16` arrays for sparse chunks, 1024-word
//! bitmaps for dense chunks, mirroring the roaring format.

/// Maximum cardinality of an array container before promotion to a bitmap.
pub const ARRAY_MAX: usize = 4096;

/// Number of `u64` words in a bitmap container (2^16 bits).
pub const BITMAP_WORDS: usize = 1024;

/// A single 2^16-value chunk.
#[derive(Clone, PartialEq, Eq)]
pub enum Container {
    /// Sorted list of low 16-bit values; cardinality ≤ [`ARRAY_MAX`].
    Array(Vec<u16>),
    /// Dense bitmap with an explicit cardinality.
    Bitmap { words: Box<[u64; BITMAP_WORDS]>, len: u32 },
}

impl Container {
    pub fn singleton(low: u16) -> Self {
        Container::Array(vec![low])
    }

    /// Container holding `count` consecutive values starting at `start`.
    pub fn run(start: u16, count: u32) -> Self {
        debug_assert!(start as u32 + count <= 65_536);
        if (count as usize) <= ARRAY_MAX {
            Container::Array((0..count).map(|i| start + i as u16).collect())
        } else {
            let mut words = Box::new([0u64; BITMAP_WORDS]);
            for i in 0..count {
                let v = start as u32 + i;
                words[(v >> 6) as usize] |= 1 << (v & 63);
            }
            Container::Bitmap { words, len: count }
        }
    }

    /// Builds from sorted, deduplicated low values.
    pub fn from_sorted_lows(lows: Vec<u16>) -> Self {
        if lows.len() <= ARRAY_MAX {
            Container::Array(lows)
        } else {
            let mut words = Box::new([0u64; BITMAP_WORDS]);
            let len = lows.len() as u32;
            for v in lows {
                words[(v >> 6) as usize] |= 1 << (v & 63);
            }
            Container::Bitmap { words, len }
        }
    }

    pub fn len(&self) -> u32 {
        match self {
            Container::Array(a) => a.len() as u32,
            Container::Bitmap { len, .. } => *len,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn heap_bytes(&self) -> usize {
        match self {
            Container::Array(a) => a.capacity() * 2,
            Container::Bitmap { .. } => BITMAP_WORDS * 8,
        }
    }

    pub fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&low).is_ok(),
            Container::Bitmap { words, .. } => words[(low >> 6) as usize] & (1 << (low & 63)) != 0,
        }
    }

    /// Inserts; returns true if newly added. Promotes to bitmap when an
    /// array exceeds [`ARRAY_MAX`].
    pub fn insert(&mut self, low: u16) -> bool {
        match self {
            Container::Array(a) => match a.binary_search(&low) {
                Ok(_) => false,
                Err(pos) => {
                    if a.len() < ARRAY_MAX {
                        a.insert(pos, low);
                    } else {
                        let mut words = Box::new([0u64; BITMAP_WORDS]);
                        for &v in a.iter() {
                            words[(v >> 6) as usize] |= 1 << (v & 63);
                        }
                        words[(low >> 6) as usize] |= 1 << (low & 63);
                        let len = a.len() as u32 + 1;
                        *self = Container::Bitmap { words, len };
                    }
                    true
                }
            },
            Container::Bitmap { words, len } => {
                let w = &mut words[(low >> 6) as usize];
                let bit = 1u64 << (low & 63);
                if *w & bit == 0 {
                    *w |= bit;
                    *len += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Removes; returns true if it was present. Demotes to array when a
    /// bitmap drops to [`ARRAY_MAX`] values.
    pub fn remove(&mut self, low: u16) -> bool {
        match self {
            Container::Array(a) => match a.binary_search(&low) {
                Ok(pos) => {
                    a.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap { words, len } => {
                let w = &mut words[(low >> 6) as usize];
                let bit = 1u64 << (low & 63);
                if *w & bit != 0 {
                    *w &= !bit;
                    *len -= 1;
                    if *len as usize <= ARRAY_MAX {
                        *self = Container::Array(Self::bitmap_to_lows(words));
                    }
                    true
                } else {
                    false
                }
            }
        }
    }

    fn bitmap_to_lows(words: &[u64; BITMAP_WORDS]) -> Vec<u16> {
        let mut out = Vec::new();
        for (wi, &word) in words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros();
                out.push(((wi as u32) << 6 | b) as u16);
                w &= w - 1;
            }
        }
        out
    }

    pub fn min(&self) -> Option<u16> {
        match self {
            Container::Array(a) => a.first().copied(),
            Container::Bitmap { words, .. } => {
                for (wi, &w) in words.iter().enumerate() {
                    if w != 0 {
                        return Some(((wi as u32) << 6 | w.trailing_zeros()) as u16);
                    }
                }
                None
            }
        }
    }

    pub fn max(&self) -> Option<u16> {
        match self {
            Container::Array(a) => a.last().copied(),
            Container::Bitmap { words, .. } => {
                for (wi, &w) in words.iter().enumerate().rev() {
                    if w != 0 {
                        return Some(((wi as u32) << 6 | (63 - w.leading_zeros())) as u16);
                    }
                }
                None
            }
        }
    }

    /// Appends all values (with chunk key `key` re-applied) to `out`.
    pub fn append_values(&self, key: u16, out: &mut Vec<u32>) {
        let base = (key as u32) << 16;
        match self {
            Container::Array(a) => out.extend(a.iter().map(|&v| base | v as u32)),
            Container::Bitmap { words, .. } => {
                for (wi, &word) in words.iter().enumerate() {
                    let mut w = word;
                    while w != 0 {
                        let b = w.trailing_zeros();
                        out.push(base | (wi as u32) << 6 | b);
                        w &= w - 1;
                    }
                }
            }
        }
    }

    /// Number of values strictly below `low`.
    pub fn rank(&self, low: u16) -> u32 {
        match self {
            Container::Array(a) => match a.binary_search(&low) {
                Ok(pos) | Err(pos) => pos as u32,
            },
            Container::Bitmap { words, .. } => {
                let wi = (low >> 6) as usize;
                let mut n: u32 = words[..wi].iter().map(|w| w.count_ones()).sum();
                let mask = (1u64 << (low & 63)) - 1;
                n += (words[wi] & mask).count_ones();
                n
            }
        }
    }

    pub fn and(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => Container::Array(intersect_sorted(a, b)),
            (Container::Array(a), Container::Bitmap { words, .. })
            | (Container::Bitmap { words, .. }, Container::Array(a)) => Container::Array(
                a.iter()
                    .copied()
                    .filter(|&v| words[(v >> 6) as usize] & (1 << (v & 63)) != 0)
                    .collect(),
            ),
            (Container::Bitmap { words: wa, .. }, Container::Bitmap { words: wb, .. }) => {
                let mut words = Box::new([0u64; BITMAP_WORDS]);
                let mut len = 0u32;
                for i in 0..BITMAP_WORDS {
                    let w = wa[i] & wb[i];
                    words[i] = w;
                    len += w.count_ones();
                }
                if len as usize <= ARRAY_MAX {
                    Container::Array(Self::bitmap_to_lows(&words))
                } else {
                    Container::Bitmap { words, len }
                }
            }
        }
    }

    pub fn or(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => {
                let merged = union_sorted(a, b);
                Container::from_sorted_lows(merged)
            }
            (Container::Array(a), Container::Bitmap { words, len })
            | (Container::Bitmap { words, len }, Container::Array(a)) => {
                let mut w2 = words.clone();
                let mut l2 = *len;
                for &v in a {
                    let w = &mut w2[(v >> 6) as usize];
                    let bit = 1u64 << (v & 63);
                    if *w & bit == 0 {
                        *w |= bit;
                        l2 += 1;
                    }
                }
                Container::Bitmap { words: w2, len: l2 }
            }
            (Container::Bitmap { words: wa, .. }, Container::Bitmap { words: wb, .. }) => {
                let mut words = Box::new([0u64; BITMAP_WORDS]);
                let mut len = 0u32;
                for i in 0..BITMAP_WORDS {
                    let w = wa[i] | wb[i];
                    words[i] = w;
                    len += w.count_ones();
                }
                Container::Bitmap { words, len }
            }
        }
    }

    pub fn and_not(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => Container::Array(difference_sorted(a, b)),
            (Container::Array(a), Container::Bitmap { words, .. }) => Container::Array(
                a.iter()
                    .copied()
                    .filter(|&v| words[(v >> 6) as usize] & (1 << (v & 63)) == 0)
                    .collect(),
            ),
            (Container::Bitmap { words, .. }, Container::Array(b)) => {
                let mut w2 = words.clone();
                let mut removed = 0u32;
                for &v in b {
                    let w = &mut w2[(v >> 6) as usize];
                    let bit = 1u64 << (v & 63);
                    if *w & bit != 0 {
                        *w &= !bit;
                        removed += 1;
                    }
                }
                let len = self.len() - removed;
                if len as usize <= ARRAY_MAX {
                    Container::Array(Self::bitmap_to_lows(&w2))
                } else {
                    Container::Bitmap { words: w2, len }
                }
            }
            (Container::Bitmap { words: wa, .. }, Container::Bitmap { words: wb, .. }) => {
                let mut words = Box::new([0u64; BITMAP_WORDS]);
                let mut len = 0u32;
                for i in 0..BITMAP_WORDS {
                    let w = wa[i] & !wb[i];
                    words[i] = w;
                    len += w.count_ones();
                }
                if len as usize <= ARRAY_MAX {
                    Container::Array(Self::bitmap_to_lows(&words))
                } else {
                    Container::Bitmap { words, len }
                }
            }
        }
    }

    pub fn intersection_len(&self, other: &Container) -> u32 {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => intersect_sorted_len(a, b),
            (Container::Array(a), Container::Bitmap { words, .. })
            | (Container::Bitmap { words, .. }, Container::Array(a)) => {
                a.iter().filter(|&&v| words[(v >> 6) as usize] & (1 << (v & 63)) != 0).count()
                    as u32
            }
            (Container::Bitmap { words: wa, .. }, Container::Bitmap { words: wb, .. }) => {
                (0..BITMAP_WORDS).map(|i| (wa[i] & wb[i]).count_ones()).sum()
            }
        }
    }

    pub fn intersects(&self, other: &Container) -> bool {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => {
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => return true,
                    }
                }
                false
            }
            (Container::Array(a), Container::Bitmap { words, .. })
            | (Container::Bitmap { words, .. }, Container::Array(a)) => {
                a.iter().any(|&v| words[(v >> 6) as usize] & (1 << (v & 63)) != 0)
            }
            (Container::Bitmap { words: wa, .. }, Container::Bitmap { words: wb, .. }) => {
                (0..BITMAP_WORDS).any(|i| wa[i] & wb[i] != 0)
            }
        }
    }
}

fn intersect_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    // galloping when sizes are lopsided, merge otherwise
    if a.len() * 16 < b.len() {
        return a.iter().copied().filter(|v| b.binary_search(v).is_ok()).collect();
    }
    if b.len() * 16 < a.len() {
        return b.iter().copied().filter(|v| a.binary_search(v).is_ok()).collect();
    }
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn intersect_sorted_len(a: &[u16], b: &[u16]) -> u32 {
    let (mut i, mut j, mut n) = (0, 0, 0u32);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

fn union_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        if j >= b.len() {
            out.extend_from_slice(&a[i..]);
            break;
        }
        if i >= a.len() {
            out.extend_from_slice(&b[j..]);
            break;
        }
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn difference_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0;
    for &v in a {
        while j < b.len() && b[j] < v {
            j += 1;
        }
        if j >= b.len() || b[j] != v {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_and_demotion_roundtrip() {
        let mut c = Container::Array(Vec::new());
        for v in 0..=(ARRAY_MAX as u32) {
            assert!(c.insert(v as u16));
        }
        assert!(matches!(c, Container::Bitmap { .. }));
        assert_eq!(c.len(), ARRAY_MAX as u32 + 1);
        assert!(c.remove(0));
        assert!(matches!(c, Container::Array(_)));
        assert_eq!(c.len(), ARRAY_MAX as u32);
    }

    #[test]
    fn run_container_dense() {
        let c = Container::run(0, 65_536);
        assert_eq!(c.len(), 65_536);
        assert!(c.contains(0));
        assert!(c.contains(65_535));
        assert_eq!(c.min(), Some(0));
        assert_eq!(c.max(), Some(65_535));
    }

    #[test]
    fn mixed_ops_match_naive() {
        let a: Vec<u16> = (0..8000u32).map(|v| (v * 3 % 65_521) as u16).collect();
        let b: Vec<u16> = (0..100u32).map(|v| (v * 7) as u16).collect();
        let mut sa: Vec<u16> = a.clone();
        sa.sort_unstable();
        sa.dedup();
        let mut sb = b.clone();
        sb.sort_unstable();
        sb.dedup();
        let ca = Container::from_sorted_lows(sa.clone());
        let cb = Container::from_sorted_lows(sb.clone());
        assert!(matches!(ca, Container::Bitmap { .. }));
        assert!(matches!(cb, Container::Array(_)));

        let naive_and: Vec<u16> =
            sa.iter().copied().filter(|v| sb.binary_search(v).is_ok()).collect();
        let mut got = Vec::new();
        ca.and(&cb).append_values(0, &mut got);
        assert_eq!(got, naive_and.iter().map(|&v| v as u32).collect::<Vec<_>>());
        assert_eq!(ca.intersection_len(&cb), naive_and.len() as u32);
        assert_eq!(ca.intersects(&cb), !naive_and.is_empty());
    }

    #[test]
    fn and_not_bitmap_bitmap_demotes() {
        let a = Container::run(0, 65_536);
        let b = Container::run(16, 65_520);
        let d = a.and_not(&b);
        assert_eq!(d.len(), 16);
        assert!(matches!(d, Container::Array(_)));
    }

    #[test]
    fn rank_array_and_bitmap() {
        let arr = Container::from_sorted_lows(vec![2, 4, 6, 8]);
        assert_eq!(arr.rank(5), 2);
        let bm = Container::run(0, 10_000);
        assert_eq!(bm.rank(5_000), 5_000);
    }
}
