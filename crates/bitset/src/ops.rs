//! Non-materializing multi-way operations used by the MJoin hot path.

use crate::Bitset;

/// Visits every value of `base ∩ sets[0] ∩ … ∩ sets[k-1]` in ascending
/// order without materializing the intersection, stopping early if the
/// visitor returns `false`.
///
/// The driver iterates the smallest operand and probes the others, which is
/// the classic leapfrog-style existence strategy; for bitmap-heavy operands
/// a materialized [`Bitset::multi_and`] is often faster, so callers choose
/// based on operand shape.
pub fn for_each_in_intersection(
    base: &Bitset,
    sets: &[&Bitset],
    mut visit: impl FnMut(u32) -> bool,
) -> bool {
    // Pick the smallest set as the driver.
    let mut driver = base;
    for s in sets {
        if s.len() < driver.len() {
            driver = s;
        }
    }
    'outer: for v in driver.iter() {
        if !std::ptr::eq(driver, base) && !base.contains(v) {
            continue;
        }
        for s in sets {
            if !std::ptr::eq(driver, *s) && !s.contains(v) {
                continue 'outer;
            }
        }
        if !visit(v) {
            return false;
        }
    }
    true
}

/// True iff the k-way intersection is non-empty.
pub fn intersection_nonempty(base: &Bitset, sets: &[&Bitset]) -> bool {
    !for_each_in_intersection(base, sets, |_| false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_intersection_in_order() {
        let a = Bitset::from_slice(&[1, 3, 5, 7, 9, 100_000]);
        let b = Bitset::from_slice(&[3, 5, 9, 11, 100_000]);
        let c = Bitset::from_slice(&[0, 3, 9, 100_000]);
        let mut got = Vec::new();
        let complete = for_each_in_intersection(&a, &[&b, &c], |v| {
            got.push(v);
            true
        });
        assert!(complete);
        assert_eq!(got, vec![3, 9, 100_000]);
    }

    #[test]
    fn early_stop() {
        let a = Bitset::from_slice(&[1, 2, 3]);
        let mut got = Vec::new();
        let complete = for_each_in_intersection(&a, &[], |v| {
            got.push(v);
            v < 2
        });
        assert!(!complete);
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn nonempty_check() {
        let a = Bitset::from_slice(&[1, 2, 3]);
        let b = Bitset::from_slice(&[3, 4]);
        let c = Bitset::from_slice(&[4, 5]);
        assert!(intersection_nonempty(&a, &[&b]));
        assert!(!intersection_nonempty(&a, &[&b, &c]));
    }
}
