//! Roaring-style compressed bitmaps over `u32` keys.
//!
//! This crate is the set substrate of the rigmatch workspace. The paper
//! ("Evaluating Hybrid Graph Pattern Queries Using Runtime Index Graphs",
//! EDBT 2023, §6) stores candidate occurrence sets and runtime-index-graph
//! adjacency lists as RoaringBitmap instances and implements its multi-way
//! joins as bitmap intersections. We implement the same container design
//! from scratch:
//!
//! * the key space is split into 2^16 *chunks* of 2^16 values each;
//! * a sparse chunk (≤ [`ARRAY_MAX`] values) is a sorted `Vec<u16>`;
//! * a dense chunk is a 1024-word (`u64`) bitmap;
//! * containers convert between the two representations automatically.
//!
//! On top of the containers we provide the aggregation utilities the paper
//! relies on: pairwise and **multi-way** intersection/union
//! ([`Bitset::multi_and`], [`Bitset::multi_or`] — the `FastAggregation`
//! analogue), *batch iterators* ([`Bitset::batch_iter`]) that decode many
//! values per call (§6 reports 2–10x over per-value iterators), and
//! cardinality / emptiness fast paths used by the join ordering heuristics.
//!
//! The API is deliberately close to a sorted `u32` set so the rest of the
//! workspace can treat it as an opaque set type.

mod container;
mod iter;
mod ops;

pub use container::{Container, ARRAY_MAX, BITMAP_WORDS};
pub use iter::{BatchIter, Iter};
pub use ops::{for_each_in_intersection, intersection_nonempty};

/// A compressed bitmap of `u32` values.
///
/// Containers are kept sorted by their 16-bit chunk key; lookup is a binary
/// search over chunk keys followed by an intra-container probe.
///
/// ```
/// use rig_bitset::Bitset;
/// let a = Bitset::from_slice(&[1, 2, 3, 100_000]);
/// let b: Bitset = (2..5u32).collect();
/// assert_eq!(a.and(&b).to_vec(), vec![2, 3]);
/// assert_eq!(Bitset::multi_or(&[&a, &b]).len(), 5); // {1,2,3,4,100000}
/// assert!(a.contains(100_000));
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bitset {
    /// `(chunk_key, container)` pairs sorted by `chunk_key`.
    pub(crate) chunks: Vec<(u16, Container)>,
}

#[inline]
fn split(value: u32) -> (u16, u16) {
    ((value >> 16) as u16, value as u16)
}

#[inline]
fn join(key: u16, low: u16) -> u32 {
    ((key as u32) << 16) | low as u32
}

impl Bitset {
    /// Creates an empty bitset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitset holding every value in `0..n`.
    pub fn full_range(n: u32) -> Self {
        let mut out = Self::new();
        if n == 0 {
            return out;
        }
        let mut start = 0u32;
        while start < n {
            let key = (start >> 16) as u16;
            let end_excl = ((start | 0xFFFF) + 1).min(n);
            let lo = start as u16;
            let hi_len = end_excl - start;
            out.chunks.push((key, Container::run(lo, hi_len)));
            start = end_excl;
        }
        out
    }

    /// Builds a bitset from a slice of values (need not be sorted).
    pub fn from_slice(values: &[u32]) -> Self {
        let mut sorted: Vec<u32> = values.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Self::from_sorted_dedup(&sorted)
    }

    /// Builds a bitset from already sorted, deduplicated values.
    ///
    /// This is the fast path used when converting CSR adjacency slices.
    pub fn from_sorted_dedup(values: &[u32]) -> Self {
        let mut out = Self::new();
        let mut i = 0;
        while i < values.len() {
            let key = (values[i] >> 16) as u16;
            let mut j = i + 1;
            while j < values.len() && (values[j] >> 16) as u16 == key {
                j += 1;
            }
            let lows: Vec<u16> = values[i..j].iter().map(|&v| v as u16).collect();
            out.chunks.push((key, Container::from_sorted_lows(lows)));
            i = j;
        }
        out
    }

    /// Number of stored values.
    pub fn len(&self) -> u64 {
        self.chunks.iter().map(|(_, c)| c.len() as u64).sum()
    }

    /// True if no value is stored.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Number of containers (for introspection / memory accounting).
    pub fn container_count(&self) -> usize {
        self.chunks.len()
    }

    /// Approximate heap footprint in bytes (used by RIG size accounting).
    pub fn heap_bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|(_, c)| c.heap_bytes() + std::mem::size_of::<(u16, Container)>())
            .sum()
    }

    #[inline]
    fn chunk_index(&self, key: u16) -> Result<usize, usize> {
        self.chunks.binary_search_by_key(&key, |&(k, _)| k)
    }

    /// Inserts `value`; returns true if it was not already present.
    pub fn insert(&mut self, value: u32) -> bool {
        let (key, low) = split(value);
        match self.chunk_index(key) {
            Ok(i) => self.chunks[i].1.insert(low),
            Err(i) => {
                self.chunks.insert(i, (key, Container::singleton(low)));
                true
            }
        }
    }

    /// Removes `value`; returns true if it was present.
    pub fn remove(&mut self, value: u32) -> bool {
        let (key, low) = split(value);
        match self.chunk_index(key) {
            Ok(i) => {
                let removed = self.chunks[i].1.remove(low);
                if removed && self.chunks[i].1.is_empty() {
                    self.chunks.remove(i);
                }
                removed
            }
            Err(_) => false,
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, value: u32) -> bool {
        let (key, low) = split(value);
        match self.chunk_index(key) {
            Ok(i) => self.chunks[i].1.contains(low),
            Err(_) => false,
        }
    }

    /// Smallest stored value.
    pub fn min(&self) -> Option<u32> {
        self.chunks.first().map(|(k, c)| join(*k, c.min().unwrap()))
    }

    /// Largest stored value.
    pub fn max(&self) -> Option<u32> {
        self.chunks.last().map(|(k, c)| join(*k, c.max().unwrap()))
    }

    /// Removes all values.
    pub fn clear(&mut self) {
        self.chunks.clear();
    }

    /// Iterator over values in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter::new(self)
    }

    /// Batch iterator decoding up to `batch` values per refill into an
    /// internal buffer; substantially faster than [`Bitset::iter`] for dense
    /// sets (§6 of the paper).
    pub fn batch_iter(&self, batch: usize) -> BatchIter<'_> {
        BatchIter::new(self, batch)
    }

    /// Collects all values into a vector (ascending order).
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len() as usize);
        for (k, c) in &self.chunks {
            c.append_values(*k, &mut out);
        }
        out
    }

    // ------------------------------------------------------------------
    // Pairwise set algebra
    // ------------------------------------------------------------------

    /// `self ∩ other` as a new bitset.
    pub fn and(&self, other: &Bitset) -> Bitset {
        let mut out = Bitset::new();
        self.and_into(other, &mut out);
        out
    }

    /// `self ∩ other`, written into `out`. Reuses `out`'s chunk vector
    /// allocation, so a caller intersecting in a loop can hold one scratch
    /// bitset instead of allocating per call (the MJoin scratch-buffer
    /// pattern).
    pub fn and_into(&self, other: &Bitset, out: &mut Bitset) {
        out.chunks.clear();
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ka, ca) = &self.chunks[i];
            let (kb, cb) = &other.chunks[j];
            match ka.cmp(kb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let c = ca.and(cb);
                    if !c.is_empty() {
                        out.chunks.push((*ka, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// In-place `self ∩= other`: rewrites the chunk vector in place instead
    /// of building a fresh bitset, so repeated narrowing reuses one
    /// allocation.
    pub fn and_assign(&mut self, other: &Bitset) {
        let mut write = 0;
        let mut j = 0;
        for i in 0..self.chunks.len() {
            let key = self.chunks[i].0;
            while j < other.chunks.len() && other.chunks[j].0 < key {
                j += 1;
            }
            if j < other.chunks.len() && other.chunks[j].0 == key {
                let c = self.chunks[i].1.and(&other.chunks[j].1);
                if !c.is_empty() {
                    self.chunks[write] = (key, c);
                    write += 1;
                }
            }
        }
        self.chunks.truncate(write);
    }

    /// `self ∪ other` as a new bitset.
    pub fn or(&self, other: &Bitset) -> Bitset {
        let mut out = Bitset::new();
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() || j < other.chunks.len() {
            if j >= other.chunks.len() {
                out.chunks.push(self.chunks[i].clone());
                i += 1;
            } else if i >= self.chunks.len() {
                out.chunks.push(other.chunks[j].clone());
                j += 1;
            } else {
                let (ka, ca) = &self.chunks[i];
                let (kb, cb) = &other.chunks[j];
                match ka.cmp(kb) {
                    std::cmp::Ordering::Less => {
                        out.chunks.push((*ka, ca.clone()));
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        out.chunks.push((*kb, cb.clone()));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        out.chunks.push((*ka, ca.or(cb)));
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        out
    }

    /// In-place `self ∪= other`.
    pub fn or_assign(&mut self, other: &Bitset) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        *self = self.or(other);
    }

    /// `self \ other` as a new bitset.
    pub fn and_not(&self, other: &Bitset) -> Bitset {
        let mut out = Bitset::new();
        let mut j = 0;
        for (ka, ca) in &self.chunks {
            while j < other.chunks.len() && other.chunks[j].0 < *ka {
                j += 1;
            }
            if j < other.chunks.len() && other.chunks[j].0 == *ka {
                let c = ca.and_not(&other.chunks[j].1);
                if !c.is_empty() {
                    out.chunks.push((*ka, c));
                }
            } else {
                out.chunks.push((*ka, ca.clone()));
            }
        }
        out
    }

    /// In-place `self \= other`; returns number of removed values.
    pub fn and_not_assign(&mut self, other: &Bitset) -> u64 {
        let before = self.len();
        *self = self.and_not(other);
        before - self.len()
    }

    /// Cardinality of `self ∩ other` without materializing it.
    pub fn intersection_len(&self, other: &Bitset) -> u64 {
        let (mut i, mut j) = (0, 0);
        let mut n = 0u64;
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ka, ca) = &self.chunks[i];
            let (kb, cb) = &other.chunks[j];
            match ka.cmp(kb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += ca.intersection_len(cb) as u64;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// True iff `self ∩ other` is non-empty (early-exit existence test).
    pub fn intersects(&self, other: &Bitset) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ka, ca) = &self.chunks[i];
            let (kb, cb) = &other.chunks[j];
            match ka.cmp(kb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if ca.intersects(cb) {
                        return true;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        false
    }

    /// True iff every value of `self` is in `other`.
    pub fn is_subset(&self, other: &Bitset) -> bool {
        self.and_not(other).is_empty()
    }

    // ------------------------------------------------------------------
    // Multi-way aggregation (FastAggregation analogue)
    // ------------------------------------------------------------------

    /// Intersection of many bitsets. Operands are processed smallest-first
    /// so the running result shrinks as fast as possible; returns an empty
    /// bitset for an empty operand list.
    pub fn multi_and(sets: &[&Bitset]) -> Bitset {
        let mut out = Bitset::new();
        Bitset::multi_and_into(sets, &mut out);
        out
    }

    /// Intersection of many bitsets, written into `out` (smallest operands
    /// first, early exit on an empty running result). Like [`Bitset::and_into`]
    /// this reuses `out`'s chunk vector, so hot loops can keep one scratch
    /// bitset per recursion depth instead of materializing a fresh
    /// intersection per step.
    pub fn multi_and_into(sets: &[&Bitset], out: &mut Bitset) {
        match sets.len() {
            0 => out.chunks.clear(),
            1 => {
                out.chunks.clear();
                out.chunks.extend(sets[0].chunks.iter().cloned());
            }
            _ if sets.len() > 64 => {
                // Degenerate arity: fold in the given order (no used-mask).
                sets[0].and_into(sets[1], out);
                for s in &sets[2..] {
                    if out.is_empty() {
                        return;
                    }
                    out.and_assign(s);
                }
            }
            _ => {
                // Seed from the two smallest operands, then narrow in place
                // with the rest in ascending-cardinality order. Operand
                // counts are tiny (query degree), so selection sort over a
                // used-mask beats allocating a sorted copy.
                let mut used: u64 = 0;
                let mut pick = || {
                    let k = (0..sets.len())
                        .filter(|&k| used & (1 << k) == 0)
                        .min_by_key(|&k| sets[k].len())
                        .expect("operand available");
                    used |= 1 << k;
                    k
                };
                let (a, b) = (pick(), pick());
                sets[a].and_into(sets[b], out);
                for _ in 2..sets.len() {
                    if out.is_empty() {
                        return;
                    }
                    out.and_assign(sets[pick()]);
                }
            }
        }
    }

    /// Union of many bitsets (pairwise tree fold).
    pub fn multi_or(sets: &[&Bitset]) -> Bitset {
        match sets.len() {
            0 => Bitset::new(),
            1 => sets[0].clone(),
            _ => {
                let mut acc = sets[0].clone();
                for s in &sets[1..] {
                    acc.or_assign(s);
                }
                acc
            }
        }
    }

    /// Retains only values for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(u32) -> bool) {
        let doomed: Vec<u32> = self.iter().filter(|&v| !keep(v)).collect();
        for v in doomed {
            self.remove(v);
        }
    }

    /// Rank: number of stored values strictly below `value`.
    pub fn rank(&self, value: u32) -> u64 {
        let (key, low) = split(value);
        let mut n = 0u64;
        for (k, c) in &self.chunks {
            if *k < key {
                n += c.len() as u64;
            } else if *k == key {
                n += c.rank(low) as u64;
                break;
            } else {
                break;
            }
        }
        n
    }
}

impl std::fmt::Debug for Bitset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.len();
        if n <= 32 {
            f.debug_set().entries(self.iter()).finish()
        } else {
            write!(f, "Bitset(len={n})")
        }
    }
}

impl FromIterator<u32> for Bitset {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let values: Vec<u32> = iter.into_iter().collect();
        Bitset::from_slice(&values)
    }
}

impl<'a> IntoIterator for &'a Bitset {
    type Item = u32;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl Extend<u32> for Bitset {
    fn extend<T: IntoIterator<Item = u32>>(&mut self, iter: T) {
        for v in iter {
            self.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_basics() {
        let b = Bitset::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.min(), None);
        assert_eq!(b.max(), None);
        assert!(!b.contains(0));
        assert_eq!(b.to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn insert_remove_contains() {
        let mut b = Bitset::new();
        assert!(b.insert(5));
        assert!(!b.insert(5));
        assert!(b.insert(1_000_000));
        assert!(b.contains(5));
        assert!(b.contains(1_000_000));
        assert!(!b.contains(6));
        assert_eq!(b.len(), 2);
        assert!(b.remove(5));
        assert!(!b.remove(5));
        assert_eq!(b.len(), 1);
        assert_eq!(b.min(), Some(1_000_000));
    }

    #[test]
    fn array_to_bitmap_promotion() {
        let mut b = Bitset::new();
        for v in 0..(ARRAY_MAX as u32 + 100) {
            b.insert(v * 2); // same chunk until 2*(4096+100) < 65536
        }
        assert_eq!(b.len(), ARRAY_MAX as u64 + 100);
        for v in 0..(ARRAY_MAX as u32 + 100) {
            assert!(b.contains(v * 2));
            assert!(!b.contains(v * 2 + 1));
        }
        // demote again by removing
        for v in 200..(ARRAY_MAX as u32 + 100) {
            b.remove(v * 2);
        }
        assert_eq!(b.len(), 200);
        assert_eq!(b.to_vec(), (0..200u32).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn full_range_matches_naive() {
        for n in [0u32, 1, 5, 65_536, 65_537, 200_000] {
            let b = Bitset::full_range(n);
            assert_eq!(b.len(), n as u64, "n={n}");
            if n > 0 {
                assert!(b.contains(0));
                assert!(b.contains(n - 1));
                assert!(!b.contains(n));
            }
        }
    }

    #[test]
    fn set_algebra_small() {
        let a = Bitset::from_slice(&[1, 2, 3, 100_000, 100_001]);
        let b = Bitset::from_slice(&[2, 3, 4, 100_001, 200_000]);
        assert_eq!(a.and(&b).to_vec(), vec![2, 3, 100_001]);
        assert_eq!(a.or(&b).to_vec(), vec![1, 2, 3, 4, 100_000, 100_001, 200_000]);
        assert_eq!(a.and_not(&b).to_vec(), vec![1, 100_000]);
        assert_eq!(a.intersection_len(&b), 3);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&Bitset::from_slice(&[7, 8])));
    }

    #[test]
    fn subset() {
        let a = Bitset::from_slice(&[1, 2, 3]);
        let b = Bitset::from_slice(&[0, 1, 2, 3, 4]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(Bitset::new().is_subset(&a));
    }

    #[test]
    fn multi_and_or() {
        let a = Bitset::from_slice(&[1, 2, 3, 4, 5]);
        let b = Bitset::from_slice(&[2, 3, 4, 5, 6]);
        let c = Bitset::from_slice(&[3, 4, 5, 6, 7]);
        assert_eq!(Bitset::multi_and(&[&a, &b, &c]).to_vec(), vec![3, 4, 5]);
        assert_eq!(Bitset::multi_or(&[&a, &b, &c]).to_vec(), vec![1, 2, 3, 4, 5, 6, 7]);
        assert!(Bitset::multi_and(&[]).is_empty());
        assert_eq!(Bitset::multi_and(&[&a]).to_vec(), a.to_vec());
    }

    #[test]
    fn and_into_reuses_scratch() {
        let a = Bitset::from_slice(&[1, 2, 3, 100_000, 100_001]);
        let b = Bitset::from_slice(&[2, 3, 4, 100_001, 200_000]);
        let mut scratch = Bitset::from_slice(&[9, 9_999_999]); // stale content
        a.and_into(&b, &mut scratch);
        assert_eq!(scratch.to_vec(), vec![2, 3, 100_001]);
        // reuse with disjoint operands clears the scratch
        a.and_into(&Bitset::from_slice(&[7]), &mut scratch);
        assert!(scratch.is_empty());
    }

    #[test]
    fn multi_and_into_matches_multi_and() {
        let a = Bitset::from_slice(&[1, 2, 3, 4, 5, 70_000]);
        let b = Bitset::from_slice(&[2, 3, 4, 5, 6, 70_000]);
        let c = Bitset::from_slice(&[3, 4, 5, 6, 7, 70_000]);
        let mut scratch = Bitset::new();
        for sets in [vec![], vec![&a], vec![&a, &b], vec![&a, &b, &c]] {
            Bitset::multi_and_into(&sets, &mut scratch);
            assert_eq!(scratch.to_vec(), Bitset::multi_and(&sets).to_vec(), "{}", sets.len());
        }
        // early-exit path: an empty operand drains the scratch
        Bitset::multi_and_into(&[&a, &Bitset::new(), &c], &mut scratch);
        assert!(scratch.is_empty());
    }

    #[test]
    fn and_assign_is_in_place_intersection() {
        let mut a = Bitset::from_slice(&[1, 5, 9, 100_000, 200_000]);
        a.and_assign(&Bitset::from_slice(&[5, 100_000, 300_000]));
        assert_eq!(a.to_vec(), vec![5, 100_000]);
        a.and_assign(&Bitset::new());
        assert!(a.is_empty());
    }

    #[test]
    fn rank_works() {
        let b = Bitset::from_slice(&[10, 20, 30, 100_000]);
        assert_eq!(b.rank(0), 0);
        assert_eq!(b.rank(10), 0);
        assert_eq!(b.rank(11), 1);
        assert_eq!(b.rank(1_000_000), 4);
    }

    #[test]
    fn retain_filters() {
        let mut b = Bitset::from_slice(&[1, 2, 3, 4, 5, 6]);
        b.retain(|v| v % 2 == 0);
        assert_eq!(b.to_vec(), vec![2, 4, 6]);
    }

    #[test]
    fn iterators_agree() {
        let vals: Vec<u32> = (0..10_000u32).map(|v| v * 7).collect();
        let b = Bitset::from_slice(&vals);
        assert_eq!(b.iter().collect::<Vec<_>>(), vals);
        let mut batched = Vec::new();
        let mut it = b.batch_iter(256);
        while let Some(chunk) = it.next_batch() {
            batched.extend_from_slice(chunk);
        }
        assert_eq!(batched, vals);
    }

    #[test]
    fn from_iterator_and_extend() {
        let b: Bitset = (0..100u32).collect();
        assert_eq!(b.len(), 100);
        let mut c = Bitset::new();
        c.extend(50..150u32);
        assert_eq!(b.and(&c).len(), 50);
    }

    #[test]
    fn debug_small_and_large() {
        let b = Bitset::from_slice(&[1, 2]);
        assert_eq!(format!("{b:?}"), "{1, 2}");
        let big = Bitset::full_range(1000);
        assert_eq!(format!("{big:?}"), "Bitset(len=1000)");
    }
}
