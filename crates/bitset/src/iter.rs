//! Value iterators: a plain ascending iterator and a *batch* iterator that
//! decodes runs of values into a reusable buffer (the paper reports 2–10x
//! speedups for batch iteration over per-value iteration, §6).

use crate::container::{Container, BITMAP_WORDS};
use crate::Bitset;

/// Ascending iterator over a [`Bitset`].
pub struct Iter<'a> {
    set: &'a Bitset,
    chunk: usize,
    /// Position within the current array container.
    array_pos: usize,
    /// Word index and remaining bits within the current bitmap container.
    word_idx: usize,
    word: u64,
}

impl<'a> Iter<'a> {
    pub(crate) fn new(set: &'a Bitset) -> Self {
        let mut it = Iter { set, chunk: 0, array_pos: 0, word_idx: 0, word: 0 };
        it.prime();
        it
    }

    fn prime(&mut self) {
        if let Some((_, Container::Bitmap { words, .. })) = self.set.chunks.get(self.chunk) {
            self.word_idx = 0;
            self.word = words[0];
        }
    }

    fn advance_chunk(&mut self) {
        self.chunk += 1;
        self.array_pos = 0;
        self.prime();
    }
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            let (key, container) = self.set.chunks.get(self.chunk)?;
            let base = (*key as u32) << 16;
            match container {
                Container::Array(a) => {
                    if self.array_pos < a.len() {
                        let v = base | a[self.array_pos] as u32;
                        self.array_pos += 1;
                        return Some(v);
                    }
                    self.advance_chunk();
                }
                Container::Bitmap { words, .. } => {
                    while self.word == 0 {
                        self.word_idx += 1;
                        if self.word_idx >= BITMAP_WORDS {
                            break;
                        }
                        self.word = words[self.word_idx];
                    }
                    if self.word_idx >= BITMAP_WORDS {
                        self.advance_chunk();
                        continue;
                    }
                    let bit = self.word.trailing_zeros();
                    self.word &= self.word - 1;
                    return Some(base | (self.word_idx as u32) << 6 | bit);
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // cheap over-approximation: remaining total length
        let n = self.set.len() as usize;
        (0, Some(n))
    }
}

/// Batch iterator: refills an internal buffer with up to `batch` values per
/// call to [`BatchIter::next_batch`], amortizing per-value dispatch.
pub struct BatchIter<'a> {
    inner: Iter<'a>,
    buf: Vec<u32>,
    batch: usize,
    done: bool,
}

impl<'a> BatchIter<'a> {
    pub(crate) fn new(set: &'a Bitset, batch: usize) -> Self {
        BatchIter {
            inner: Iter::new(set),
            buf: Vec::with_capacity(batch.max(1)),
            batch: batch.max(1),
            done: false,
        }
    }

    /// Returns the next slice of up to `batch` values, or `None` when the
    /// set is exhausted. The returned slice is invalidated by the next call.
    pub fn next_batch(&mut self) -> Option<&[u32]> {
        if self.done {
            return None;
        }
        self.buf.clear();
        while self.buf.len() < self.batch {
            match self.inner.next() {
                Some(v) => self.buf.push(v),
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if self.buf.is_empty() {
            None
        } else {
            Some(&self.buf)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Bitset;

    #[test]
    fn iter_crosses_chunks_and_container_kinds() {
        let mut vals: Vec<u32> = (0..5000u32).collect(); // dense: bitmap
        vals.extend([70_000, 70_002, 200_000]); // sparse arrays in later chunks
        let b = Bitset::from_slice(&vals);
        assert_eq!(b.iter().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn batch_iter_various_sizes() {
        let vals: Vec<u32> = (0..1000u32).map(|v| v * 13).collect();
        let b = Bitset::from_slice(&vals);
        for batch in [1usize, 7, 64, 10_000] {
            let mut got = Vec::new();
            let mut it = b.batch_iter(batch);
            while let Some(s) = it.next_batch() {
                assert!(s.len() <= batch);
                got.extend_from_slice(s);
            }
            assert_eq!(got, vals, "batch={batch}");
        }
    }

    #[test]
    fn batch_iter_empty() {
        let b = Bitset::new();
        assert!(b.batch_iter(8).next_batch().is_none());
    }
}
