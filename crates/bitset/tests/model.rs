//! Property-based model tests: every [`rig_bitset::Bitset`] operation must
//! agree with `BTreeSet<u32>` as the reference model.

use proptest::prelude::*;
use rig_bitset::Bitset;
use std::collections::BTreeSet;

fn values() -> impl Strategy<Value = Vec<u32>> {
    // mix small dense values with sparse high ones to cross container kinds
    prop::collection::vec(
        prop_oneof![0u32..5_000, 60_000u32..70_000, 1_000_000u32..1_000_100],
        0..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn construction_and_iteration(vals in values()) {
        let model: BTreeSet<u32> = vals.iter().copied().collect();
        let set = Bitset::from_slice(&vals);
        prop_assert_eq!(set.len(), model.len() as u64);
        prop_assert_eq!(set.to_vec(), model.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(set.min(), model.first().copied());
        prop_assert_eq!(set.max(), model.last().copied());
        for &v in model.iter().take(50) {
            prop_assert!(set.contains(v));
        }
    }

    #[test]
    fn insert_remove(vals in values(), ops in values()) {
        let mut model: BTreeSet<u32> = vals.iter().copied().collect();
        let mut set = Bitset::from_slice(&vals);
        for (i, &v) in ops.iter().enumerate() {
            if i % 2 == 0 {
                prop_assert_eq!(set.insert(v), model.insert(v));
            } else {
                prop_assert_eq!(set.remove(v), model.remove(&v));
            }
        }
        prop_assert_eq!(set.to_vec(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn binary_algebra(a in values(), b in values()) {
        let ma: BTreeSet<u32> = a.iter().copied().collect();
        let mb: BTreeSet<u32> = b.iter().copied().collect();
        let sa = Bitset::from_slice(&a);
        let sb = Bitset::from_slice(&b);
        let and: Vec<u32> = ma.intersection(&mb).copied().collect();
        let or: Vec<u32> = ma.union(&mb).copied().collect();
        let not: Vec<u32> = ma.difference(&mb).copied().collect();
        prop_assert_eq!(sa.and(&sb).to_vec(), and.clone());
        prop_assert_eq!(sa.or(&sb).to_vec(), or);
        prop_assert_eq!(sa.and_not(&sb).to_vec(), not);
        prop_assert_eq!(sa.intersection_len(&sb), and.len() as u64);
        prop_assert_eq!(sa.intersects(&sb), !and.is_empty());
        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
    }

    #[test]
    fn multiway_agrees_with_folds(a in values(), b in values(), c in values()) {
        let sa = Bitset::from_slice(&a);
        let sb = Bitset::from_slice(&b);
        let sc = Bitset::from_slice(&c);
        let folded_and = sa.and(&sb).and(&sc);
        let folded_or = sa.or(&sb).or(&sc);
        prop_assert_eq!(Bitset::multi_and(&[&sa, &sb, &sc]), folded_and);
        prop_assert_eq!(Bitset::multi_or(&[&sa, &sb, &sc]), folded_or);
    }

    #[test]
    fn into_variants_agree_with_model(a in values(), b in values(), c in values()) {
        let ma: BTreeSet<u32> = a.iter().copied().collect();
        let mb: BTreeSet<u32> = b.iter().copied().collect();
        let mc: BTreeSet<u32> = c.iter().copied().collect();
        let sa = Bitset::from_slice(&a);
        let sb = Bitset::from_slice(&b);
        let sc = Bitset::from_slice(&c);
        let and2: Vec<u32> = ma.intersection(&mb).copied().collect();
        let and3: Vec<u32> =
            ma.iter().filter(|v| mb.contains(v) && mc.contains(v)).copied().collect();
        // one scratch reused across calls, as the hot loops do
        let mut scratch = Bitset::from_slice(&c);
        sa.and_into(&sb, &mut scratch);
        prop_assert_eq!(scratch.to_vec(), and2);
        Bitset::multi_and_into(&[&sa, &sb, &sc], &mut scratch);
        prop_assert_eq!(scratch.to_vec(), and3.clone());
        // in-place and_assign chain equals the multiway result
        let mut acc = Bitset::from_slice(&a);
        acc.and_assign(&sb);
        acc.and_assign(&sc);
        prop_assert_eq!(acc.to_vec(), and3);
    }

    #[test]
    fn rank_matches_model(vals in values(), probe in 0u32..1_100_000) {
        let model: BTreeSet<u32> = vals.iter().copied().collect();
        let set = Bitset::from_slice(&vals);
        let expect = model.iter().filter(|&&v| v < probe).count() as u64;
        prop_assert_eq!(set.rank(probe), expect);
    }

    #[test]
    fn visitor_intersection(a in values(), b in values()) {
        let sa = Bitset::from_slice(&a);
        let sb = Bitset::from_slice(&b);
        let mut got = Vec::new();
        rig_bitset::for_each_in_intersection(&sa, &[&sb], |v| {
            got.push(v);
            true
        });
        prop_assert_eq!(got, sa.and(&sb).to_vec());
    }

    #[test]
    fn batch_iter_equals_iter(vals in values(), batch in 1usize..300) {
        let set = Bitset::from_slice(&vals);
        let mut batched = Vec::new();
        let mut it = set.batch_iter(batch);
        while let Some(chunk) = it.next_batch() {
            batched.extend_from_slice(chunk);
        }
        prop_assert_eq!(batched, set.iter().collect::<Vec<_>>());
    }
}

// ---------------------------------------------------------------------------
// Model tests for the mutating / auxiliary API surface not covered above:
// in-place algebra, retain, clear, construction fast paths, rank/iter
// round-trips through every mutation, and the visitor short-circuit.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn assign_ops_match_pure_ops(a in values(), b in values()) {
        let sa = Bitset::from_slice(&a);
        let sb = Bitset::from_slice(&b);

        let mut and = sa.clone();
        and.and_assign(&sb);
        prop_assert_eq!(&and, &sa.and(&sb));

        let mut or = sa.clone();
        or.or_assign(&sb);
        prop_assert_eq!(&or, &sa.or(&sb));

        let mut not = sa.clone();
        let removed = not.and_not_assign(&sb);
        prop_assert_eq!(&not, &sa.and_not(&sb));
        prop_assert_eq!(removed, sa.len() - not.len());
    }

    #[test]
    fn construction_fast_paths_agree(vals in values()) {
        let model: BTreeSet<u32> = vals.iter().copied().collect();
        let sorted: Vec<u32> = model.iter().copied().collect();
        let from_slice = Bitset::from_slice(&vals);
        let from_sorted = Bitset::from_sorted_dedup(&sorted);
        let collected: Bitset = vals.iter().copied().collect();
        prop_assert_eq!(&from_slice, &from_sorted);
        prop_assert_eq!(&from_slice, &collected);
        prop_assert_eq!(from_slice.is_empty(), model.is_empty());
    }

    #[test]
    fn full_range_matches_interval(n in 0u32..200_000) {
        let set = Bitset::full_range(n);
        prop_assert_eq!(set.len(), n as u64);
        prop_assert_eq!(set.min(), if n == 0 { None } else { Some(0) });
        prop_assert_eq!(set.max(), n.checked_sub(1));
        // spot-check membership at the boundaries and interior
        for probe in [0u32, n / 2, n.saturating_sub(1), n, n + 1] {
            prop_assert_eq!(set.contains(probe), probe < n, "probe {}", probe);
        }
    }

    #[test]
    fn retain_and_clear_match_model(vals in values(), modulus in 2u32..7) {
        let model: Vec<u32> =
            vals.iter().copied().collect::<BTreeSet<u32>>().into_iter().filter(|v| v % modulus != 0).collect();
        let mut set = Bitset::from_slice(&vals);
        set.retain(|v| v % modulus != 0);
        prop_assert_eq!(set.to_vec(), model);
        set.clear();
        prop_assert!(set.is_empty());
        prop_assert_eq!(set.len(), 0);
        prop_assert_eq!(set.iter().next(), None);
    }

    #[test]
    fn rank_iter_round_trip(vals in values()) {
        // rank(v) over members enumerates 0..len in iteration order, and
        // rank(v + 1) == rank(v) + 1 — i.e. rank inverts iteration.
        let set = Bitset::from_slice(&vals);
        for (i, v) in set.iter().enumerate().take(200) {
            prop_assert_eq!(set.rank(v), i as u64, "rank below member {}", v);
            prop_assert_eq!(set.rank(v + 1), i as u64 + 1, "rank past member {}", v);
        }
    }

    #[test]
    fn multiway_intersection_nonempty_agrees(a in values(), b in values(), c in values()) {
        let sa = Bitset::from_slice(&a);
        let sb = Bitset::from_slice(&b);
        let sc = Bitset::from_slice(&c);
        let expect = !sa.and(&sb).and(&sc).is_empty();
        prop_assert_eq!(rig_bitset::intersection_nonempty(&sa, &[&sb, &sc]), expect);
    }

    #[test]
    fn visitor_short_circuits(a in values(), b in values(), stop_after in 0usize..64) {
        let sa = Bitset::from_slice(&a);
        let sb = Bitset::from_slice(&b);
        let full = sa.and(&sb).to_vec();
        let mut got = Vec::new();
        rig_bitset::for_each_in_intersection(&sa, &[&sb], |v| {
            got.push(v);
            got.len() <= stop_after
        });
        let expect_len = full.len().min(stop_after + 1);
        prop_assert_eq!(&got[..], &full[..expect_len]);
    }
}
