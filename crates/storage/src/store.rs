//! The durable store: segment + WAL lifecycle over a [`StorageBackend`].
//!
//! A [`DurableStore`] owns the files of one store directory. It does not
//! know about sessions or snapshots — `rig_core::Session` drives it:
//! `log_commit` before publishing a commit in memory, `checkpoint` +
//! `truncate_wal` around compaction, `open` to recover after a restart.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use rig_graph::{decode_segment, encode_segment, DataGraph, MutationOp};

use crate::wal::{encode_wal_record, replay_wal, WalRecord};
use crate::{corrupt, io_err, Durability, RecoveryReport, StorageBackend, StorageError};

const WAL_FILE: &str = "wal.log";
const TMP_FILE: &str = "segment.tmp";

/// The name of the snapshot segment capturing store version `version`.
/// Zero-padded so lexicographic file order is version order.
pub fn segment_file_name(version: u64) -> String {
    format!("segment-{version:020}.seg")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("segment-")?.strip_suffix(".seg")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Store tuning: durability policy and the batched-fsync interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    pub durability: Durability,
    /// Under [`Durability::Batched`], fsync after this many unsynced
    /// commits.
    pub batch_commits: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { durability: Durability::Strict, batch_commits: 32 }
    }
}

impl StoreOptions {
    pub fn with_durability(durability: Durability) -> StoreOptions {
        StoreOptions { durability, ..StoreOptions::default() }
    }
}

/// What [`DurableStore::open`] recovered: the snapshot graph, the
/// transactions to replay on top (in version order, contiguous from
/// `base_version + 1`), and the report.
pub struct Recovered {
    pub base: DataGraph,
    pub base_version: u64,
    pub txns: Vec<WalRecord>,
    pub report: RecoveryReport,
}

/// Durable companion of one versioned store: a snapshot segment plus the
/// WAL of commits since that segment was written.
pub struct DurableStore {
    backend: Arc<dyn StorageBackend>,
    dir: PathBuf,
    opts: StoreOptions,
    /// Bytes of the WAL known to hold valid records (the rollback point
    /// for failed appends).
    wal_len: u64,
    /// Commits appended since the last successful fsync.
    unsynced_commits: usize,
    /// Set when a failed append/sync could not be rolled back: further
    /// writes would compound the damage, so they are refused.
    poisoned: Option<String>,
}

impl DurableStore {
    fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    /// True iff `dir` already holds a store (any segment file).
    pub fn is_initialized(backend: &dyn StorageBackend, dir: &Path) -> bool {
        backend
            .list(dir)
            .map(|names| names.iter().any(|n| parse_segment_name(n).is_some()))
            .unwrap_or(false)
    }

    /// Initializes a fresh store at `dir` holding `graph` as version
    /// `version` and an empty WAL. Fails if a store is already present.
    pub fn create(
        backend: Arc<dyn StorageBackend>,
        dir: &Path,
        graph: &DataGraph,
        version: u64,
        opts: StoreOptions,
    ) -> Result<DurableStore, StorageError> {
        backend.create_dir_all(dir).map_err(io_err("create dir", dir))?;
        if Self::is_initialized(backend.as_ref(), dir) {
            return Err(corrupt(dir, "refusing to create: directory already holds a store"));
        }
        let mut store = DurableStore {
            backend,
            dir: dir.to_path_buf(),
            opts,
            wal_len: 0,
            unsynced_commits: 0,
            poisoned: None,
        };
        store.write_segment(graph, version)?;
        let wal = store.wal_path();
        store.backend.write(&wal, &[]).map_err(io_err("create wal", &wal))?;
        store.backend.sync(&wal).map_err(io_err("sync wal", &wal))?;
        Ok(store)
    }

    /// Recovers the store at `dir`: newest decodable segment + WAL replay
    /// with prefix durability, then repairs the WAL tail so future appends
    /// extend a clean log.
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        dir: &Path,
        opts: StoreOptions,
    ) -> Result<(DurableStore, Recovered), StorageError> {
        let names = backend.list(dir).map_err(io_err("list dir", dir))?;
        let mut segments: Vec<(u64, String)> =
            names.iter().filter_map(|n| parse_segment_name(n).map(|v| (v, n.clone()))).collect();
        if segments.is_empty() {
            return Err(StorageError::NotInitialized { dir: dir.to_path_buf() });
        }
        segments.sort();
        segments.reverse(); // newest first

        let mut report = RecoveryReport::default();
        let mut chosen: Option<(DataGraph, u64)> = None;
        for (version, name) in &segments {
            let path = dir.join(name);
            let bytes = backend.read(&path).map_err(io_err("read segment", &path))?;
            match decode_segment(&bytes) {
                Ok((graph, stored_version)) if stored_version == *version => {
                    chosen = Some((graph, *version));
                    break;
                }
                Ok((_, stored_version)) => report.corrupt_segments.push(format!(
                    "{name} (stores version {stored_version}, file name says {version})"
                )),
                Err(e) => report.corrupt_segments.push(format!("{name} ({})", e.message)),
            }
        }
        let Some((base, base_version)) = chosen else {
            return Err(corrupt(
                dir,
                format!("no segment decodes cleanly: {}", report.corrupt_segments.join("; ")),
            ));
        };
        report.snapshot_version = base_version;

        // WAL replay: prefix durability, tail repair
        let wal = dir.join(WAL_FILE);
        let wal_bytes = if backend.exists(&wal) {
            backend.read(&wal).map_err(io_err("read wal", &wal))?
        } else {
            Vec::new()
        };
        let scan = replay_wal(&wal, &wal_bytes)?;
        let torn = wal_bytes.len() as u64 - scan.valid_len;
        report.wal_truncated_bytes = torn;
        if torn > 0 {
            backend.truncate(&wal, scan.valid_len).map_err(io_err("repair wal tail", &wal))?;
            backend.sync(&wal).map_err(io_err("sync wal", &wal))?;
        }

        // records <= base_version are leftovers of a crash between
        // checkpoint rename and WAL truncation; the rest must be a
        // contiguous version run on top of the snapshot, or commits have
        // gone missing (e.g. recovery fell back to an older segment after
        // the WAL was truncated for a newer one)
        let mut txns: Vec<WalRecord> = Vec::new();
        let mut next = base_version + 1;
        for rec in scan.records {
            if rec.version <= base_version {
                report.wal_records_skipped += 1;
                continue;
            }
            if rec.version != next {
                return Err(corrupt(
                    &wal,
                    format!(
                        "wal version {} does not continue the store (expected {next}, \
                         snapshot at {base_version}): committed transactions are missing",
                        rec.version
                    ),
                ));
            }
            next += 1;
            txns.push(rec);
        }
        report.wal_records_replayed = txns.len() as u64;
        report.recovered_version = next - 1;

        let store = DurableStore {
            backend,
            dir: dir.to_path_buf(),
            opts,
            wal_len: scan.valid_len,
            unsynced_commits: 0,
            poisoned: None,
        };
        Ok((store, Recovered { base, base_version, txns, report }))
    }

    /// The store's durability policy.
    pub fn options(&self) -> StoreOptions {
        self.opts
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Valid WAL bytes (diagnostics / compaction heuristics).
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    fn check_poisoned(&self) -> Result<(), StorageError> {
        match &self.poisoned {
            Some(detail) => Err(StorageError::Poisoned { detail: detail.clone() }),
            None => Ok(()),
        }
    }

    /// Rolls the WAL back to the last known-good length after a failed
    /// append/sync; on rollback failure the store poisons itself.
    fn rollback_wal(&mut self, cause: &StorageError) {
        let wal = self.wal_path();
        if let Err(e) = self.backend.truncate(&wal, self.wal_len) {
            self.poisoned =
                Some(format!("wal rollback to {} bytes failed ({e}) after: {cause}", self.wal_len));
        }
    }

    /// Makes the transaction that will publish `version` durable (to the
    /// policy's standard). Must be called *before* the commit is
    /// acknowledged or published in memory; on error nothing was
    /// acknowledged and the WAL has been rolled back to its previous
    /// record boundary (or the store is poisoned).
    pub fn log_commit(&mut self, version: u64, ops: &[MutationOp]) -> Result<(), StorageError> {
        self.check_poisoned()?;
        let wal = self.wal_path();
        let record = encode_wal_record(version, ops);
        if let Err(e) = self.backend.append(&wal, &record) {
            let err = io_err("append wal", &wal)(e);
            self.rollback_wal(&err);
            return Err(err);
        }
        self.unsynced_commits += 1;
        let must_sync = match self.opts.durability {
            Durability::Strict => true,
            Durability::Batched => self.unsynced_commits >= self.opts.batch_commits.max(1),
            Durability::None => false,
        };
        if must_sync {
            if let Err(e) = self.backend.sync(&wal) {
                let err = io_err("sync wal", &wal)(e);
                // under Strict the commit is not acknowledged without its
                // fsync, so undo the record; under Batched earlier commits
                // in the window were acknowledged with a loss window
                // anyway, but *this* one still fails, so undo it too
                self.unsynced_commits -= 1;
                self.rollback_wal(&err);
                return Err(err);
            }
            self.unsynced_commits = 0;
        }
        self.wal_len += record.len() as u64;
        Ok(())
    }

    /// fsyncs any batched-but-unsynced WAL records.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        self.check_poisoned()?;
        if self.unsynced_commits == 0 {
            return Ok(());
        }
        let wal = self.wal_path();
        self.backend.sync(&wal).map_err(io_err("sync wal", &wal))?;
        self.unsynced_commits = 0;
        Ok(())
    }

    fn write_segment(&mut self, graph: &DataGraph, version: u64) -> Result<(), StorageError> {
        let tmp = self.dir.join(TMP_FILE);
        let dst = self.dir.join(segment_file_name(version));
        let bytes = encode_segment(graph, version);
        self.backend.write(&tmp, &bytes).map_err(io_err("write segment", &tmp))?;
        self.backend.sync(&tmp).map_err(io_err("sync segment", &tmp))?;
        self.backend.rename(&tmp, &dst).map_err(io_err("install segment", &dst))?;
        self.backend.sync_dir(&self.dir).map_err(io_err("sync dir", &self.dir))?;
        Ok(())
    }

    /// Writes the snapshot segment for `graph` at `version` (write-new,
    /// fsync, atomic rename, directory fsync). Safe to run while commits
    /// continue: until [`truncate_wal`](Self::truncate_wal) the WAL still
    /// holds every record, and replay skips the ones the segment absorbed.
    /// A checkpoint failure leaves the previous segment + full WAL intact.
    pub fn checkpoint(&mut self, graph: &DataGraph, version: u64) -> Result<(), StorageError> {
        self.check_poisoned()?;
        // an unsynced batched tail must be durable before the WAL shrinks
        self.flush()?;
        self.write_segment(graph, version)
    }

    /// Empties the WAL after a successful [`checkpoint`](Self::checkpoint)
    /// and garbage-collects segments older than `keep_version`. The caller
    /// must guarantee no commit newer than `keep_version` has been logged
    /// (the session holds its state lock across this).
    pub fn truncate_wal(&mut self, keep_version: u64) -> Result<(), StorageError> {
        self.check_poisoned()?;
        let wal = self.wal_path();
        self.backend.truncate(&wal, 0).map_err(io_err("truncate wal", &wal))?;
        // account for the truncate before the sync can fail: `wal_len`
        // must track the file's actual length or a later rollback would
        // cut (or zero-extend) at the wrong offset
        self.wal_len = 0;
        self.unsynced_commits = 0;
        self.backend.sync(&wal).map_err(io_err("sync wal", &wal))?;
        // older segments are now unreferenced; removal is best-effort
        if let Ok(names) = self.backend.list(&self.dir) {
            for name in names {
                if let Some(v) = parse_segment_name(&name) {
                    if v < keep_version {
                        let _ = self.backend.remove(&self.dir.join(name));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemBackend;
    use rig_graph::{GraphBuilder, LabelSpec};

    fn tiny_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let x = b.add_node_with_name(0, "A");
        let y = b.add_node_with_name(1, "B");
        b.add_edge(x, y);
        b.build()
    }

    fn dir() -> PathBuf {
        PathBuf::from("/store")
    }

    #[test]
    fn create_open_round_trip() {
        let backend = Arc::new(MemBackend::new());
        let g = tiny_graph();
        let mut store =
            DurableStore::create(backend.clone(), &dir(), &g, 0, StoreOptions::default()).unwrap();
        store.log_commit(1, &[MutationOp::AddNode(LabelSpec::Id(0))]).unwrap();
        store.log_commit(2, &[MutationOp::AddEdge(2, 0)]).unwrap();
        let (_, rec) = DurableStore::open(backend, &dir(), StoreOptions::default()).unwrap();
        assert_eq!(rec.base_version, 0);
        assert_eq!(rec.base.num_nodes(), 2);
        assert_eq!(rec.txns.len(), 2);
        assert_eq!(rec.report.recovered_version, 2);
        assert_eq!(rec.report.wal_truncated_bytes, 0);
    }

    #[test]
    fn create_refuses_existing_store() {
        let backend = Arc::new(MemBackend::new());
        let g = tiny_graph();
        DurableStore::create(backend.clone(), &dir(), &g, 0, StoreOptions::default()).unwrap();
        match DurableStore::create(backend, &dir(), &g, 0, StoreOptions::default()) {
            Err(StorageError::Corrupt { .. }) => {}
            other => panic!("expected refusal, got {:?}", other.err()),
        }
    }

    #[test]
    fn open_empty_dir_is_not_initialized() {
        let backend = Arc::new(MemBackend::new());
        match DurableStore::open(backend, &dir(), StoreOptions::default()) {
            Err(StorageError::NotInitialized { .. }) => {}
            other => panic!("expected NotInitialized, got {:?}", other.err()),
        }
    }

    #[test]
    fn checkpoint_then_crash_before_truncate_skips_absorbed_records() {
        let backend = Arc::new(MemBackend::new());
        let g = tiny_graph();
        let mut store =
            DurableStore::create(backend.clone(), &dir(), &g, 0, StoreOptions::default()).unwrap();
        store.log_commit(1, &[MutationOp::AddNode(LabelSpec::Id(0))]).unwrap();
        store.log_commit(2, &[MutationOp::AddNode(LabelSpec::Id(1))]).unwrap();
        // checkpoint at version 2 but "crash" before truncate_wal
        store.checkpoint(&g, 2).unwrap();
        drop(store);
        let (_, rec) = DurableStore::open(backend, &dir(), StoreOptions::default()).unwrap();
        assert_eq!(rec.base_version, 2);
        assert_eq!(rec.txns.len(), 0);
        assert_eq!(rec.report.wal_records_skipped, 2);
        assert_eq!(rec.report.recovered_version, 2);
    }

    #[test]
    fn truncate_wal_collects_old_segments() {
        let backend = Arc::new(MemBackend::new());
        let g = tiny_graph();
        let mut store =
            DurableStore::create(backend.clone(), &dir(), &g, 0, StoreOptions::default()).unwrap();
        store.log_commit(1, &[MutationOp::AddNode(LabelSpec::Id(0))]).unwrap();
        store.checkpoint(&g, 1).unwrap();
        store.truncate_wal(1).unwrap();
        let names = backend.list(&dir()).unwrap();
        assert!(names.contains(&segment_file_name(1)));
        assert!(!names.contains(&segment_file_name(0)), "old segment collected: {names:?}");
        let (_, rec) = DurableStore::open(backend, &dir(), StoreOptions::default()).unwrap();
        assert_eq!(rec.base_version, 1);
        assert_eq!(rec.txns.len(), 0);
    }

    #[test]
    fn torn_append_rolls_back_and_next_commit_succeeds() {
        let backend = Arc::new(MemBackend::new());
        let g = tiny_graph();
        let mut store =
            DurableStore::create(backend.clone(), &dir(), &g, 0, StoreOptions::default()).unwrap();
        store.log_commit(1, &[MutationOp::AddNode(LabelSpec::Id(0))]).unwrap();
        // tear the next append after 5 bytes; ops so far: segment write,
        // rename, wal create, commit append — the tear hits op 5
        backend.short_append_at(5, 5);
        match store.log_commit(2, &[MutationOp::AddNode(LabelSpec::Id(1))]) {
            Err(StorageError::Io { op: "append wal", .. }) => {}
            other => panic!("expected append failure, got {:?}", other.err()),
        }
        // rollback repaired the log: the retry lands cleanly
        store.log_commit(2, &[MutationOp::AddNode(LabelSpec::Id(1))]).unwrap();
        let (_, rec) = DurableStore::open(backend, &dir(), StoreOptions::default()).unwrap();
        assert_eq!(rec.txns.len(), 2);
        assert_eq!(rec.report.recovered_version, 2);
        assert_eq!(rec.report.wal_truncated_bytes, 0);
    }

    #[test]
    fn fsync_failure_is_unacked_and_rolled_back() {
        let backend = Arc::new(MemBackend::new());
        let g = tiny_graph();
        let mut store =
            DurableStore::create(backend.clone(), &dir(), &g, 0, StoreOptions::default()).unwrap();
        // syncs so far: segment, dir, wal create = 3; the next commit's
        // fsync is #4
        backend.fail_sync_at(4);
        match store.log_commit(1, &[MutationOp::AddNode(LabelSpec::Id(0))]) {
            Err(StorageError::Io { op: "sync wal", .. }) => {}
            other => panic!("expected sync failure, got {:?}", other.err()),
        }
        // the record was rolled back: recovery sees an empty store
        let (_, rec) =
            DurableStore::open(backend.clone(), &dir(), StoreOptions::default()).unwrap();
        assert_eq!(rec.txns.len(), 0);
        // and the store keeps working
        store.log_commit(1, &[MutationOp::AddNode(LabelSpec::Id(0))]).unwrap();
        let (_, rec) = DurableStore::open(backend, &dir(), StoreOptions::default()).unwrap();
        assert_eq!(rec.txns.len(), 1);
    }

    #[test]
    fn rollback_failure_poisons_the_store() {
        let backend = Arc::new(MemBackend::new());
        let g = tiny_graph();
        let mut store =
            DurableStore::create(backend.clone(), &dir(), &g, 0, StoreOptions::default()).unwrap();
        backend.wedge_after_fault();
        backend.short_append_at(4, 3); // commit append tears, then wedged
        assert!(store.log_commit(1, &[MutationOp::AddNode(LabelSpec::Id(0))]).is_err());
        match store.log_commit(2, &[MutationOp::AddNode(LabelSpec::Id(0))]) {
            Err(StorageError::Poisoned { .. }) => {}
            other => panic!("expected Poisoned, got {:?}", other.err()),
        }
        // after the machine comes back, recovery still works and shows the
        // clean prefix (nothing was acknowledged)
        backend.simulate_crash();
        let (_, rec) = DurableStore::open(backend, &dir(), StoreOptions::default()).unwrap();
        assert_eq!(rec.txns.len(), 0);
        assert_eq!(rec.report.recovered_version, 0);
    }

    #[test]
    fn power_loss_respects_durability_policy() {
        // Strict: every acked commit survives a crash
        let backend = Arc::new(MemBackend::new());
        let g = tiny_graph();
        let mut store = DurableStore::create(
            backend.clone(),
            &dir(),
            &g,
            0,
            StoreOptions::with_durability(Durability::Strict),
        )
        .unwrap();
        for v in 1..=5 {
            store.log_commit(v, &[MutationOp::AddNode(LabelSpec::Id(0))]).unwrap();
        }
        backend.simulate_crash();
        let (_, rec) = DurableStore::open(backend, &dir(), StoreOptions::default()).unwrap();
        assert_eq!(rec.report.recovered_version, 5);

        // None: a crash may drop everything since the last OS flush — the
        // store still recovers cleanly to a prefix
        let backend = Arc::new(MemBackend::new());
        let mut store = DurableStore::create(
            backend.clone(),
            &dir(),
            &g,
            0,
            StoreOptions::with_durability(Durability::None),
        )
        .unwrap();
        for v in 1..=5 {
            store.log_commit(v, &[MutationOp::AddNode(LabelSpec::Id(0))]).unwrap();
        }
        backend.simulate_crash();
        let (_, rec) = DurableStore::open(backend, &dir(), StoreOptions::default()).unwrap();
        assert_eq!(rec.report.recovered_version, 0, "unsynced commits lost, prefix clean");
    }

    #[test]
    fn batched_interval_bounds_the_loss_window() {
        let backend = Arc::new(MemBackend::new());
        let g = tiny_graph();
        let opts = StoreOptions { durability: Durability::Batched, batch_commits: 3 };
        let mut store = DurableStore::create(backend.clone(), &dir(), &g, 0, opts).unwrap();
        for v in 1..=7 {
            store.log_commit(v, &[MutationOp::AddNode(LabelSpec::Id(0))]).unwrap();
        }
        backend.simulate_crash();
        // commits 1..=6 covered by the two interval fsyncs; 7 was in the
        // open window
        let (_, rec) = DurableStore::open(backend, &dir(), StoreOptions::default()).unwrap();
        assert_eq!(rec.report.recovered_version, 6);
    }

    #[test]
    fn segment_bit_flip_falls_back_or_errors() {
        let backend = Arc::new(MemBackend::new());
        let g = tiny_graph();
        let mut store =
            DurableStore::create(backend.clone(), &dir(), &g, 0, StoreOptions::default()).unwrap();
        store.log_commit(1, &[MutationOp::AddNode(LabelSpec::Id(0))]).unwrap();
        // only one segment exists; corrupting it must be a typed error
        let seg = dir().join(segment_file_name(0));
        backend.corrupt(&seg, 25, 0x40);
        match DurableStore::open(backend, &dir(), StoreOptions::default()) {
            Err(StorageError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {:?}", other.err()),
        }
    }

    #[test]
    fn stale_older_segment_cannot_silently_lose_commits() {
        // segment-0 and segment-2 both present (crash before GC), WAL
        // truncated at the version-2 checkpoint; if segment-2 is corrupt,
        // falling back to segment-0 would need WAL records 1..=2 that are
        // gone — recovery must error, not serve the stale state
        let backend = Arc::new(MemBackend::new());
        let g = tiny_graph();
        let mut store =
            DurableStore::create(backend.clone(), &dir(), &g, 0, StoreOptions::default()).unwrap();
        store.log_commit(1, &[MutationOp::AddNode(LabelSpec::Id(0))]).unwrap();
        store.log_commit(2, &[MutationOp::AddNode(LabelSpec::Id(1))]).unwrap();
        store.checkpoint(&g, 2).unwrap();
        // truncate the wal but keep segment-0 (simulate GC not running)
        let wal = dir().join(WAL_FILE);
        backend.truncate(&wal, 0).unwrap();
        store.log_commit(3, &[MutationOp::AddNode(LabelSpec::Id(0))]).unwrap();
        let seg2 = dir().join(segment_file_name(2));
        backend.corrupt(&seg2, 30, 0x01);
        match DurableStore::open(backend, &dir(), StoreOptions::default()) {
            Err(StorageError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {:?}", other.err()),
        }
    }
}
