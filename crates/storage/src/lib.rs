//! Durability layer for the versioned delta-overlay store: a checksummed
//! write-ahead log plus flat binary snapshot segments, behind a
//! fault-injectable [`StorageBackend`].
//!
//! The design follows the "simple, replayable on-disk structures" stance:
//! there is exactly one mutable file (the WAL, append-only between
//! checkpoints) and one immutable segment per checkpoint, installed by
//! atomic rename. Every byte that matters is covered by a CRC-32, and
//! every failure path is exercised deterministically through
//! [`MemBackend`]'s fault plan rather than hoped about.
//!
//! On-disk layout of a store directory:
//!
//! ```text
//! segment-<version>.seg   binary snapshot (rig_graph::encode_segment)
//! wal.log                 one record per committed transaction
//! segment.tmp             checkpoint scratch (ignored on recovery)
//! ```
//!
//! Commit protocol: append the WAL record for version `v` (fsync per the
//! [`Durability`] policy) *before* the in-memory snapshot publishes; a
//! commit is acknowledged only after its record is durable to the policy's
//! standard. Checkpoint protocol: write `segment.tmp`, fsync, rename to
//! `segment-<v>.seg`, fsync the directory, then truncate the WAL — a crash
//! between rename and truncate is benign because replay skips records at
//! or below the segment's version. Recovery ([`DurableStore::open`]) picks
//! the newest decodable segment, replays the WAL prefix up to the last
//! valid record (tolerating a torn tail), and repairs the tail so future
//! appends extend a clean log.
//!
//! See `docs/durability.md` for the full protocol and guarantees.

mod backend;
mod store;
mod wal;

pub use backend::{FsBackend, MemBackend, StorageBackend};
pub use store::{segment_file_name, DurableStore, Recovered, StoreOptions};
pub use wal::{decode_wal_record, encode_wal_record, WalRecord};

use std::io;
use std::path::{Path, PathBuf};

/// How hard `log_commit` pushes each record toward the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// fsync after every commit: an acknowledged commit survives power
    /// loss. The default.
    #[default]
    Strict,
    /// fsync every [`StoreOptions::batch_commits`] commits (and on
    /// checkpoint/flush): bounded loss window, much higher throughput.
    Batched,
    /// Never fsync explicitly; the OS flushes when it pleases. Survives
    /// process crashes (the page cache persists) but not power loss.
    None,
}

impl Durability {
    /// Parses the CLI spelling (`strict` | `batched` | `none`).
    pub fn parse(s: &str) -> Option<Durability> {
        match s {
            "strict" => Some(Durability::Strict),
            "batched" => Some(Durability::Batched),
            "none" => Some(Durability::None),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            Durability::Strict => "strict",
            Durability::Batched => "batched",
            Durability::None => "none",
        }
    }
}

/// A typed storage failure: every durability-layer error is one of these —
/// the layer never panics on bad disks or bad bytes.
#[derive(Debug)]
pub enum StorageError {
    /// An IO operation failed (write, fsync, rename, ...). The store
    /// rolls back or poisons itself so acknowledged state stays sound.
    Io { op: &'static str, path: PathBuf, source: io::Error },
    /// On-disk state failed validation: bad magic, checksum mismatch,
    /// non-contiguous WAL versions, mid-log corruption, and so on.
    Corrupt { path: PathBuf, detail: String },
    /// The store directory holds no segment — nothing to open. Callers
    /// that can seed a fresh store (the CLI) branch on this.
    NotInitialized { dir: PathBuf },
    /// A previous failure could not be rolled back; the store refuses
    /// further writes to avoid compounding damage. Reads and recovery
    /// remain possible.
    Poisoned { detail: String },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io { op, path, source } => {
                write!(f, "storage: {op} {}: {source}", path.display())
            }
            StorageError::Corrupt { path, detail } => {
                write!(f, "storage: {} is corrupt: {detail}", path.display())
            }
            StorageError::NotInitialized { dir } => {
                write!(f, "storage: {} holds no store (no segment file)", dir.display())
            }
            StorageError::Poisoned { detail } => {
                write!(f, "storage: store is poisoned after an unrecoverable failure: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

pub(crate) fn io_err(op: &'static str, path: &Path) -> impl FnOnce(io::Error) -> StorageError {
    let path = path.to_path_buf();
    move |source| StorageError::Io { op, path, source }
}

pub(crate) fn corrupt(path: &Path, detail: impl Into<String>) -> StorageError {
    StorageError::Corrupt { path: path.to_path_buf(), detail: detail.into() }
}

/// What [`DurableStore::open`] did to bring the store back: the witness the
/// `recover` subcommand prints and `bench_storage` verifies against.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Version captured by the segment recovery started from.
    pub snapshot_version: u64,
    /// Version after WAL replay — the store resumes committing at
    /// `recovered_version + 1`.
    pub recovered_version: u64,
    /// WAL records applied on top of the snapshot.
    pub wal_records_replayed: u64,
    /// WAL records at or below the snapshot version (leftovers of a crash
    /// between checkpoint rename and WAL truncation), skipped.
    pub wal_records_skipped: u64,
    /// Torn/garbage tail bytes dropped from the WAL (prefix durability:
    /// an interrupted append never acknowledges, so these bytes belong to
    /// no acknowledged commit under `Durability::Strict`).
    pub wal_truncated_bytes: u64,
    /// Segment files that failed validation and were passed over for an
    /// older one (recovery then requires the WAL to still bridge the gap).
    pub corrupt_segments: Vec<String>,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "snapshot version:    {}", self.snapshot_version)?;
        writeln!(f, "recovered version:   {}", self.recovered_version)?;
        writeln!(f, "wal records applied: {}", self.wal_records_replayed)?;
        writeln!(f, "wal records skipped: {}", self.wal_records_skipped)?;
        writeln!(f, "wal tail truncated:  {} byte(s)", self.wal_truncated_bytes)?;
        if self.corrupt_segments.is_empty() {
            writeln!(f, "corrupt segments:    none")
        } else {
            writeln!(f, "corrupt segments:    {}", self.corrupt_segments.join(", "))
        }
    }
}
