//! File-IO abstraction: every byte the durability layer reads or writes
//! goes through a [`StorageBackend`], so the recovery paths can be driven
//! by deterministic injected faults ([`MemBackend`]) instead of real disk
//! failures, while production uses plain `std::fs` ([`FsBackend`]).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The file operations the store needs. Path-based and stateless on
/// purpose: there is no handle lifetime to reason about across a simulated
/// crash, and a fault plan can key on an operation counter alone.
pub trait StorageBackend: Send + Sync {
    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates/truncates the file and writes `data` (no implicit fsync).
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Appends `data` to the file, creating it if absent. An error may
    /// leave a *prefix* of `data` persisted (a torn append) — callers
    /// repair via [`StorageBackend::truncate`].
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// fsyncs the file.
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Truncates the file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Removes the file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) inside `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Creates `dir` and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// fsyncs the directory (makes renames/creates durable).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// True iff the file exists.
    fn exists(&self, path: &Path) -> bool;
}

// ---------------------------------------------------------------------------
// real filesystem
// ---------------------------------------------------------------------------

/// The production backend: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsBackend;

impl StorageBackend for FsBackend {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).create(true).open(path)?;
        f.write_all(data)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::File::open(dir)?.sync_all()
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ---------------------------------------------------------------------------
// fault-injecting in-memory backend
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct MemFile {
    data: Vec<u8>,
    /// Bytes guaranteed durable: what survives [`MemBackend::simulate_crash`].
    synced: usize,
}

#[derive(Debug, Default)]
struct Faults {
    /// Fail the Nth *mutating* op (1-based over append/write/rename/
    /// truncate/remove), persisting nothing of it.
    fail_op: Option<u64>,
    /// On the Nth append, persist only the first `keep` bytes, then fail
    /// (a torn append).
    short_append: Option<(u64, usize)>,
    /// Fail the Nth sync/sync_dir call (1-based, separate counter) without
    /// advancing durability.
    fail_sync: Option<u64>,
    /// After any injected fault fires, every subsequent operation fails
    /// too — models a process on its way down. Defaults to off so single
    /// transient faults can be tested.
    wedge_after_fault: bool,
}

#[derive(Debug, Default)]
struct MemInner {
    files: BTreeMap<PathBuf, MemFile>,
    ops: u64,
    syncs: u64,
    wedged: bool,
    faults: Faults,
}

/// In-memory [`StorageBackend`] with a deterministic fault plan: fail the
/// Nth write, tear an append short, fail an fsync, flip bits, wedge after
/// the first fault, and [`simulate_crash`](MemBackend::simulate_crash) by
/// dropping every unsynced byte. The recovery test suites drive every
/// crash path in the store through this.
#[derive(Debug, Default)]
pub struct MemBackend {
    inner: Mutex<MemInner>,
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

impl MemBackend {
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    /// Fail the `n`th mutating operation (1-based), persisting nothing.
    pub fn fail_op_at(&self, n: u64) {
        self.inner.lock().unwrap().faults.fail_op = Some(n);
    }

    /// On the `n`th append (counted on the shared mutating-op counter),
    /// persist only `keep` bytes and fail.
    pub fn short_append_at(&self, n: u64, keep: usize) {
        self.inner.lock().unwrap().faults.short_append = Some((n, keep));
    }

    /// Fail the `n`th sync/sync_dir call (1-based, own counter).
    pub fn fail_sync_at(&self, n: u64) {
        self.inner.lock().unwrap().faults.fail_sync = Some(n);
    }

    /// After the first injected fault, fail every later operation too.
    pub fn wedge_after_fault(&self) {
        self.inner.lock().unwrap().faults.wedge_after_fault = true;
    }

    /// Power loss: every file keeps only its synced prefix; fault plan and
    /// wedge are cleared so recovery can run.
    pub fn simulate_crash(&self) {
        let mut inner = self.inner.lock().unwrap();
        for f in inner.files.values_mut() {
            let keep = f.synced;
            f.data.truncate(keep);
        }
        inner.wedged = false;
        inner.faults = Faults::default();
    }

    /// XORs `mask` into the byte at `offset` (bit-flip corruption).
    pub fn corrupt(&self, path: &Path, offset: usize, mask: u8) {
        let mut inner = self.inner.lock().unwrap();
        let f = inner.files.get_mut(path).unwrap_or_else(|| panic!("no file {}", path.display()));
        f.data[offset] ^= mask;
    }

    /// Current contents of `path`, if it exists.
    pub fn file(&self, path: &Path) -> Option<Vec<u8>> {
        self.inner.lock().unwrap().files.get(path).map(|f| f.data.clone())
    }

    /// Number of mutating operations performed so far (the counter the
    /// `*_at` fault points index into).
    pub fn ops(&self) -> u64 {
        self.inner.lock().unwrap().ops
    }

    /// Number of sync calls performed so far.
    pub fn syncs(&self) -> u64 {
        self.inner.lock().unwrap().syncs
    }

    /// Marks everything currently written as synced (useful to set up a
    /// known-durable baseline before arming faults).
    pub fn sync_all_files(&self) {
        let mut inner = self.inner.lock().unwrap();
        for f in inner.files.values_mut() {
            f.synced = f.data.len();
        }
    }
}

impl MemInner {
    /// Bumps the mutating-op counter; returns an error if this op is the
    /// fault point (or the backend is wedged).
    fn mutating_op(&mut self, what: &str) -> io::Result<()> {
        if self.wedged {
            return Err(injected("backend wedged"));
        }
        self.ops += 1;
        if self.faults.fail_op == Some(self.ops) {
            if self.faults.wedge_after_fault {
                self.wedged = true;
            }
            return Err(injected(what));
        }
        Ok(())
    }
}

impl StorageBackend for MemBackend {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let inner = self.inner.lock().unwrap();
        if inner.wedged {
            return Err(injected("backend wedged"));
        }
        match inner.files.get(path) {
            Some(f) => Ok(f.data.clone()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.mutating_op("write")?;
        let f = inner.files.entry(path.to_path_buf()).or_default();
        f.data = data.to_vec();
        f.synced = 0;
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        // a short append tears: part of the payload lands, then the error
        if let Some((n, keep)) = inner.faults.short_append {
            if n == inner.ops + 1 {
                inner.mutating_op("append")?; // bumps; may also be fail_op
                let keep = keep.min(data.len());
                let wedge = inner.faults.wedge_after_fault;
                let f = inner.files.entry(path.to_path_buf()).or_default();
                f.data.extend_from_slice(&data[..keep]);
                if wedge {
                    inner.wedged = true;
                }
                return Err(injected("short append"));
            }
        }
        inner.mutating_op("append")?;
        let f = inner.files.entry(path.to_path_buf()).or_default();
        f.data.extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if inner.wedged {
            return Err(injected("backend wedged"));
        }
        inner.syncs += 1;
        if inner.faults.fail_sync == Some(inner.syncs) {
            if inner.faults.wedge_after_fault {
                inner.wedged = true;
            }
            return Err(injected("sync"));
        }
        match inner.files.get_mut(path) {
            Some(f) => {
                f.synced = f.data.len();
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.mutating_op("rename")?;
        match inner.files.remove(from) {
            Some(f) => {
                inner.files.insert(to.to_path_buf(), f);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.mutating_op("truncate")?;
        match inner.files.get_mut(path) {
            Some(f) => {
                f.data.truncate(len as usize);
                f.synced = f.synced.min(len as usize);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.mutating_op("remove")?;
        match inner.files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let inner = self.inner.lock().unwrap();
        if inner.wedged {
            return Err(injected("backend wedged"));
        }
        let mut names: Vec<String> = inner
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if inner.wedged {
            return Err(injected("backend wedged"));
        }
        inner.syncs += 1;
        if inner.faults.fail_sync == Some(inner.syncs) {
            if inner.faults.wedge_after_fault {
                inner.wedged = true;
            }
            return Err(injected("sync_dir"));
        }
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.lock().unwrap().files.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_round_trip() {
        let b = MemBackend::new();
        let p = Path::new("/store/wal.log");
        b.append(p, b"abc").unwrap();
        b.append(p, b"def").unwrap();
        assert_eq!(b.read(p).unwrap(), b"abcdef");
        b.truncate(p, 4).unwrap();
        assert_eq!(b.read(p).unwrap(), b"abcd");
        b.rename(p, Path::new("/store/x")).unwrap();
        assert!(!b.exists(p));
        assert_eq!(b.list(Path::new("/store")).unwrap(), vec!["x".to_string()]);
    }

    #[test]
    fn crash_drops_unsynced_suffix() {
        let b = MemBackend::new();
        let p = Path::new("/store/wal.log");
        b.append(p, b"durable").unwrap();
        b.sync(p).unwrap();
        b.append(p, b"+volatile").unwrap();
        b.simulate_crash();
        assert_eq!(b.read(p).unwrap(), b"durable");
    }

    #[test]
    fn short_append_tears() {
        let b = MemBackend::new();
        let p = Path::new("/store/wal.log");
        b.append(p, b"ok").unwrap();
        b.short_append_at(2, 3);
        assert!(b.append(p, b"abcdef").is_err());
        assert_eq!(b.read(p).unwrap(), b"okabc");
        // next append works again (fault was one-shot and did not wedge)
        b.append(p, b"!").unwrap();
        assert_eq!(b.read(p).unwrap(), b"okabc!");
    }

    #[test]
    fn fail_op_and_wedge() {
        let b = MemBackend::new();
        b.wedge_after_fault();
        b.fail_op_at(2);
        let p = Path::new("/store/f");
        b.write(p, b"one").unwrap();
        assert!(b.write(p, b"two").is_err());
        assert!(b.read(p).is_err(), "wedged backend fails reads too");
        b.simulate_crash();
        // nothing was synced, so the crash wipes the file
        assert_eq!(b.read(p).unwrap(), b"");
    }

    #[test]
    fn fail_sync_keeps_data_volatile() {
        let b = MemBackend::new();
        let p = Path::new("/store/wal.log");
        b.append(p, b"abc").unwrap();
        b.fail_sync_at(1);
        assert!(b.sync(p).is_err());
        b.simulate_crash();
        assert_eq!(b.read(p).unwrap(), b"");
    }
}
