//! WAL record codec: one length-prefixed, CRC-checksummed record per
//! committed transaction, carrying the store version it published and the
//! same [`MutationOp`] sequence `Session::apply` understands.
//!
//! Record layout (little-endian):
//!
//! ```text
//! 0..4   payload length (u32)
//! 4..8   crc32 of payload
//! 8..    payload: version u64, op count u32, ops
//! ```
//!
//! Op encoding: a tag byte, then the operands —
//! `0` AddNode(id: u32) · `1` AddNode(name: u32 len + utf-8) ·
//! `2` RemoveNode(u32) · `3` AddEdge(u32, u32) · `4` RemoveEdge(u32, u32).
//!
//! Replay ([`replay_wal`]) walks records sequentially and applies **prefix
//! durability**: an invalid record that extends to end-of-file is a torn
//! append (the interrupted write of a commit that was never acknowledged)
//! and replay stops cleanly before it; an invalid record *followed by more
//! bytes* cannot be explained by a torn append and is reported as
//! corruption.

use std::path::Path;

use rig_graph::{crc32, LabelSpec, MutationOp};

use crate::{corrupt, StorageError};

/// One decoded WAL record: the version a committed transaction published
/// and its ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub version: u64,
    pub ops: Vec<MutationOp>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes the record for a transaction that published `version`.
pub fn encode_wal_record(version: u64, ops: &[MutationOp]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + 9 * ops.len());
    payload.extend_from_slice(&version.to_le_bytes());
    put_u32(&mut payload, ops.len() as u32);
    for op in ops {
        match op {
            MutationOp::AddNode(LabelSpec::Id(l)) => {
                payload.push(0);
                put_u32(&mut payload, *l);
            }
            MutationOp::AddNode(LabelSpec::Named(name)) => {
                payload.push(1);
                put_u32(&mut payload, name.len() as u32);
                payload.extend_from_slice(name.as_bytes());
            }
            MutationOp::RemoveNode(v) => {
                payload.push(2);
                put_u32(&mut payload, *v);
            }
            MutationOp::AddEdge(u, v) => {
                payload.push(3);
                put_u32(&mut payload, *u);
                put_u32(&mut payload, *v);
            }
            MutationOp::RemoveEdge(u, v) => {
                payload.push(4);
                put_u32(&mut payload, *u);
                put_u32(&mut payload, *v);
            }
        }
    }
    let mut out = Vec::with_capacity(8 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.bytes.len())?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }
}

/// Decodes one record payload (the bytes after the len/crc header).
pub fn decode_wal_record(payload: &[u8]) -> Result<WalRecord, String> {
    let mut c = Cursor { bytes: payload, pos: 0 };
    let version = c.u64().ok_or("payload too short for version")?;
    let count = c.u32().ok_or("payload too short for op count")? as usize;
    let mut ops = Vec::with_capacity(count.min(payload.len()));
    for i in 0..count {
        let tag = c.u8().ok_or_else(|| format!("op {i}: missing tag"))?;
        let op = match tag {
            0 => MutationOp::AddNode(LabelSpec::Id(
                c.u32().ok_or_else(|| format!("op {i}: short AddNode"))?,
            )),
            1 => {
                let len = c.u32().ok_or_else(|| format!("op {i}: short AddNode name"))? as usize;
                let raw = c.take(len).ok_or_else(|| format!("op {i}: short AddNode name"))?;
                let name = std::str::from_utf8(raw)
                    .map_err(|_| format!("op {i}: AddNode name not utf-8"))?;
                MutationOp::AddNode(LabelSpec::Named(name.to_string()))
            }
            2 => {
                MutationOp::RemoveNode(c.u32().ok_or_else(|| format!("op {i}: short RemoveNode"))?)
            }
            3 => {
                let u = c.u32().ok_or_else(|| format!("op {i}: short AddEdge"))?;
                let v = c.u32().ok_or_else(|| format!("op {i}: short AddEdge"))?;
                MutationOp::AddEdge(u, v)
            }
            4 => {
                let u = c.u32().ok_or_else(|| format!("op {i}: short RemoveEdge"))?;
                let v = c.u32().ok_or_else(|| format!("op {i}: short RemoveEdge"))?;
                MutationOp::RemoveEdge(u, v)
            }
            t => return Err(format!("op {i}: unknown tag {t}")),
        };
        ops.push(op);
    }
    if c.pos != payload.len() {
        return Err(format!("{} trailing byte(s) in record payload", payload.len() - c.pos));
    }
    Ok(WalRecord { version, ops })
}

/// The outcome of scanning a WAL file.
#[derive(Debug)]
pub(crate) struct WalScan {
    pub records: Vec<WalRecord>,
    /// Byte length of the valid record prefix; everything past it is torn
    /// tail to be truncated away.
    pub valid_len: u64,
}

/// Scans `bytes` (the whole WAL file at `path`, used for error context).
/// Returns the valid record prefix; a torn tail is tolerated, mid-log
/// corruption is a typed error.
pub(crate) fn replay_wal(path: &Path, bytes: &[u8]) -> Result<WalScan, StorageError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            // header torn off mid-write
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let want_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let Some(end) = pos.checked_add(8).and_then(|p| p.checked_add(len)) else {
            break; // absurd length: only explicable as a torn/garbage tail
        };
        if end > bytes.len() {
            // payload extends past EOF: torn append
            break;
        }
        let payload = &bytes[pos + 8..end];
        let at_tail = end == bytes.len();
        if crc32(payload) != want_crc {
            if at_tail {
                break; // garbage final record: torn append of an unacked commit
            }
            return Err(corrupt(
                path,
                format!("record at byte {pos}: checksum mismatch with valid data following"),
            ));
        }
        match decode_wal_record(payload) {
            Ok(r) => records.push(r),
            Err(detail) => {
                // the checksum matched, so this is writer-side damage, not
                // a torn write — always an error
                return Err(corrupt(path, format!("record at byte {pos}: {detail}")));
            }
        }
        pos = end;
    }
    Ok(WalScan { records, valid_len: pos as u64 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<MutationOp> {
        vec![
            MutationOp::AddNode(LabelSpec::Id(3)),
            MutationOp::AddNode(LabelSpec::Named("Paper".into())),
            MutationOp::RemoveNode(7),
            MutationOp::AddEdge(1, 2),
            MutationOp::RemoveEdge(2, 1),
        ]
    }

    #[test]
    fn record_round_trip() {
        let bytes = encode_wal_record(9, &sample_ops());
        let rec = decode_wal_record(&bytes[8..]).expect("decodes");
        assert_eq!(rec.version, 9);
        assert_eq!(rec.ops, sample_ops());
    }

    #[test]
    fn replay_clean_log() {
        let p = Path::new("wal.log");
        let mut log = encode_wal_record(1, &sample_ops());
        log.extend(encode_wal_record(2, &[MutationOp::AddEdge(0, 1)]));
        let scan = replay_wal(p, &log).expect("replays");
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_len, log.len() as u64);
        assert_eq!(scan.records[0].version, 1);
        assert_eq!(scan.records[1].version, 2);
    }

    #[test]
    fn torn_tail_at_every_cut_recovers_the_prefix() {
        let p = Path::new("wal.log");
        let r1 = encode_wal_record(1, &sample_ops());
        let r2 = encode_wal_record(2, &[MutationOp::AddEdge(0, 1)]);
        let mut log = r1.clone();
        log.extend(&r2);
        for cut in r1.len()..log.len() {
            let scan = replay_wal(p, &log[..cut]).expect("torn tail tolerated");
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, r1.len() as u64, "cut at {cut}");
        }
        for cut in 0..r1.len() {
            let scan = replay_wal(p, &log[..cut]).expect("torn tail tolerated");
            assert_eq!(scan.records.len(), 0, "cut at {cut}");
            assert_eq!(scan.valid_len, 0, "cut at {cut}");
        }
    }

    #[test]
    fn tail_corruption_recovers_prefix_mid_log_corruption_errors() {
        let p = Path::new("wal.log");
        let r1 = encode_wal_record(1, &sample_ops());
        let r2 = encode_wal_record(2, &[MutationOp::AddEdge(0, 1)]);
        let mut log = r1.clone();
        log.extend(&r2);
        // flip a payload byte of the *final* record: indistinguishable from
        // a torn append, recovered as the clean one-record prefix
        let mut tail_bad = log.clone();
        let last = tail_bad.len() - 1;
        tail_bad[last] ^= 0xFF;
        let scan = replay_wal(p, &tail_bad).expect("tail corruption tolerated");
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, r1.len() as u64);
        // flip a payload byte of the *first* record: valid data follows, so
        // this is real corruption and must be a typed error
        let mut mid_bad = log.clone();
        mid_bad[10] ^= 0xFF;
        match replay_wal(p, &mid_bad) {
            Err(StorageError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn garbage_only_log_is_a_torn_tail() {
        let p = Path::new("wal.log");
        let scan = replay_wal(p, &[0xAB; 7]).expect("short garbage tolerated");
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.valid_len, 0);
    }
}
