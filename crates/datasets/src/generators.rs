//! Random graph models and label assignment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rig_graph::{DataGraph, GraphBuilder, Label, NodeId};

/// Directed preferential attachment: nodes arrive one at a time; each new
/// node draws `m/n` (on average) endpoints proportional to current degree
/// (plus one smoothing), with random edge orientation. Produces the
/// heavy-tailed degree distributions of web/social/product graphs.
pub fn scale_free(n: usize, m: usize, seed: u64) -> DataGraph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        b.add_node(0);
    }
    // endpoint pool: repeated-node trick for degree-proportional sampling
    let mut pool: Vec<NodeId> = vec![0, 1];
    b.add_edge(0, 1);
    let per_node = (m as f64 / n as f64).max(1.0);
    let mut emitted = 1usize;
    for v in 2..n as NodeId {
        // number of edges this node contributes
        let k = {
            let base = per_node.floor() as usize;
            let frac = per_node - base as f64;
            base + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)))
        };
        for _ in 0..k.max(1) {
            // 80% preferential, 20% uniform (keeps the graph connected-ish
            // and the exponent realistic)
            let target = if rng.gen_bool(0.8) && !pool.is_empty() {
                pool[rng.gen_range(0..pool.len())]
            } else {
                rng.gen_range(0..v)
            };
            if target == v {
                continue;
            }
            if rng.gen_bool(0.5) {
                b.add_edge(v, target);
            } else {
                b.add_edge(target, v);
            }
            pool.push(target);
            pool.push(v);
            emitted += 1;
        }
    }
    // top up to the target edge count with preferential extra edges
    while emitted < m {
        let u = pool[rng.gen_range(0..pool.len())];
        let v = pool[rng.gen_range(0..pool.len())];
        if u != v {
            b.add_edge(u, v);
            emitted += 1;
        }
    }
    b.build()
}

/// Uniform random directed graph with `n` nodes and ~`m` distinct edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> DataGraph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        b.add_node(0);
    }
    for _ in 0..m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Reassigns labels with a Zipf(`exponent`) distribution over `num_labels`
/// labels (label 0 most frequent), guaranteeing every label occurs at
/// least once when `n ≥ num_labels`.
pub fn zipf_labels(g: &DataGraph, num_labels: usize, exponent: f64, seed: u64) -> DataGraph {
    assert!(num_labels >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // cumulative Zipf weights
    let weights: Vec<f64> = (1..=num_labels).map(|r| 1.0 / (r as f64).powf(exponent)).collect();
    let total: f64 = weights.iter().sum();
    let mut cum = Vec::with_capacity(num_labels);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cum.push(acc);
    }
    let n = g.num_nodes();
    let mut labels: Vec<Label> = (0..n)
        .map(|_| {
            let x: f64 = rng.gen();
            cum.iter().position(|&c| x <= c).unwrap_or(num_labels - 1) as Label
        })
        .collect();
    // ensure all labels present
    if n >= num_labels {
        for (l, slot) in labels.iter_mut().enumerate().take(num_labels) {
            *slot = l as Label;
        }
    }
    g.relabel(|v, _| labels[v as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_respects_counts() {
        let g = erdos_renyi(100, 400, 1);
        assert_eq!(g.num_nodes(), 100);
        assert!(g.num_edges() <= 400);
        assert!(g.num_edges() > 300); // few duplicates at this density
    }

    #[test]
    fn scale_free_edge_count_close() {
        let g = scale_free(500, 2_000, 2);
        assert_eq!(g.num_nodes(), 500);
        let e = g.num_edges() as f64;
        assert!((e - 2_000.0).abs() / 2_000.0 < 0.2, "edges={e}");
    }

    #[test]
    fn zipf_labels_skewed_and_complete() {
        let g = erdos_renyi(1_000, 3_000, 3);
        let lg = zipf_labels(&g, 10, 1.0, 4);
        assert_eq!(lg.num_labels(), 10);
        for l in 0..10u32 {
            assert!(!lg.nodes_with_label(l).is_empty(), "label {l} missing");
        }
        // label 0 should be the most frequent
        let c0 = lg.nodes_with_label(0).len();
        let c9 = lg.nodes_with_label(9).len();
        assert!(c0 > c9, "c0={c0} c9={c9}");
    }

    #[test]
    fn single_label_allowed() {
        let g = erdos_renyi(50, 100, 5);
        let lg = zipf_labels(&g, 1, 1.0, 6);
        assert_eq!(lg.num_labels(), 1);
        assert_eq!(lg.nodes_with_label(0).len(), 50);
    }
}
