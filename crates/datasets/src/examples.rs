//! The paper's worked examples as concrete graphs.
//!
//! These are shared by tests, doc examples and the runnable examples in
//! `examples/`. Node-id conventions are documented per function.

use rig_graph::{DataGraph, GraphBuilder};

/// Label ids used by the running example.
pub const LABEL_A: u32 = 0;
pub const LABEL_B: u32 = 1;
pub const LABEL_C: u32 = 2;

/// Reconstruction of the Fig. 2(b) data graph `G`.
///
/// Node ids: `a0..a2 = 0..2`, `b0..b3 = 3..6`, `c0..c2 = 7..9`.
/// On this graph the Fig. 2(a) query has answer
/// `{(a1, b0, c0), (a2, b2, c2)}`, match sets strictly larger than the
/// double simulation, and one redundant RIG edge `(b2, c0)` — the analogue
/// of the paper's red dashed edge in Fig. 2(e).
pub fn fig2_graph() -> DataGraph {
    let mut b = GraphBuilder::new();
    for _ in 0..3 {
        b.add_node_with_name(LABEL_A, "a");
    }
    for _ in 0..4 {
        b.add_node_with_name(LABEL_B, "b");
    }
    for _ in 0..3 {
        b.add_node_with_name(LABEL_C, "c");
    }
    b.add_edge(1, 3); // a1 -> b0
    b.add_edge(1, 7); // a1 -> c0
    b.add_edge(3, 8); // b0 -> c1
    b.add_edge(8, 7); // c1 -> c0
    b.add_edge(2, 5); // a2 -> b2
    b.add_edge(2, 9); // a2 -> c2
    b.add_edge(5, 9); // b2 -> c2
    b.add_edge(5, 8); // b2 -> c1
    b.add_edge(0, 4); // a0 -> b1
    b.add_edge(4, 7); // b1 -> c0
    b.add_edge(6, 0); // b3 -> a0
    b.build()
}

/// Reconstruction of the Fig. 4 graph `G2`, on which the Fig. 2(a) query
/// has an **empty** answer: double simulation drains every candidate set
/// through a multi-step pruning cascade (the property Figs. 4 and 5
/// illustrate).
///
/// Node ids: `a0..a2 = 0..2`, `b0..b3 = 3..6`, `c0..c2 = 7..9`.
pub fn fig4_g2() -> DataGraph {
    let mut b = GraphBuilder::new();
    for _ in 0..3 {
        b.add_node_with_name(LABEL_A, "a");
    }
    for _ in 0..4 {
        b.add_node_with_name(LABEL_B, "b");
    }
    for _ in 0..3 {
        b.add_node_with_name(LABEL_C, "c");
    }
    b.add_edge(0, 3); // a0 -> b0   (a0 has no c child)
    b.add_edge(1, 7); // a1 -> c0   (a1 has no b child)
    b.add_edge(2, 4); // a2 -> b1
    b.add_edge(2, 8); // a2 -> c1
    b.add_edge(4, 9); // b1 -> c2   (but c2 has no a parent)
    b.add_edge(5, 7); // b2 -> c0   (but b2 has no a parent)
    b.add_edge(6, 5); // b3 -> b2
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape() {
        let g = fig2_graph();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 11);
        assert_eq!(g.num_labels(), 3);
        assert_eq!(g.label_name(LABEL_A), "a");
    }

    #[test]
    fn fig4_has_no_query_answer() {
        // verify by hand-rolled check: no a-node has both a b-child and a
        // c-child where the b-child reaches the c-child
        let g = fig4_g2();
        let mut found = false;
        for a in g.nodes_with_label(LABEL_A) {
            for &bn in g.out_neighbors(*a) {
                if g.label(bn) != LABEL_B {
                    continue;
                }
                for &cn in g.out_neighbors(*a) {
                    if g.label(cn) != LABEL_C {
                        continue;
                    }
                    // bfs from bn
                    let mut stack = vec![bn];
                    let mut seen = vec![false; g.num_nodes()];
                    while let Some(x) = stack.pop() {
                        for &y in g.out_neighbors(x) {
                            if y == cn {
                                found = true;
                            }
                            if !seen[y as usize] {
                                seen[y as usize] = true;
                                stack.push(y);
                            }
                        }
                    }
                }
            }
        }
        assert!(!found, "fig4 G2 must have an empty answer");
    }
}
