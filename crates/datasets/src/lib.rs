//! Synthetic dataset generators calibrated to the paper's Table 2.
//!
//! The paper evaluates on nine SNAP graphs (yeast … google). Those files
//! are not redistributable here, so this crate generates *synthetic stand-
//! ins* matched on the Table 2 statistics — |V|, |E|, |L| and average
//! degree — using the structural model appropriate to each domain
//! (preferential attachment for social/web/product graphs, Erdős–Rényi for
//! biological and communication graphs) and a Zipf label distribution
//! (real label frequencies are heavily skewed). See DESIGN.md,
//! "Substitutions", for why this preserves the experiments' shape.
//!
//! Every generator is deterministic in `(spec, scale, seed)`.
//!
//! The [`examples`] module holds the paper's worked examples (the Fig. 2
//! data graph, the Fig. 4 pruning-cascade graph G2) used across the
//! workspace's tests and docs.

pub mod examples;
mod generators;

pub use generators::{erdos_renyi, scale_free, zipf_labels};

use rig_graph::DataGraph;

/// Structural model used for a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Directed preferential attachment (heavy-tailed degrees).
    ScaleFree,
    /// Uniform random edges.
    ErdosRenyi,
}

/// Calibration record for one Table 2 dataset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Short name used throughout the paper ("em", "ep", ...).
    pub name: &'static str,
    /// Full SNAP dataset name.
    pub full_name: &'static str,
    /// Target |V| at scale 1.0.
    pub nodes: usize,
    /// Target |E| at scale 1.0.
    pub edges: usize,
    /// Number of distinct labels.
    pub labels: usize,
    pub model: Model,
}

impl DatasetSpec {
    /// Generates the graph at `scale ∈ (0, 1]` (nodes and edges scaled
    /// linearly; statistics like average degree are preserved).
    pub fn generate(&self, scale: f64, seed: u64) -> DataGraph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = ((self.nodes as f64 * scale).round() as usize).max(16);
        let m = ((self.edges as f64 * scale).round() as usize).max(32);
        let g = match self.model {
            Model::ScaleFree => scale_free(n, m, seed),
            Model::ErdosRenyi => erdos_renyi(n, m, seed),
        };
        zipf_labels(&g, self.labels, 0.8, seed ^ 0x1abe1)
    }
}

/// Table 2 of the paper, as calibration targets.
pub static CATALOG: [DatasetSpec; 9] = [
    DatasetSpec {
        name: "yt",
        full_name: "Yeast",
        nodes: 3_100,
        edges: 12_000,
        labels: 71,
        model: Model::ErdosRenyi,
    },
    DatasetSpec {
        name: "hu",
        full_name: "Human",
        nodes: 4_600,
        edges: 86_000,
        labels: 44,
        model: Model::ErdosRenyi,
    },
    DatasetSpec {
        name: "hp",
        full_name: "HPRD",
        nodes: 9_400,
        edges: 35_000,
        labels: 307,
        model: Model::ErdosRenyi,
    },
    DatasetSpec {
        name: "ep",
        full_name: "Epinions",
        nodes: 76_000,
        edges: 509_000,
        labels: 20,
        model: Model::ScaleFree,
    },
    DatasetSpec {
        name: "db",
        full_name: "DBLP",
        nodes: 317_000,
        edges: 1_049_000,
        labels: 20,
        model: Model::ScaleFree,
    },
    DatasetSpec {
        name: "em",
        full_name: "Email",
        nodes: 265_000,
        edges: 420_000,
        labels: 20,
        model: Model::ErdosRenyi,
    },
    DatasetSpec {
        name: "am",
        full_name: "Amazon",
        nodes: 403_000,
        edges: 3_500_000,
        labels: 3,
        model: Model::ScaleFree,
    },
    DatasetSpec {
        name: "bs",
        full_name: "BerkStan",
        nodes: 685_000,
        edges: 7_600_000,
        labels: 5,
        model: Model::ScaleFree,
    },
    DatasetSpec {
        name: "go",
        full_name: "Google",
        nodes: 876_000,
        edges: 5_100_000,
        labels: 5,
        model: Model::ScaleFree,
    },
];

/// Looks up a dataset spec by its short name.
pub fn spec(name: &str) -> Option<&'static DatasetSpec> {
    CATALOG.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lookup() {
        assert_eq!(spec("em").unwrap().full_name, "Email");
        assert_eq!(spec("go").unwrap().labels, 5);
        assert!(spec("nope").is_none());
    }

    #[test]
    fn generated_stats_track_spec() {
        let s = spec("yt").unwrap();
        let g = s.generate(1.0, 7);
        let stats = g.stats();
        // node count exact, edge count within 15% (dedup of random edges)
        assert_eq!(stats.nodes, s.nodes);
        assert!(
            (stats.edges as f64 - s.edges as f64).abs() / (s.edges as f64) < 0.15,
            "edges {} vs target {}",
            stats.edges,
            s.edges
        );
        assert_eq!(stats.labels, s.labels);
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let s = spec("ep").unwrap();
        let g = s.generate(0.01, 3);
        assert!((g.num_nodes() as f64 - s.nodes as f64 * 0.01).abs() < 2.0);
    }

    #[test]
    fn deterministic() {
        let s = spec("em").unwrap();
        let a = s.generate(0.002, 11);
        let b = s.generate(0.002, 11);
        assert_eq!(rig_graph::to_text(&a), rig_graph::to_text(&b));
        let c = s.generate(0.002, 12);
        assert_ne!(rig_graph::to_text(&a), rig_graph::to_text(&c));
    }

    #[test]
    fn scale_free_has_heavier_tail_than_er() {
        let sf = scale_free(2000, 10_000, 5);
        let er = erdos_renyi(2000, 10_000, 5);
        let max_sf = (0..2000u32).map(|v| sf.in_degree(v)).max().unwrap();
        let max_er = (0..2000u32).map(|v| er.in_degree(v)).max().unwrap();
        assert!(max_sf > 2 * max_er, "scale-free max in-degree {max_sf} vs ER {max_er}");
    }
}
