//! Diagnostic types, the rustc-style text renderer and the JSON
//! exposition consumed by `rigmatch check --format json` / benchcheck.

use rig_query::Span;

/// How bad a finding is. `Error` diagnostics make strict lint mode (and
/// `rigmatch check`) fail; warnings and notes are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Note,
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// Stable lint codes, grouped by pass family (see `docs/analysis.md`):
/// `P` parse, `A` name resolution, `E1xx` emptiness proofs, `R2xx`
/// redundancy lints, `C3xx` cost findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Code {
    /// The query text failed to parse at all.
    Parse,
    /// A label name is not in the graph's dictionary.
    UnknownLabel,
    /// A numeric label id is outside the graph's label space.
    LabelOutOfRange,
    /// A variable's label has an empty inverted list.
    EmptyLabel,
    /// A direct edge between a label pair with zero co-occurring edges.
    NoLabelPairEdges,
    /// A reachability edge refuted by probing the candidate extremes
    /// against the reachability oracle.
    UnreachablePair,
    /// A reachability edge the engine's transitive reduction removes.
    RedundantReachEdge,
    /// A reachability edge duplicated by a parallel direct edge.
    SubsumedReachEdge,
    /// A variable constrained but never connected to the pattern.
    Disconnected,
    /// Informational cardinality / RIG-size estimates.
    CostEstimate,
    /// Informational factorized-DP conditioning summary.
    ConditioningWidth,
    /// The count path will route to worst-case enumeration.
    EnumerationRouting,
}

impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Parse => "P001",
            Code::UnknownLabel => "A001",
            Code::LabelOutOfRange => "A002",
            Code::EmptyLabel => "E101",
            Code::NoLabelPairEdges => "E102",
            Code::UnreachablePair => "E103",
            Code::RedundantReachEdge => "R201",
            Code::SubsumedReachEdge => "R202",
            Code::Disconnected => "R203",
            Code::CostEstimate => "C301",
            Code::ConditioningWidth => "C302",
            Code::EnumerationRouting => "C303",
        }
    }

    /// True for the emptiness-proof codes: a diagnostic with one of
    /// these is a *proof* the answer set is empty (the engine must
    /// count 0 — see the soundness proptests).
    pub fn proves_empty(self) -> bool {
        matches!(self, Code::EmptyLabel | Code::NoLabelPairEdges | Code::UnreachablePair)
    }
}

/// One analysis finding: a typed code, a severity, an optional source
/// span (absent for patterns that never had text, e.g. legacy query
/// files), the human message and an optional machine-readable
/// suggestion (the did-you-mean candidate).
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    pub span: Option<Span>,
    pub message: String,
    pub suggestion: Option<String>,
}

impl Diagnostic {
    pub fn new(code: Code, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, severity, span: None, message: message.into(), suggestion: None }
    }

    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    pub fn with_suggestion(mut self, s: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(s.into());
        self
    }
}

/// The result of one analysis run: every diagnostic the passes emitted
/// (source order within a pass, passes in resolution → emptiness →
/// redundancy → cost order) plus the original query text for rendering.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// The analyzed HPQL text, when the query came in as text.
    pub source: Option<String>,
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True iff any diagnostic is an error (strict mode refuses the
    /// query, `rigmatch check` exits 8).
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// True iff the query text failed to parse (the CLI maps this to
    /// the ordinary parse exit code, not the analysis one).
    pub fn is_parse_failure(&self) -> bool {
        self.diagnostics.iter().any(|d| d.code == Code::Parse)
    }

    /// True iff the analyzer *proved* the answer set empty.
    pub fn proven_empty(&self) -> bool {
        self.diagnostics.iter().any(|d| d.code.proves_empty())
    }

    /// `(errors, warnings, notes)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Note => c.2 += 1,
            }
        }
        c
    }

    /// Renders every diagnostic in the rustc style: a severity header
    /// with the lint code, then (when the query text and a span are
    /// available) the offending source line with a caret underline, then
    /// any suggestion as a `= help:` footer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("{}[{}]: {}\n", d.severity.as_str(), d.code.as_str(), d.message));
            if let (Some(span), Some(src)) = (d.span, self.source.as_deref()) {
                if let Some(text) = src.lines().nth(span.line.saturating_sub(1)) {
                    let n = span.line.to_string();
                    let pad = " ".repeat(n.len());
                    out.push_str(&format!("{pad}--> query:{}:{}\n", span.line, span.col));
                    out.push_str(&format!("{pad} |\n"));
                    out.push_str(&format!("{n} | {text}\n"));
                    let underline = " ".repeat(span.col.saturating_sub(1)) + &"^".repeat(span.len);
                    out.push_str(&format!("{pad} | {underline}\n"));
                }
            }
            if let Some(s) = &d.suggestion {
                out.push_str(&format!("  = help: did you mean '{s}'?\n"));
            }
        }
        out
    }

    /// One-line-per-finding summary (for `explain` inline output).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let at = match d.span {
                Some(s) => format!(" @ {}:{}", s.line, s.col),
                None => String::new(),
            };
            out.push_str(&format!(
                "  {}[{}]{}: {}\n",
                d.severity.as_str(),
                d.code.as_str(),
                at,
                d.message
            ));
        }
        out
    }

    /// The `analysis` JSON schema benchcheck validates: top-level
    /// metadata, severity counts and one object per diagnostic.
    pub fn to_json(&self) -> String {
        let (errors, warnings, notes) = self.counts();
        let mut out = String::from("{\n  \"analysis\": true,\n");
        match &self.source {
            Some(s) => out.push_str(&format!("  \"query\": \"{}\",\n", escape(s))),
            None => out.push_str("  \"query\": null,\n"),
        }
        out.push_str(&format!("  \"proven_empty\": {},\n", self.proven_empty()));
        out.push_str(&format!(
            "  \"errors\": {errors},\n  \"warnings\": {warnings},\n  \"notes\": {notes},\n"
        ));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"code\": \"{}\", ", d.code.as_str()));
            out.push_str(&format!("\"severity\": \"{}\", ", d.severity.as_str()));
            if let Some(s) = d.span {
                out.push_str(&format!(
                    "\"line\": {}, \"col\": {}, \"len\": {}, ",
                    s.line, s.col, s.len
                ));
            }
            if let Some(s) = &d.suggestion {
                out.push_str(&format!("\"suggestion\": \"{}\", ", escape(s)));
            }
            out.push_str(&format!("\"message\": \"{}\"}}", escape(&d.message)));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_flags() {
        let mut r = Report { source: Some("MATCH (a:X)".into()), ..Report::default() };
        assert!(!r.has_errors() && !r.proven_empty());
        r.diagnostics.push(Diagnostic::new(Code::EmptyLabel, Severity::Error, "empty"));
        r.diagnostics.push(Diagnostic::new(Code::CostEstimate, Severity::Note, "cost"));
        assert!(r.has_errors() && r.proven_empty() && !r.is_parse_failure());
        assert_eq!(r.counts(), (1, 0, 1));
    }

    #[test]
    fn render_underlines_the_span() {
        let r = Report {
            source: Some("MATCH (a:Autor)->(p:Paper)".into()),
            diagnostics: vec![Diagnostic::new(
                Code::UnknownLabel,
                Severity::Error,
                "unknown label name 'Autor' (variable 'a')",
            )
            .with_span(Span::new(1, 10, 5))
            .with_suggestion("Author")],
        };
        let text = r.render();
        let expected = "\
error[A001]: unknown label name 'Autor' (variable 'a')
 --> query:1:10
  |
1 | MATCH (a:Autor)->(p:Paper)
  |          ^^^^^
  = help: did you mean 'Author'?
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_escapes_and_counts() {
        let r = Report {
            source: Some("MATCH \"x\"".into()),
            diagnostics: vec![Diagnostic::new(Code::Parse, Severity::Error, "bad \"quote\"")
                .with_span(Span::new(1, 7, 3))],
        };
        let json = r.to_json();
        assert!(json.contains("\"analysis\": true"), "{json}");
        assert!(json.contains("\"query\": \"MATCH \\\"x\\\"\""), "{json}");
        assert!(json.contains("\"code\": \"P001\""), "{json}");
        assert!(json.contains("\"line\": 1, \"col\": 7, \"len\": 3"), "{json}");
        assert!(json.contains("\"errors\": 1"), "{json}");
    }
}
