//! `rig_analyze` — static analysis of hybrid pattern queries.
//!
//! A multi-pass analyzer that inspects a parsed [`HpqlQuery`] /
//! [`PatternQuery`] against a [`GraphView`]'s cheap statistics and
//! produces typed, span-carrying [`Diagnostic`]s — **without ever
//! executing the query**. Four pass families:
//!
//! 1. **Name resolution** (`A…`): unknown label names with did-you-mean
//!    suggestions (edit distance over the graph's label dictionary,
//!    shared with `Session::prepare` via [`rig_query::closest_label`]),
//!    and numeric label ids outside the graph's label space.
//! 2. **Emptiness proofs** (`E1…`): a label with an empty inverted list;
//!    a `Direct` edge between a label pair with zero co-occurring edges
//!    (the [`LabelPairCounts`] matrix, delta-overlay-aware); a
//!    `Reachability` edge refuted by probing every candidate pair
//!    against the reachability oracle when the candidate extremes are
//!    small enough to afford it. Every `E1…` finding is a *proof*: the
//!    engine must count zero (asserted by the soundness proptests).
//! 3. **Redundancy lints** (`R2…`): reachability edges the engine's own
//!    transitive reduction removes (witnessed by diffing against
//!    [`rig_query::transitive_reduction`], not recomputed), reachability
//!    constraints duplicated by a parallel direct edge, and variables
//!    constrained but never connected to the rest of the pattern.
//! 4. **Cost warnings** (`C3…`): per-edge cardinality estimates and the
//!    predicted RIG size from the label statistics, the factorized-DP
//!    conditioning width for cyclic queries (mirroring
//!    `Factorization::estimated_work` with inverted-list upper bounds),
//!    and a warning when the count path will route to worst-case
//!    enumeration.
//!
//! The output [`Report`] renders rustc-style caret diagnostics
//! ([`Report::render`]) and the `analysis` JSON schema
//! ([`Report::to_json`]) that `rigmatch check --format json` emits and
//! benchcheck validates. See `docs/analysis.md` for the lint-code table.

mod diag;

pub use diag::{Code, Diagnostic, Report, Severity};
pub use rig_query::Span;

use rig_graph::{GraphView, Label, LabelPairCounts};
use rig_mjoin::factorized::FactorizationShape;
use rig_query::hpql::LabelSpec;
use rig_query::{
    closest_label, parse_hpql, transitive_reduction, EdgeKind, HpqlError, HpqlQuery, PatternQuery,
};
use rig_reach::Reachability;

/// Tunables for the emptiness and cost passes.
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Conditioning-work budget above which a cyclic query is predicted
    /// to route to worst-case enumeration (mirrors
    /// `rig_core::factorized::DP_CONDITIONING_LIMIT`).
    pub dp_conditioning_limit: u64,
    /// Maximum number of `(source, target)` candidate pairs the
    /// reachability-refutation pass probes per edge; larger candidate
    /// products are left unproven rather than paying for exhaustive
    /// probing.
    pub reach_probe_budget: u64,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig { dp_conditioning_limit: 1 << 18, reach_probe_budget: 4096 }
    }
}

/// The analyzer: a graph view, optional precomputed statistics and an
/// optional reachability oracle. All borrowed — building one is free;
/// the expensive inputs ([`LabelPairCounts`], a BFL index) are supplied
/// by the caller so they can be cached across queries (the session layer
/// caches both per store version).
pub struct Analyzer<'a> {
    view: GraphView<'a>,
    reach: Option<&'a dyn Reachability>,
    pairs: Option<&'a LabelPairCounts>,
    config: AnalyzerConfig,
}

impl<'a> Analyzer<'a> {
    pub fn new(view: GraphView<'a>) -> Analyzer<'a> {
        Analyzer { view, reach: None, pairs: None, config: AnalyzerConfig::default() }
    }

    /// Supplies a reachability oracle for the `E103` refutation pass.
    /// The oracle must be exact for `view` (BFL on a clean base,
    /// overlay-aware reachability on a dirty snapshot) — refutations
    /// become emptiness *proofs*. Without one the pass is skipped.
    pub fn with_reach(mut self, reach: &'a dyn Reachability) -> Analyzer<'a> {
        self.reach = Some(reach);
        self
    }

    /// Supplies a precomputed label-pair matrix (otherwise one is built
    /// per [`Analyzer::analyze_text`] call, an `O(|V| + |E|)` scan).
    pub fn with_pair_counts(mut self, pairs: &'a LabelPairCounts) -> Analyzer<'a> {
        self.pairs = Some(pairs);
        self
    }

    pub fn with_config(mut self, config: AnalyzerConfig) -> Analyzer<'a> {
        self.config = config;
        self
    }

    /// Analyzes HPQL text. Parse failures come back as a `P001`
    /// diagnostic (span-carrying) rather than an `Err`, so `check` can
    /// render them the same way.
    pub fn analyze_text(&self, text: &str) -> Report {
        let mut report = Report { source: Some(text.to_string()), diagnostics: Vec::new() };
        let ast = match parse_hpql(text) {
            Ok(ast) => ast,
            Err(e) => {
                report.diagnostics.push(parse_diagnostic(&e));
                return report;
            }
        };
        self.analyze_ast_into(&ast, &mut report);
        report
    }

    /// Analyzes a parsed AST (spans available, labels not yet resolved).
    pub fn analyze_ast(&self, ast: &HpqlQuery, source: Option<&str>) -> Report {
        let mut report = Report { source: source.map(str::to_string), diagnostics: Vec::new() };
        self.analyze_ast_into(ast, &mut report);
        report
    }

    /// Analyzes an already-resolved pattern (no source spans — legacy
    /// query files, programmatic patterns). The resolution pass reduces
    /// to the label-space check; the other passes run in full.
    pub fn analyze_pattern(&self, q: &PatternQuery, vars: Option<&[String]>) -> Report {
        let mut report = Report::default();
        let n = q.num_nodes();
        let ctx = Ctx {
            q: q.clone(),
            vars: (0..n)
                .map(|i| match vars.and_then(|v| v.get(i)) {
                    Some(name) => name.clone(),
                    None => format!("v{i}"),
                })
                .collect(),
            node_spans: vec![None; n],
            label_spans: vec![None; n],
            edge_spans: vec![None; q.num_edges()],
        };
        self.resolution_pass_pattern(&ctx, &mut report);
        if !report.has_errors() {
            self.structural_passes(&ctx, &mut report);
        }
        report
    }

    fn analyze_ast_into(&self, ast: &HpqlQuery, report: &mut Report) {
        // pass 1: name resolution over the AST, with suggestions
        let dictionary: Vec<&str> = (0..self.view.num_labels() as Label)
            .map(|l| self.view.label_name(l))
            .filter(|n| !n.is_empty())
            .collect();
        let mut labels: Vec<Option<Label>> = Vec::with_capacity(ast.num_nodes());
        for (i, spec) in ast.labels().iter().enumerate() {
            match spec {
                LabelSpec::Name(name) => match self.view.label_id(name) {
                    Some(l) => labels.push(Some(l)),
                    None => {
                        let mut d = Diagnostic::new(
                            Code::UnknownLabel,
                            Severity::Error,
                            format!(
                                "unknown label name '{name}' (variable '{}'): \
                                 not in the graph's label dictionary",
                                ast.vars()[i]
                            ),
                        )
                        .with_span(ast.label_span(i));
                        if let Some(s) = closest_label(name, dictionary.iter().copied()) {
                            d = d.with_suggestion(s);
                        }
                        report.diagnostics.push(d);
                        labels.push(None);
                    }
                },
                LabelSpec::Id(id) => {
                    if (*id as usize) >= self.view.num_labels() {
                        report.diagnostics.push(
                            Diagnostic::new(
                                Code::LabelOutOfRange,
                                Severity::Error,
                                format!(
                                    "label id {id} (variable '{}') is outside the graph's \
                                     label space of {} labels",
                                    ast.vars()[i],
                                    self.view.num_labels()
                                ),
                            )
                            .with_span(ast.label_span(i)),
                        );
                        labels.push(None);
                    } else {
                        labels.push(Some(*id));
                    }
                }
            }
        }
        let Some(labels) = labels.into_iter().collect::<Option<Vec<Label>>>() else {
            return; // unresolved labels: the later passes have nothing sound to say
        };
        let mut q = PatternQuery::new(labels);
        for &(f, t, kind) in ast.edges() {
            if q.try_add_edge(f, t, kind).is_err() {
                // the parser already rejects duplicates and self-loops;
                // a malformed hand-built AST is not analyzable further
                return;
            }
        }
        let n = ast.num_nodes();
        let ctx = Ctx {
            q,
            vars: ast.vars().to_vec(),
            node_spans: (0..n).map(|i| Some(ast.node_span(i))).collect(),
            label_spans: (0..n).map(|i| Some(ast.label_span(i))).collect(),
            edge_spans: (0..ast.edges().len()).map(|e| Some(ast.edge_span(e))).collect(),
        };
        self.structural_passes(&ctx, report);
    }

    /// Pass 1 for span-less patterns: the label-space check only.
    fn resolution_pass_pattern(&self, ctx: &Ctx, report: &mut Report) {
        for i in 0..ctx.q.num_nodes() {
            let l = ctx.q.label(i as u32);
            if (l as usize) >= self.view.num_labels() {
                report.diagnostics.push(Diagnostic::new(
                    Code::LabelOutOfRange,
                    Severity::Error,
                    format!(
                        "label id {l} (variable '{}') is outside the graph's label space \
                         of {} labels",
                        ctx.vars[i],
                        self.view.num_labels()
                    ),
                ));
            }
        }
    }

    /// Passes 2–4 over a resolved pattern.
    fn structural_passes(&self, ctx: &Ctx, report: &mut Report) {
        let owned_pairs;
        let pairs = match self.pairs {
            Some(p) => p,
            None => {
                owned_pairs = LabelPairCounts::of(self.view);
                &owned_pairs
            }
        };
        self.emptiness_pass(ctx, pairs, report);
        self.redundancy_pass(ctx, report);
        self.cost_pass(ctx, pairs, report);
    }

    // -- pass 2: emptiness proofs ---------------------------------------

    fn emptiness_pass(&self, ctx: &Ctx, pairs: &LabelPairCounts, report: &mut Report) {
        let q = &ctx.q;
        // E101: empty inverted list
        for i in 0..q.num_nodes() {
            let l = q.label(i as u32);
            if self.view.nodes_with_label(l).is_empty() {
                report.diagnostics.push(
                    Diagnostic::new(
                        Code::EmptyLabel,
                        Severity::Error,
                        format!(
                            "label {} has no nodes in the graph: variable '{}' can never \
                             bind, the answer is provably empty",
                            ctx.label_display(self.view, i),
                            ctx.vars[i]
                        ),
                    )
                    .maybe_span(ctx.label_spans[i]),
                );
            }
        }
        for e in 0..q.num_edges() {
            let pe = q.edge(e as u32);
            let (lf, lt) = (q.label(pe.from), q.label(pe.to));
            match pe.kind {
                // E102: zero co-occurring edges for the label pair
                EdgeKind::Direct => {
                    if pairs.count(lf, lt) == 0 {
                        report.diagnostics.push(
                            Diagnostic::new(
                                Code::NoLabelPairEdges,
                                Severity::Error,
                                format!(
                                    "no {} → {} edges exist in the graph: direct edge \
                                     ({})->({}) can never match, the answer is provably empty",
                                    ctx.label_display(self.view, pe.from as usize),
                                    ctx.label_display(self.view, pe.to as usize),
                                    ctx.vars[pe.from as usize],
                                    ctx.vars[pe.to as usize]
                                ),
                            )
                            .maybe_span(ctx.edge_spans[e]),
                        );
                    }
                }
                // E103: bounded refutation against the reachability oracle
                EdgeKind::Reachability => {
                    let Some(reach) = self.reach else { continue };
                    let from = self.view.nodes_with_label(lf);
                    let to = self.view.nodes_with_label(lt);
                    if from.is_empty() || to.is_empty() {
                        continue; // E101 already proves emptiness
                    }
                    let pairs_to_probe = from.len() as u64 * to.len() as u64;
                    if pairs_to_probe > self.config.reach_probe_budget {
                        continue; // extremes too wide to probe, no claim
                    }
                    let any = from.iter().any(|&u| to.iter().any(|&v| reach.reaches(u, v)));
                    if !any {
                        report.diagnostics.push(
                            Diagnostic::new(
                                Code::UnreachablePair,
                                Severity::Error,
                                format!(
                                    "no {} node reaches any {} node (all {} candidate pairs \
                                     refuted): reachability edge ({})=>({}) can never match, \
                                     the answer is provably empty",
                                    ctx.label_display(self.view, pe.from as usize),
                                    ctx.label_display(self.view, pe.to as usize),
                                    pairs_to_probe,
                                    ctx.vars[pe.from as usize],
                                    ctx.vars[pe.to as usize]
                                ),
                            )
                            .maybe_span(ctx.edge_spans[e]),
                        );
                    }
                }
            }
        }
    }

    // -- pass 3: redundancy lints ---------------------------------------

    fn redundancy_pass(&self, ctx: &Ctx, report: &mut Report) {
        let q = &ctx.q;
        // witness the engine's transitive reduction: any edge of q that
        // is absent from the reduced pattern is planned away
        let reduced = transitive_reduction(q);
        if reduced.num_edges() < q.num_edges() {
            let mut kept = vec![false; q.num_edges()];
            for e in 0..reduced.num_edges() {
                let re = reduced.edge(e as u32);
                if let Some(slot) = (0..q.num_edges()).find(|&i| {
                    !kept[i] && {
                        let qe = q.edge(i as u32);
                        (qe.from, qe.to, qe.kind) == (re.from, re.to, re.kind)
                    }
                }) {
                    kept[slot] = true;
                }
            }
            for (e, kept) in kept.iter().enumerate() {
                if *kept {
                    continue;
                }
                let pe = q.edge(e as u32);
                let (f, t) = (pe.from as usize, pe.to as usize);
                let parallel_direct = (0..q.num_edges()).any(|i| {
                    let qe = q.edge(i as u32);
                    (qe.from, qe.to, qe.kind) == (pe.from, pe.to, EdgeKind::Direct) && i != e
                });
                let d = if parallel_direct {
                    Diagnostic::new(
                        Code::SubsumedReachEdge,
                        Severity::Warning,
                        format!(
                            "reachability edge ({})=>({}) duplicates the direct edge \
                             ({})->({}): every edge is a path, the constraint is redundant",
                            ctx.vars[f], ctx.vars[t], ctx.vars[f], ctx.vars[t]
                        ),
                    )
                } else {
                    Diagnostic::new(
                        Code::RedundantReachEdge,
                        Severity::Warning,
                        format!(
                            "reachability edge ({})=>({}) is implied by the rest of the \
                             pattern; transitive reduction removes it before planning",
                            ctx.vars[f], ctx.vars[t]
                        ),
                    )
                };
                report.diagnostics.push(d.maybe_span(ctx.edge_spans[e]));
            }
        }
        // R203: constrained but never connected
        if q.num_nodes() > 1 && !q.is_connected() {
            // report one representative per stray component: every node
            // unreachable (undirected) from node 0
            let mut seen = vec![false; q.num_nodes()];
            let mut stack = vec![0u32];
            seen[0] = true;
            while let Some(u) = stack.pop() {
                for (v, _, _) in q.neighbors(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        stack.push(v);
                    }
                }
            }
            for (i, seen) in seen.iter().enumerate() {
                if !seen {
                    report.diagnostics.push(
                        Diagnostic::new(
                            Code::Disconnected,
                            Severity::Error,
                            format!(
                                "variable '{}' is constrained but never connected to the \
                                 rest of the pattern; the engine rejects disconnected queries",
                                ctx.vars[i]
                            ),
                        )
                        .maybe_span(ctx.node_spans[i]),
                    );
                }
            }
        }
    }

    // -- pass 4: cost warnings ------------------------------------------

    fn cost_pass(&self, ctx: &Ctx, pairs: &LabelPairCounts, report: &mut Report) {
        let q = &ctx.q;
        let inv = |i: usize| self.view.nodes_with_label(q.label(i as u32)).len() as u64;
        // predicted RIG size: one candidate array per variable, each at
        // most the label's inverted list
        let rig_size: u64 = (0..q.num_nodes()).map(inv).sum();
        let mut edge_ests: Vec<String> = Vec::with_capacity(q.num_edges());
        for e in 0..q.num_edges() {
            let pe = q.edge(e as u32);
            let (f, t) = (pe.from as usize, pe.to as usize);
            match pe.kind {
                EdgeKind::Direct => edge_ests.push(format!(
                    "({})->({}) ≈ {}",
                    ctx.vars[f],
                    ctx.vars[t],
                    pairs.count(q.label(pe.from), q.label(pe.to))
                )),
                EdgeKind::Reachability => edge_ests.push(format!(
                    "({})=>({}) ≤ {}",
                    ctx.vars[f],
                    ctx.vars[t],
                    inv(f).saturating_mul(inv(t))
                )),
            }
        }
        report.diagnostics.push(Diagnostic::new(
            Code::CostEstimate,
            Severity::Note,
            format!(
                "predicted RIG size ≤ {rig_size} candidates; per-edge cardinality \
                 estimates: {}",
                if edge_ests.is_empty() {
                    "none (edge-free pattern)".into()
                } else {
                    edge_ests.join(", ")
                }
            ),
        ));
        // factorized-DP conditioning width (static mirror of
        // Factorization::estimated_work, with inverted lists standing in
        // for the pruned candidate arrays)
        let shape = FactorizationShape::analyze(q);
        if shape.is_tree() {
            return; // tree queries always take the linear DP
        }
        let mut width = 1u64;
        for &c in &shape.conditioned {
            width = width.saturating_mul(inv(c as usize).max(1));
        }
        let cond_vars: Vec<&str> =
            shape.conditioned.iter().map(|&c| ctx.vars[c as usize].as_str()).collect();
        if width > self.config.dp_conditioning_limit {
            report.diagnostics.push(Diagnostic::new(
                Code::EnumerationRouting,
                Severity::Warning,
                format!(
                    "cyclic pattern conditions on {{{}}} with predicted width {width} \
                     (limit {}): counting will route to worst-case enumeration",
                    cond_vars.join(", "),
                    self.config.dp_conditioning_limit
                ),
            ));
        } else {
            report.diagnostics.push(Diagnostic::new(
                Code::ConditioningWidth,
                Severity::Note,
                format!(
                    "cyclic pattern: factorized DP conditions on {{{}}}, predicted \
                     width ≤ {width}",
                    cond_vars.join(", ")
                ),
            ));
        }
    }
}

/// Resolved pattern plus presentation context (variable names and
/// optional source spans, parallel to pattern node/edge ids).
struct Ctx {
    q: PatternQuery,
    vars: Vec<String>,
    node_spans: Vec<Option<Span>>,
    label_spans: Vec<Option<Span>>,
    edge_spans: Vec<Option<Span>>,
}

impl Ctx {
    /// `'Name'` when the label is named, `id N` otherwise.
    fn label_display(&self, view: GraphView<'_>, node: usize) -> String {
        let l = self.q.label(node as u32);
        let name = view.label_name(l);
        if name.is_empty() {
            format!("label id {l}")
        } else {
            format!("'{name}'")
        }
    }
}

fn parse_diagnostic(e: &HpqlError) -> Diagnostic {
    Diagnostic::new(Code::Parse, Severity::Error, e.message.clone()).with_span(e.span())
}

trait MaybeSpan {
    fn maybe_span(self, span: Option<Span>) -> Self;
}

impl MaybeSpan for Diagnostic {
    fn maybe_span(mut self, span: Option<Span>) -> Diagnostic {
        self.span = span;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::{DataGraph, GraphBuilder};
    use rig_reach::BflIndex;

    /// Author(0) -> Paper(1) -> Paper(2) -> Cited(3); label 'Ghost' (id 4)
    /// has no nodes; no edge ever enters an Author node.
    fn graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_name(0, "Author");
        let p1 = b.add_node_with_name(1, "Paper");
        let p2 = b.add_node_with_name(1, "Paper");
        let c = b.add_node_with_name(2, "Cited");
        b.set_label_name(3, "Ghost");
        b.add_edge(a, p1);
        b.add_edge(p1, p2);
        b.add_edge(p2, c);
        b.build()
    }

    fn analyze(text: &str) -> Report {
        let g = graph();
        let bfl = BflIndex::new(&g);
        Analyzer::new(GraphView::from(&g)).with_reach(&bfl).analyze_text(text)
    }

    #[test]
    fn clean_query_yields_only_cost_notes() {
        let r = analyze("MATCH (a:Author)->(p:Paper)=>(c:Cited)");
        assert!(!r.has_errors(), "{:?}", r.diagnostics);
        assert!(!r.proven_empty());
        assert!(r.diagnostics.iter().any(|d| d.code == Code::CostEstimate));
    }

    #[test]
    fn unknown_label_gets_a_suggestion() {
        let r = analyze("MATCH (a:Autor)->(p:Paper)");
        let d = &r.diagnostics[0];
        assert_eq!(d.code, Code::UnknownLabel);
        assert_eq!(d.suggestion.as_deref(), Some("Author"));
        assert!(d.span.is_some());
        assert!(r.has_errors() && !r.proven_empty());
    }

    #[test]
    fn empty_label_is_proven_empty() {
        let r = analyze("MATCH (a:Author)->(g:Ghost)");
        assert!(r.proven_empty());
        assert!(r.diagnostics.iter().any(|d| d.code == Code::EmptyLabel));
    }

    #[test]
    fn zero_pair_count_refutes_direct_edges() {
        let r = analyze("MATCH (p:Paper)->(a:Author)");
        assert!(r.proven_empty(), "{:?}", r.diagnostics);
        assert!(r.diagnostics.iter().any(|d| d.code == Code::NoLabelPairEdges));
    }

    #[test]
    fn bfl_refutes_impossible_reachability() {
        // nothing reaches an Author node
        let r = analyze("MATCH (c:Cited)=>(a:Author)");
        assert!(r.proven_empty(), "{:?}", r.diagnostics);
        assert!(r.diagnostics.iter().any(|d| d.code == Code::UnreachablePair));
        // without an oracle the pass stays silent
        let g = graph();
        let r = Analyzer::new(GraphView::from(&g)).analyze_text("MATCH (c:Cited)=>(a:Author)");
        assert!(!r.proven_empty());
    }

    #[test]
    fn redundant_and_subsumed_reach_edges_warn() {
        let r = analyze("MATCH (a:Author)->(p:Paper)=>(c:Cited), (a)=>(c)");
        assert!(
            r.diagnostics.iter().any(|d| d.code == Code::RedundantReachEdge),
            "{:?}",
            r.diagnostics
        );
        let r = analyze("MATCH (a:Author)->(p:Paper), (a)=>(p)");
        assert!(
            r.diagnostics.iter().any(|d| d.code == Code::SubsumedReachEdge),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn disconnected_variables_error() {
        let r = analyze("MATCH (a:Author)->(p:Paper), (x:Cited)->(y:Cited)");
        // x→y is a separate component (and Cited→Cited has no edges, so
        // the emptiness pass fires too); the R203 must name a stray var
        let d = r.diagnostics.iter().find(|d| d.code == Code::Disconnected).unwrap();
        assert!(d.message.contains("'x'") || d.message.contains("'y'"), "{}", d.message);
    }

    #[test]
    fn cyclic_queries_report_conditioning() {
        let r = analyze("MATCH (a:Author)->(p:Paper)=>(c:Cited), (a)->(c)");
        assert!(
            r.diagnostics
                .iter()
                .any(|d| matches!(d.code, Code::ConditioningWidth | Code::EnumerationRouting)),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn enumeration_routing_warns_past_the_limit() {
        let g = graph();
        let bfl = BflIndex::new(&g);
        let cfg = AnalyzerConfig { dp_conditioning_limit: 0, ..AnalyzerConfig::default() };
        let r = Analyzer::new(GraphView::from(&g))
            .with_reach(&bfl)
            .with_config(cfg)
            .analyze_text("MATCH (a:Author)->(p:Paper)=>(c:Cited), (a)->(c)");
        assert!(r.diagnostics.iter().any(|d| d.code == Code::EnumerationRouting));
    }

    #[test]
    fn pattern_analysis_works_without_spans() {
        let g = graph();
        // Paper -> Author: provably empty
        let mut q = PatternQuery::new(vec![1, 0]);
        q.try_add_edge(0, 1, EdgeKind::Direct).unwrap();
        let r = Analyzer::new(GraphView::from(&g)).analyze_pattern(&q, None);
        assert!(r.proven_empty(), "{:?}", r.diagnostics);
        assert!(r.diagnostics.iter().all(|d| d.span.is_none()));
        // out-of-range label id
        let q = PatternQuery::new(vec![9]);
        let r = Analyzer::new(GraphView::from(&g)).analyze_pattern(&q, None);
        assert!(r.diagnostics.iter().any(|d| d.code == Code::LabelOutOfRange));
    }

    #[test]
    fn parse_failures_become_p001() {
        let r = analyze("MATCH (a:Author");
        assert!(r.is_parse_failure() && r.has_errors());
        assert!(r.diagnostics[0].span.is_some());
    }
}
