//! Morsel-driven parallel MJoin (§6 future work: "exploit [bitmap
//! chunking] to design a parallel graph pattern evaluation algorithm that
//! works with multiple threads").
//!
//! Strategy (see `docs/parallel.md` for the full protocol): the candidate
//! array of the *first* search-order node is a single shared work queue.
//! Workers claim fixed-size **morsels** `[lo, lo + morsel)` of that range
//! with one `fetch_add` on an atomic cursor and run the ordinary
//! allocation-free backtracking search under each claimed root binding.
//! There is no static partitioning and therefore no slice imbalance: a
//! worker that lands on cheap roots simply claims more morsels
//! (work-stealing degenerates to cursor contention). The RIG is immutable
//! and shared by reference; each worker owns its per-depth scratch and its
//! [`ResultSink`], so the emit path takes no locks.
//!
//! Unlike the earlier static-partition driver, `limit` and `timeout` are
//! honored **under parallelism**: matches are reserved on a shared atomic
//! counter (exactly `limit` matches are emitted across all workers, and
//! `limit_hit` survives the merge), and a shared deadline + stop flag
//! terminates every worker within one recursion step.

use std::sync::atomic::Ordering;

use crate::sink::{CollectSink, CountSink, ResultSink};
use crate::{count, EnumOptions, EnumResult, Plan, SharedState, Worker};
use rig_graph::NodeId;
use rig_index::Rig;
use rig_query::PatternQuery;

/// Default morsel size: big enough to amortize a cache-hot `fetch_add`,
/// small enough to balance skewed root bindings.
pub const DEFAULT_MORSEL: usize = 64;

/// Parallel-execution options.
#[derive(Debug, Clone, Copy)]
pub struct ParOptions {
    /// Worker threads. `0` and `1` both mean one worker.
    pub threads: usize,
    /// Root-range positions claimed per cursor bump (clamped to >= 1).
    pub morsel: usize,
}

impl Default for ParOptions {
    fn default() -> Self {
        ParOptions {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            morsel: DEFAULT_MORSEL,
        }
    }
}

impl ParOptions {
    /// `threads` workers with the default morsel size.
    pub fn with_threads(threads: usize) -> Self {
        ParOptions { threads, morsel: DEFAULT_MORSEL }
    }
}

/// Counts occurrences with `threads` worker threads (default morsel size).
/// `limit` and `timeout` are enforced across workers — no sequential
/// fallback. `threads <= 1` runs the sequential [`count`] directly.
pub fn par_count(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    threads: usize,
) -> EnumResult {
    par_count_with(query, rig, opts, &ParOptions::with_threads(threads))
}

/// [`par_count`] with explicit [`ParOptions`].
pub fn par_count_with(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    par: &ParOptions,
) -> EnumResult {
    if par.threads <= 1 {
        return count(query, rig, opts);
    }
    let (sinks, result) = par_enumerate(query, rig, opts, par, |_| CountSink::default());
    debug_assert_eq!(result.count, sinks.iter().map(|s| s.count).sum::<u64>());
    result
}

/// Enumerates in parallel, streaming matches into **per-worker sinks**
/// (`make_sink(worker_index)` builds one sink per worker; no locking on
/// the emit path). Returns the sinks — in worker-index order — plus the
/// merged [`EnumResult`]. Which worker sees which match is
/// scheduling-dependent, but without a `limit` the *multiset* of matches
/// across all sinks is exactly the sequential answer, for every thread
/// count and morsel size (see [`par_collect_sorted`] for a deterministic
/// ordering).
pub fn par_enumerate<S, F>(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    par: &ParOptions,
    make_sink: F,
) -> (Vec<S>, EnumResult)
where
    S: ResultSink + Send,
    F: Fn(usize) -> S + Sync,
{
    let threads = par.threads.max(1);
    let morsel = par.morsel.max(1);
    let plan = Plan::new(query, rig, opts.order);
    let mut merged = EnumResult::empty(plan.order.clone());
    if rig.is_empty() || query.num_nodes() == 0 {
        let sinks = (0..threads)
            .map(|w| {
                let mut s = make_sink(w);
                s.finish();
                s
            })
            .collect();
        return (sinks, merged);
    }

    let shared = SharedState::new(opts);
    let (plan_ref, shared_ref, make_sink_ref) = (&plan, &shared, &make_sink);
    let worker_outputs: Vec<(S, EnumResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let mut sink = make_sink_ref(w);
                    let mut worker = Worker::new(rig, opts, plan_ref, Some(shared_ref));
                    worker.run_morsels(&mut sink, morsel);
                    (sink, worker.result)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("mjoin worker panicked")).collect()
    });

    let mut sinks = Vec::with_capacity(threads);
    for (sink, r) in worker_outputs {
        merged.merge(&r);
        sinks.push(sink);
    }
    merged.timed_out |= shared.timed_out.load(Ordering::Relaxed);
    merged.limit_hit |= shared.limit_hit.load(Ordering::Relaxed);
    (sinks, merged)
}

/// Parallel enumeration with a **deterministic** result: collects every
/// worker's matches and returns them sorted, so the output is
/// byte-identical for every thread count and morsel size (as long as no
/// `limit` truncates the answer — which k matches survive a limit is
/// inherently scheduling-dependent).
pub fn par_collect_sorted(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    par: &ParOptions,
) -> (Vec<Vec<NodeId>>, EnumResult) {
    let (sinks, result) = par_enumerate(query, rig, opts, par, |_| CollectSink::default());
    let mut tuples: Vec<Vec<NodeId>> = sinks.into_iter().flat_map(|s| s.tuples).collect();
    tuples.sort_unstable();
    (tuples, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnumOptions;
    use rig_graph::GraphBuilder;
    use rig_index::{build_rig, RigOptions};
    use rig_query::{EdgeKind, PatternQuery};
    use rig_reach::BflIndex;
    use rig_sim::SimContext;

    fn random_setup(seed: u64) -> (rig_graph::DataGraph, PatternQuery) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 120;
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(rng.gen_range(0..3));
        }
        for _ in 0..400 {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Reachability);
        (g, q)
    }

    #[test]
    fn parallel_count_equals_sequential() {
        for seed in 0..5u64 {
            let (g, q) = random_setup(seed);
            let bfl = BflIndex::new(&g);
            let ctx = SimContext::new(&g, &q, &bfl);
            let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
            let seq = count(&q, &rig, &EnumOptions::default());
            for threads in [2usize, 4, 8] {
                let par = par_count(&q, &rig, &EnumOptions::default(), threads);
                assert_eq!(par.count, seq.count, "seed={seed} threads={threads}");
                assert!(!par.timed_out && !par.limit_hit);
            }
        }
    }

    /// Limits no longer force a sequential fallback: the shared reservation
    /// counter caps emission at exactly `limit` across workers and the
    /// merged result reports `limit_hit`.
    #[test]
    fn limit_honored_under_parallelism() {
        let (g, q) = random_setup(0);
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
        let opts = EnumOptions { limit: Some(3), ..Default::default() };
        let r = par_count(&q, &rig, &opts, 4);
        assert_eq!(r.count, 3);
        assert!(r.limit_hit);
        // the emitted tuples themselves are also capped at the limit
        let (sinks, r2) = par_enumerate(&q, &rig, &opts, &ParOptions::with_threads(4), |_| {
            CollectSink::default()
        });
        assert_eq!(sinks.iter().map(|s| s.tuples.len()).sum::<usize>(), 3);
        assert!(r2.limit_hit);
    }

    #[test]
    fn single_thread_is_sequential() {
        let (g, q) = random_setup(1);
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
        let a = par_count(&q, &rig, &EnumOptions::default(), 1);
        let b = count(&q, &rig, &EnumOptions::default());
        assert_eq!(a.count, b.count);
    }

    #[test]
    fn sorted_collection_matches_sequential_answer() {
        let (g, q) = random_setup(2);
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
        let (mut seq, _) = crate::collect(&q, &rig, &EnumOptions::default(), usize::MAX);
        seq.sort_unstable();
        let (par, r) = par_collect_sorted(
            &q,
            &rig,
            &EnumOptions::default(),
            &ParOptions { threads: 3, morsel: 2 },
        );
        assert_eq!(par, seq);
        assert_eq!(r.count as usize, seq.len());
    }

    /// A sink that asks to stop stops every worker (cooperative early
    /// termination without setting `limit_hit`).
    #[test]
    fn sink_stop_propagates_to_all_workers() {
        let (g, q) = random_setup(3);
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
        let seq = count(&q, &rig, &EnumOptions::default());
        assert!(seq.count > 8, "workload must be non-trivial");
        let (sinks, r) = par_enumerate(
            &q,
            &rig,
            &EnumOptions::default(),
            &ParOptions { threads: 4, morsel: 1 },
            |_| crate::FirstKSink::new(2),
        );
        let kept: usize = sinks.iter().map(|s| s.tuples.len()).sum();
        assert!(kept >= 2, "at least one worker filled its sink");
        assert!(r.count < seq.count, "early stop must prune the run");
        assert!(!r.limit_hit, "sink stop is not a limit");
    }
}
