//! Parallel MJoin (§6 future work: "exploit [bitmap chunking] to design a
//! parallel graph pattern evaluation algorithm that works with multiple
//! threads").
//!
//! Strategy: partition the candidate set of the *first* search-order node
//! into `threads` slices; each worker runs the ordinary sequential
//! backtracking search rooted at its slice. The RIG is immutable and
//! shared by reference; no synchronization is needed beyond the final sum.
//! Because the first node's bindings partition the answer space, the
//! per-worker counts sum exactly to the sequential count.

use crate::{compute_order, count, enumerate_restricted, EnumOptions, EnumResult};
use rig_bitset::Bitset;
use rig_index::Rig;
use rig_query::PatternQuery;

/// Counts occurrences with `threads` worker threads. Falls back to the
/// sequential [`count`] when a match limit is set (a global limit would
/// need cross-thread coordination that would serialize the workers) or
/// when parallelism cannot help (`threads <= 1`, tiny candidate sets).
pub fn par_count(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    threads: usize,
) -> EnumResult {
    if threads <= 1 || opts.limit.is_some() || rig.is_empty() || query.num_nodes() == 0 {
        return count(query, rig, opts);
    }
    let order = compute_order(query, rig, opts.order);
    let root = order[0];
    // The RIG's sorted candidate array partitions directly — no bitmap
    // decode needed to slice the root's binding space.
    let root_values: &[u32] = rig.candidates(root as usize);
    if root_values.len() < threads * 2 {
        return count(query, rig, opts);
    }
    let chunk = root_values.len().div_ceil(threads);
    let slices: Vec<Bitset> = root_values.chunks(chunk).map(Bitset::from_sorted_dedup).collect();

    let results: Vec<EnumResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = slices
            .iter()
            .map(|slice| {
                scope.spawn(move || enumerate_restricted(query, rig, opts, slice, |_| true))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut merged = EnumResult { count: 0, timed_out: false, limit_hit: false, order, steps: 0 };
    for r in results {
        merged.count += r.count;
        merged.steps += r.steps;
        merged.timed_out |= r.timed_out;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnumOptions;
    use rig_graph::GraphBuilder;
    use rig_index::{build_rig, RigOptions};
    use rig_query::{EdgeKind, PatternQuery};
    use rig_reach::BflIndex;
    use rig_sim::SimContext;

    fn random_setup(seed: u64) -> (rig_graph::DataGraph, PatternQuery) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 120;
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(rng.gen_range(0..3));
        }
        for _ in 0..400 {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Reachability);
        (g, q)
    }

    #[test]
    fn parallel_count_equals_sequential() {
        for seed in 0..5u64 {
            let (g, q) = random_setup(seed);
            let bfl = BflIndex::new(&g);
            let ctx = SimContext::new(&g, &q, &bfl);
            let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
            let seq = count(&q, &rig, &EnumOptions::default());
            for threads in [2usize, 4, 8] {
                let par = par_count(&q, &rig, &EnumOptions::default(), threads);
                assert_eq!(par.count, seq.count, "seed={seed} threads={threads}");
            }
        }
    }

    #[test]
    fn limit_falls_back_to_sequential() {
        let (g, q) = random_setup(0);
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
        let opts = EnumOptions { limit: Some(3), ..Default::default() };
        let r = par_count(&q, &rig, &opts, 4);
        assert_eq!(r.count, 3);
        assert!(r.limit_hit);
    }

    #[test]
    fn single_thread_is_sequential() {
        let (g, q) = random_setup(1);
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
        let a = par_count(&q, &rig, &EnumOptions::default(), 1);
        let b = count(&q, &rig, &EnumOptions::default());
        assert_eq!(a.count, b.count);
    }
}
