//! The pre-CSR MJoin engine, kept verbatim as a **reference
//! implementation** over [`rig_index::reference::RefRig`]: per-step hash
//! probes into the adjacency maps, a materialized [`Bitset::multi_and`]
//! per recursion step and a clone of the base candidate set at the
//! unconstrained root.
//!
//! Used only by differential tests and by the `--json` benchmark harnesses
//! as the in-process baseline; see `rig_index::reference` for the same
//! story on the index side. `Bj` ordering falls back to `Jo` here — the
//! baseline comparisons run on `Jo`/`Ri`, which both engines order
//! identically for identical candidate sets.

use std::time::Instant;

use rig_bitset::Bitset;
use rig_graph::NodeId;
use rig_index::reference::RefRig;
use rig_query::{PatternQuery, QNode};

use crate::{EnumOptions, EnumResult, SearchOrder};

/// Counts occurrences of `query` over the reference RIG with the original
/// (pre-CSR) enumeration loop.
pub fn ref_count(query: &PatternQuery, rig: &RefRig, opts: &EnumOptions) -> EnumResult {
    ref_enumerate(query, rig, opts, |_| true)
}

/// Enumerates occurrences over the reference RIG (tuples indexed by query
/// node id, like [`crate::enumerate`]).
pub fn ref_enumerate(
    query: &PatternQuery,
    rig: &RefRig,
    opts: &EnumOptions,
    mut visit: impl FnMut(&[NodeId]) -> bool,
) -> EnumResult {
    let order = ref_order(query, rig, opts.order);
    let mut result =
        EnumResult { count: 0, timed_out: false, limit_hit: false, order: order.clone(), steps: 0 };
    if rig.is_empty() || query.num_nodes() == 0 {
        return result;
    }
    let n = order.len();
    let mut pos_of = vec![usize::MAX; n];
    for (i, &q) in order.iter().enumerate() {
        pos_of[q as usize] = i;
    }
    let mut constraints: Vec<Vec<(u32, usize, bool)>> = vec![Vec::new(); n];
    for (eid, e) in query.edges().iter().enumerate() {
        let pf = pos_of[e.from as usize];
        let pt = pos_of[e.to as usize];
        if pf < pt {
            constraints[pt].push((eid as u32, pf, true));
        } else {
            constraints[pf].push((eid as u32, pt, false));
        }
    }
    let mut tuple_by_pos = vec![0 as NodeId; n];
    let mut engine = RefEngine {
        rig,
        opts,
        order: &order,
        constraints: &constraints,
        started: Instant::now(),
        check_counter: 0,
        result: &mut result,
    };
    let mut out_tuple = vec![0 as NodeId; n];
    engine.recurse(0, &mut tuple_by_pos, &mut |tuple_by_pos, eng| {
        for (i, &q) in eng.order.iter().enumerate() {
            out_tuple[q as usize] = tuple_by_pos[i];
        }
        visit(&out_tuple)
    });
    result
}

/// The original greedy / topological orders against RefRig statistics.
fn ref_order(query: &PatternQuery, rig: &RefRig, strategy: SearchOrder) -> Vec<QNode> {
    let n = query.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    match strategy {
        SearchOrder::Jo | SearchOrder::Bj => jo_order(query, rig),
        SearchOrder::Ri => crate::order::ri_order(query),
    }
}

fn jo_order(query: &PatternQuery, rig: &RefRig) -> Vec<QNode> {
    let n = query.num_nodes();
    let mut order: Vec<QNode> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let start = (0..n as QNode).min_by_key(|&q| (rig.cos_len(q), q)).expect("non-empty query");
    order.push(start);
    used[start as usize] = true;
    while order.len() < n {
        let next = (0..n as QNode)
            .filter(|&q| !used[q as usize])
            .filter(|&q| query.neighbors(q).any(|(nb, _, _)| used[nb as usize]))
            .min_by_key(|&q| (rig.cos_len(q), q));
        let next = match next {
            Some(q) => q,
            None => (0..n as QNode)
                .filter(|&q| !used[q as usize])
                .min_by_key(|&q| (rig.cos_len(q), q))
                .unwrap(),
        };
        order.push(next);
        used[next as usize] = true;
    }
    order
}

struct RefEngine<'a> {
    rig: &'a RefRig,
    opts: &'a EnumOptions,
    order: &'a [QNode],
    constraints: &'a [Vec<(u32, usize, bool)>],
    started: Instant,
    check_counter: u32,
    result: &'a mut EnumResult,
}

impl RefEngine<'_> {
    fn stop(&mut self) -> bool {
        if self.result.timed_out || self.result.limit_hit {
            return true;
        }
        if let Some(limit) = self.opts.limit {
            if self.result.count >= limit {
                self.result.limit_hit = true;
                return true;
            }
        }
        self.check_counter += 1;
        if self.check_counter >= 1024 {
            self.check_counter = 0;
            if let Some(budget) = self.opts.timeout {
                if self.started.elapsed() > budget {
                    self.result.timed_out = true;
                    return true;
                }
            }
        }
        false
    }

    fn recurse(
        &mut self,
        i: usize,
        tuple: &mut [NodeId],
        emit: &mut impl FnMut(&[NodeId], &RefEngine<'_>) -> bool,
    ) -> bool {
        if i == self.order.len() {
            self.result.count += 1;
            let keep = emit(tuple, self);
            if let Some(limit) = self.opts.limit {
                if self.result.count >= limit {
                    self.result.limit_hit = true;
                    return false;
                }
            }
            return keep;
        }
        if self.stop() {
            return false;
        }
        self.result.steps += 1;
        let q = self.order[i];

        // Multi-way intersection of cos(q) with the adjacency lists of all
        // bound neighbors — allocating per step, as the original did.
        let mut operands: Vec<&Bitset> = Vec::with_capacity(self.constraints[i].len());
        for &(eid, bound_pos, bound_is_source) in &self.constraints[i] {
            let bound_node = tuple[bound_pos];
            let adj = if bound_is_source {
                self.rig.successors(eid, bound_node)
            } else {
                self.rig.predecessors(eid, bound_node)
            };
            match adj {
                Some(s) => operands.push(s),
                None => return true, // empty adjacency: dead branch
            }
        }
        let base = &self.rig.cos[q as usize];
        let cos_i = if operands.is_empty() {
            base.clone()
        } else {
            let mut all: Vec<&Bitset> = Vec::with_capacity(operands.len() + 1);
            all.push(base);
            all.extend(operands);
            Bitset::multi_and(&all)
        };
        for v in cos_i.iter() {
            if self.opts.injective && tuple[..i].contains(&v) {
                continue;
            }
            tuple[i] = v;
            if !self.recurse(i + 1, tuple, emit) {
                return false;
            }
        }
        true
    }
}
