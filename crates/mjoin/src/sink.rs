//! Streaming result consumption.
//!
//! A [`ResultSink`] receives occurrence tuples as MJoin produces them, so
//! callers consume matches **without materializing the answer set**: a
//! count-only sink keeps a single counter, a first-k sink keeps at most
//! `k` tuples, a batched sink hands out fixed-size blocks to a flush
//! callback. Every enumeration entry point — [`crate::enumerate_sink`],
//! [`crate::count`], [`crate::par_count`], [`crate::par_enumerate`] — is
//! built on this trait; the closure-based [`crate::enumerate`] API wraps
//! its visitor in a [`FnSink`].
//!
//! Under [`crate::par_enumerate`] each worker owns a **private** sink (no
//! locks on the emit path); the per-worker sinks are returned to the
//! caller for merging. A sink that returns `false` from [`ResultSink::push`]
//! requests early termination of the whole enumeration (all workers, in
//! the parallel case) — it does *not* set `limit_hit`, which is reserved
//! for the engine-enforced [`crate::EnumOptions::limit`] budget.

use rig_graph::NodeId;

/// A consumer of occurrence tuples (indexed by query node id).
pub trait ResultSink {
    /// Receives one occurrence. Return `false` to stop the enumeration
    /// (globally — in parallel runs every worker stops promptly).
    fn push(&mut self, tuple: &[NodeId]) -> bool;

    /// Called exactly once when the (worker-local) enumeration ends, so
    /// buffering sinks can flush their tail. Default: no-op.
    fn finish(&mut self) {}
}

/// Adapts a `FnMut(&[NodeId]) -> bool` visitor into a sink.
pub struct FnSink<F>(pub F);

impl<F: FnMut(&[NodeId]) -> bool> ResultSink for FnSink<F> {
    #[inline]
    fn push(&mut self, tuple: &[NodeId]) -> bool {
        (self.0)(tuple)
    }
}

/// Count-only sink: O(1) space, no per-tuple work beyond one increment.
#[derive(Debug, Default, Clone)]
pub struct CountSink {
    pub count: u64,
}

impl ResultSink for CountSink {
    #[inline]
    fn push(&mut self, _tuple: &[NodeId]) -> bool {
        self.count += 1;
        true
    }
}

/// Keeps the first `k` tuples it sees and then asks the enumeration to
/// stop. In a parallel run each worker holds its own `FirstKSink`, so up
/// to `threads × k` tuples may be retained before the stop propagates;
/// the caller picks its `k` from the merged sinks.
#[derive(Debug, Clone)]
pub struct FirstKSink {
    k: usize,
    pub tuples: Vec<Vec<NodeId>>,
}

impl FirstKSink {
    pub fn new(k: usize) -> Self {
        FirstKSink { k, tuples: Vec::new() }
    }
}

impl ResultSink for FirstKSink {
    fn push(&mut self, tuple: &[NodeId]) -> bool {
        if self.tuples.len() < self.k {
            self.tuples.push(tuple.to_vec());
        }
        self.tuples.len() < self.k
    }
}

/// Collects every tuple (tests and small answers only — this is the one
/// sink that *does* materialize the answer).
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    pub tuples: Vec<Vec<NodeId>>,
}

impl ResultSink for CollectSink {
    fn push(&mut self, tuple: &[NodeId]) -> bool {
        self.tuples.push(tuple.to_vec());
        true
    }
}

/// Batches embeddings into a flat `NodeId` buffer and flushes it to a
/// callback every `batch_tuples` occurrences (and once more at the end for
/// the tail). The flush receives `(flat_buffer, arity)`; tuple `i` of the
/// batch is `flat[i * arity..(i + 1) * arity]`. Space is O(batch), not
/// O(answer) — the streaming analogue of collecting.
pub struct BatchSink<F: FnMut(&[NodeId], usize)> {
    arity: usize,
    cap: usize,
    buf: Vec<NodeId>,
    flush: F,
    /// Total tuples pushed through this sink.
    pub pushed: u64,
}

impl<F: FnMut(&[NodeId], usize)> BatchSink<F> {
    /// `arity` = query node count; `batch_tuples` = tuples per flush.
    pub fn new(arity: usize, batch_tuples: usize, flush: F) -> Self {
        let cap = batch_tuples.max(1);
        BatchSink { arity, cap, buf: Vec::with_capacity(cap * arity.max(1)), flush, pushed: 0 }
    }
}

impl<F: FnMut(&[NodeId], usize)> ResultSink for BatchSink<F> {
    fn push(&mut self, tuple: &[NodeId]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        self.buf.extend_from_slice(tuple);
        self.pushed += 1;
        if self.buf.len() >= self.cap * self.arity.max(1) {
            (self.flush)(&self.buf, self.arity);
            self.buf.clear();
        }
        true
    }

    fn finish(&mut self) {
        if !self.buf.is_empty() {
            (self.flush)(&self.buf, self.arity);
            self.buf.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_sink_delegates() {
        let mut seen = 0;
        {
            let mut s = FnSink(|t: &[NodeId]| {
                seen += t.len();
                true
            });
            assert!(s.push(&[1, 2]));
            s.finish();
        }
        assert_eq!(seen, 2);
    }

    #[test]
    fn count_sink_counts() {
        let mut s = CountSink::default();
        for _ in 0..5 {
            assert!(s.push(&[0]));
        }
        assert_eq!(s.count, 5);
    }

    #[test]
    fn first_k_stops_after_k() {
        let mut s = FirstKSink::new(2);
        assert!(s.push(&[1]));
        assert!(!s.push(&[2]));
        assert!(!s.push(&[3]));
        assert_eq!(s.tuples, vec![vec![1], vec![2]]);
    }

    #[test]
    fn batch_sink_flushes_full_batches_and_tail() {
        let mut batches: Vec<(Vec<NodeId>, usize)> = Vec::new();
        {
            let mut s = BatchSink::new(2, 2, |flat: &[NodeId], arity| {
                batches.push((flat.to_vec(), arity));
            });
            for t in [[0, 1], [2, 3], [4, 5]] {
                assert!(s.push(&t));
            }
            s.finish();
            assert_eq!(s.pushed, 3);
        }
        assert_eq!(batches, vec![(vec![0, 1, 2, 3], 2), (vec![4, 5], 2)]);
    }
}
