//! Search-order strategies (§5.2 and Table 4).

use rig_index::Rig;
use rig_query::{PatternQuery, QNode};

/// The three ordering strategies the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchOrder {
    /// Greedy join ordering \[26\]: start from the smallest RIG candidate
    /// set, repeatedly append the *connected* node with the smallest
    /// candidate set. Uses data statistics through the RIG.
    Jo,
    /// RI \[9\]: purely topological — prefer nodes with the most edges into
    /// the already-ordered prefix (maximizing early constraints), breaking
    /// ties by total degree then node id. Ignores the data graph.
    Ri,
    /// Optimal left-deep order by dynamic programming over subsets, cost =
    /// estimated intermediate-result sizes from RIG cardinalities. Falls
    /// back to `Jo` beyond 16 query nodes (2^n states do not scale —
    /// exactly the paper's observation about JM's planner).
    Bj,
}

/// Computes a search order (a permutation of query nodes).
pub fn compute_order(query: &PatternQuery, rig: &Rig, strategy: SearchOrder) -> Vec<QNode> {
    let n = query.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    match strategy {
        SearchOrder::Jo => jo_order(query, rig),
        SearchOrder::Ri => ri_order(query),
        SearchOrder::Bj => {
            if n <= 16 {
                bj_order(query, rig)
            } else {
                jo_order(query, rig)
            }
        }
    }
}

/// True iff each node (after the first) touches an earlier node — the
/// connectivity property JO enforces to avoid Cartesian products.
pub fn is_connected_order(query: &PatternQuery, order: &[QNode]) -> bool {
    for (i, &q) in order.iter().enumerate().skip(1) {
        let earlier = &order[..i];
        let touches = query.neighbors(q).any(|(nb, _, _)| earlier.contains(&nb));
        if !touches {
            return false;
        }
    }
    true
}

fn jo_order(query: &PatternQuery, rig: &Rig) -> Vec<QNode> {
    let n = query.num_nodes();
    let mut order: Vec<QNode> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    // start node: smallest candidate set (ties by id for determinism)
    let start = (0..n as QNode).min_by_key(|&q| (rig.cos_len(q), q)).expect("non-empty query");
    order.push(start);
    used[start as usize] = true;
    while order.len() < n {
        let next = (0..n as QNode)
            .filter(|&q| !used[q as usize])
            .filter(|&q| query.neighbors(q).any(|(nb, _, _)| used[nb as usize]))
            .min_by_key(|&q| (rig.cos_len(q), q));
        let next = match next {
            Some(q) => q,
            // disconnected pattern (not produced by our generators, but be
            // total): fall back to the globally smallest remaining set
            None => (0..n as QNode)
                .filter(|&q| !used[q as usize])
                .min_by_key(|&q| (rig.cos_len(q), q))
                .unwrap(),
        };
        order.push(next);
        used[next as usize] = true;
    }
    order
}

pub(crate) fn ri_order(query: &PatternQuery) -> Vec<QNode> {
    let n = query.num_nodes();
    let mut order: Vec<QNode> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let start = (0..n as QNode)
        .max_by_key(|&q| (query.degree(q), std::cmp::Reverse(q)))
        .expect("non-empty query");
    order.push(start);
    used[start as usize] = true;
    while order.len() < n {
        let next = (0..n as QNode)
            .filter(|&q| !used[q as usize])
            .max_by_key(|&q| {
                let into_prefix =
                    query.neighbors(q).filter(|&(nb, _, _)| used[nb as usize]).count();
                (into_prefix, query.degree(q), std::cmp::Reverse(q))
            })
            .unwrap();
        order.push(next);
        used[next as usize] = true;
    }
    order
}

/// Exhaustive left-deep DP: state = subset of bound nodes, value = minimal
/// accumulated intermediate cardinality estimate.
fn bj_order(query: &PatternQuery, rig: &Rig) -> Vec<QNode> {
    let n = query.num_nodes();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    // selectivity of each query edge from RIG statistics
    let sel: Vec<f64> = (0..query.num_edges())
        .map(|eid| {
            let e = query.edge(eid as u32);
            let card = edge_cardinality(rig, eid as u32) as f64;
            let denom = rig.cos_len(e.from) as f64 * rig.cos_len(e.to) as f64;
            if denom == 0.0 {
                0.0
            } else {
                (card / denom).min(1.0)
            }
        })
        .collect();
    let size = 1usize << n;
    let mut best_cost = vec![f64::INFINITY; size];
    let mut best_size = vec![0.0f64; size];
    let mut pred: Vec<(u32, QNode)> = vec![(0, 0); size];
    for q in 0..n as QNode {
        let mask = 1u32 << q;
        best_cost[mask as usize] = rig.cos_len(q) as f64;
        best_size[mask as usize] = rig.cos_len(q) as f64;
    }
    // iterate masks in increasing popcount order implicitly via value order
    for mask in 1..=full {
        if best_cost[mask as usize].is_infinite() {
            continue;
        }
        for q in 0..n as QNode {
            let bit = 1u32 << q;
            if mask & bit != 0 {
                continue;
            }
            // require connectivity to the prefix when possible
            let connected = query.neighbors(q).any(|(nb, _, _)| mask & (1 << nb) != 0);
            if !connected && mask != 0 && (mask | bit) != full {
                // allow Cartesian only as a last resort (final node)
                let any_connected_choice = (0..n as QNode).any(|r| {
                    let rb = 1u32 << r;
                    mask & rb == 0 && query.neighbors(r).any(|(nb, _, _)| mask & (1 << nb) != 0)
                });
                if any_connected_choice {
                    continue;
                }
            }
            let mut est = best_size[mask as usize] * rig.cos_len(q) as f64;
            for (eid, e) in query.edges().iter().enumerate() {
                let touches = (e.from == q && mask & (1 << e.to) != 0)
                    || (e.to == q && mask & (1 << e.from) != 0);
                if touches {
                    est *= sel[eid];
                }
            }
            let new_mask = (mask | bit) as usize;
            let cost = best_cost[mask as usize] + est;
            if cost < best_cost[new_mask] {
                best_cost[new_mask] = cost;
                best_size[new_mask] = est;
                pred[new_mask] = (mask, q);
            }
        }
    }
    // reconstruct
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let (prev, q) = pred[mask as usize];
        if mask.count_ones() == 1 {
            order.push(mask.trailing_zeros() as QNode);
            break;
        }
        order.push(q);
        mask = prev;
    }
    order.reverse();
    debug_assert_eq!(order.len(), n);
    order
}

/// Total RIG edge cardinality `|cos(e)|` for a query edge.
pub fn edge_cardinality(rig: &Rig, eid: u32) -> u64 {
    rig.edge_cardinality(eid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::GraphBuilder;
    use rig_index::{build_rig, RigOptions};
    use rig_query::{fig2_query, EdgeKind, PatternQuery};
    use rig_reach::BflIndex;
    use rig_sim::SimContext;

    fn fig2_rig() -> (PatternQuery, Rig) {
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_node(0);
        }
        for _ in 0..4 {
            b.add_node(1);
        }
        for _ in 0..3 {
            b.add_node(2);
        }
        b.add_edge(1, 3);
        b.add_edge(1, 7);
        b.add_edge(3, 8);
        b.add_edge(8, 7);
        b.add_edge(2, 5);
        b.add_edge(2, 9);
        b.add_edge(5, 9);
        b.add_edge(5, 8);
        b.add_edge(0, 4);
        b.add_edge(4, 7);
        b.add_edge(6, 0);
        let g = b.build();
        let q = fig2_query();
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
        (q, rig)
    }

    #[test]
    fn all_orders_are_connected_permutations() {
        let (q, rig) = fig2_rig();
        for strat in [SearchOrder::Jo, SearchOrder::Ri, SearchOrder::Bj] {
            let order = compute_order(&q, &rig, strat);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "{strat:?} not a permutation");
            assert!(is_connected_order(&q, &order), "{strat:?} disconnected");
        }
    }

    #[test]
    fn jo_starts_from_smallest_candidate_set() {
        let (q, rig) = fig2_rig();
        let order = compute_order(&q, &rig, SearchOrder::Jo);
        let first = order[0];
        for other in 0..q.num_nodes() as QNode {
            assert!(rig.cos_len(first) <= rig.cos_len(other));
        }
    }

    #[test]
    fn ri_starts_from_max_degree() {
        // star pattern: center has degree 3
        let mut q = PatternQuery::new(vec![0, 1, 1, 1]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(0, 2, EdgeKind::Direct);
        q.add_edge(0, 3, EdgeKind::Direct);
        let order = ri_order(&q);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn bj_large_query_falls_back() {
        // 18-node path exceeds the DP budget; must still return an order.
        let mut q = PatternQuery::new(vec![0; 18]);
        for i in 1..18u32 {
            q.add_edge(i - 1, i, EdgeKind::Direct);
        }
        // fabricate a rig on a tiny matching graph
        let mut b = GraphBuilder::new();
        let mut prev = b.add_node(0);
        for _ in 1..20 {
            let v = b.add_node(0);
            b.add_edge(prev, v);
            prev = v;
        }
        let g = b.build();
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let rig = build_rig(&ctx, &bfl, &RigOptions::exact());
        let order = compute_order(&q, &rig, SearchOrder::Bj);
        assert_eq!(order.len(), 18);
        assert!(is_connected_order(&q, &order));
    }
}
