//! Factorized answers over the pruned RIG: DP counting, pushed-down
//! aggregates and lazy tuple expansion.
//!
//! The fully pruned RIG is a near-factorized representation of the answer
//! set: per query node a candidate array, per query edge a bipartite
//! adjacency between candidate arrays. Whenever the query is **tree
//! shaped** (undirected cycle rank 0), the answer set is *exactly* the set
//! of tuples consistent with every RIG edge, and its cardinality can be
//! computed by a bottom-up dynamic program over subtree counts — linear in
//! RIG size, with no tuple materialization.
//!
//! Cyclic queries are handled by **conditional re-expansion**: a BFS
//! spanning tree of the query is computed, the non-tree ("cyclic") edges
//! are covered by a small conditioning set of query nodes, and the DP runs
//! once per consistent binding of the conditioning set. Fixing the
//! conditioned nodes turns every cyclic edge into either an O(1)
//! membership probe (both endpoints conditioned) or a unary filter on a
//! free node's candidates (one endpoint conditioned); the residual
//! constraint graph over the free nodes is a forest, so the tree DP
//! applies per binding and the grand total is the sum over bindings.
//!
//! Three consumption modes share the machinery:
//! * [`Factorization::count`] / [`Factorization::exists`] — aggregates
//!   pushed down into the DP, never touching a tuple;
//! * [`Factorization::var_cardinalities`] — per-variable distinct-binding
//!   counts via an additional top-down participation pass;
//! * [`Factorization::stream`] / [`Factorization::tuples`] — lazy tuple
//!   expansion: a pull-based enumeration of the answer set guided by the
//!   DP counts (subtrees with zero extensions are never entered), feeding
//!   the ordinary [`ResultSink`] layer or a pull [`Iterator`].
//!
//! Counting arithmetic is u128 with saturation + an overflow flag:
//! zero/non-zero decisions (pruning, `exists`) stay correct under
//! saturation, while [`DpCount::total`] reports `None` when the exact
//! value would have overflowed, letting callers fall back to enumeration.
//!
//! All scratch (count arrays, cursors, bindings) is allocated in
//! [`Factorization::new`]; the counting entry points are **allocation-free
//! in steady state** (see `tests/alloc_factorized.rs`).

use crate::sink::ResultSink;
use rig_graph::NodeId;
use rig_index::{AdjRun, Rig};
use rig_query::{EdgeId, PatternQuery, QNode};

/// Query-only shape analysis: a BFS spanning forest, the leftover cyclic
/// edges, and a greedy vertex cover of those edges (the conditioning set).
/// Deterministic in the query alone, so `explain` can report the shape
/// without building a RIG.
#[derive(Debug, Clone)]
pub struct FactorizationShape {
    /// Edges of the BFS spanning forest.
    pub tree_edges: Vec<EdgeId>,
    /// Non-tree ("cyclic") edges — empty iff the query is tree shaped.
    pub extra_edges: Vec<EdgeId>,
    /// Conditioning set: a greedy vertex cover of `extra_edges`. The DP
    /// re-expands once per consistent binding of these nodes.
    pub conditioned: Vec<QNode>,
}

impl FactorizationShape {
    /// Analyzes `query` (connected or not; a spanning forest is used).
    pub fn analyze(query: &PatternQuery) -> FactorizationShape {
        let n = query.num_nodes();
        let m = query.num_edges();
        let mut visited = vec![false; n];
        let mut in_tree = vec![false; m];
        let mut tree_edges = Vec::new();
        let mut queue = Vec::with_capacity(n);
        for start in 0..n {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            queue.clear();
            queue.push(start as QNode);
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                for (v, e, _) in query.neighbors(u) {
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        in_tree[e as usize] = true;
                        tree_edges.push(e);
                        queue.push(v);
                    }
                }
            }
        }
        let extra_edges: Vec<EdgeId> = (0..m as EdgeId).filter(|&e| !in_tree[e as usize]).collect();

        // Greedy vertex cover of the cyclic edges: repeatedly take the
        // node covering the most still-uncovered edges (ties: smaller id).
        let mut covered = vec![false; extra_edges.len()];
        let mut conditioned = Vec::new();
        let mut is_cond = vec![false; n];
        loop {
            let mut best: Option<(usize, usize)> = None; // (coverage, node)
            for (q, &cond) in is_cond.iter().enumerate() {
                if cond {
                    continue;
                }
                let c = extra_edges
                    .iter()
                    .enumerate()
                    .filter(|&(i, &e)| {
                        let pe = query.edge(e);
                        !covered[i] && (pe.from as usize == q || pe.to as usize == q)
                    })
                    .count();
                if c > 0 && best.is_none_or(|(bc, _)| c > bc) {
                    best = Some((c, q));
                }
            }
            let Some((_, q)) = best else { break };
            is_cond[q] = true;
            conditioned.push(q as QNode);
            for (i, &e) in extra_edges.iter().enumerate() {
                let pe = query.edge(e);
                if pe.from as usize == q || pe.to as usize == q {
                    covered[i] = true;
                }
            }
        }
        FactorizationShape { tree_edges, extra_edges, conditioned }
    }

    /// True iff the query is tree shaped (pure DP, no re-expansion).
    pub fn is_tree(&self) -> bool {
        self.extra_edges.is_empty()
    }
}

/// One binary constraint anchored at an already-decided position: the
/// candidate under test must lie in the adjacency run of edge `eid`
/// expanded from position `pos`'s binding (`fwd` picks the direction the
/// run is read in — `true` expands successors, i.e. the anchor is the
/// edge's source).
///
/// The same struct encodes forest parent/child links, where the anchor of
/// a *child* link is the current node itself (see [`Factorization`]).
#[derive(Debug, Clone, Copy)]
struct Check {
    eid: EdgeId,
    pos: usize,
    fwd: bool,
}

/// Exact DP count. `total` is `None` when u128 arithmetic saturated —
/// callers should fall back to plain enumeration (which could never reach
/// such a count anyway) — or when the deadline expired (`timed_out` set;
/// a partial sum must never be mistaken for the answer). `assignments` is
/// the number of conditioning-set bindings the DP re-expanded over (1 for
/// tree-shaped queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpCount {
    pub total: Option<u128>,
    pub assignments: u64,
    pub timed_out: bool,
}

#[inline]
fn sat_add(a: u128, b: u128, of: &mut bool) -> u128 {
    a.checked_add(b).unwrap_or_else(|| {
        *of = true;
        u128::MAX
    })
}

#[inline]
fn sat_mul(a: u128, b: u128, of: &mut bool) -> u128 {
    a.checked_mul(b).unwrap_or_else(|| {
        *of = true;
        u128::MAX
    })
}

#[inline]
fn run_from(rig: &Rig, eid: EdgeId, anchor: u32, fwd: bool) -> AdjRun<'_> {
    if fwd {
        rig.successors_local(eid, anchor)
    } else {
        rig.predecessors_local(eid, anchor)
    }
}

/// A compiled factorization of one query's answer set over one RIG.
///
/// Construction chooses a binding order — the conditioning set first, then
/// the free nodes in forest BFS order (parents before children) — and
/// classifies every query edge into exactly one role:
/// * both endpoints conditioned → membership probe during conditioning
///   enumeration (attached to the later position);
/// * one endpoint conditioned → unary filter on the free endpoint's
///   candidates, folded into its DP counts;
/// * both endpoints free → a forest parent/child link driving the DP.
///
/// Local ids are used throughout; tuples are translated back to data-node
/// ids only at emission.
pub struct Factorization<'q, 'r> {
    query: &'q PatternQuery,
    rig: &'r Rig,
    shape: FactorizationShape,
    /// Binding order: position → query node.
    order: Vec<QNode>,
    /// Number of leading conditioned positions.
    s_len: usize,
    /// Per position: constraints against earlier positions (conditioned
    /// zone: all edges to earlier conditioned nodes; free zone: unary
    /// filters anchored at conditioned bindings).
    checks: Vec<Vec<Check>>,
    /// Free zone: the forest tree edge up to the parent position.
    parent: Vec<Option<Check>>,
    /// Free zone: forest tree edges down to child positions (anchor =
    /// self).
    children: Vec<Vec<Check>>,
    /// Free-zone component root positions.
    roots: Vec<usize>,
    /// DP scratch: per free position, one u128 per candidate.
    counts: Vec<Vec<u128>>,
    /// Free zone: position's count depends on the conditioning binding
    /// (an own S-anchored check, or any descendant's). Positions without
    /// this flag keep one binding-independent count for the whole run.
    s_dep: Vec<bool>,
    /// Sparse-DP scratch: per free S-dependent position, the epoch at
    /// which each candidate's count was last computed (stale = zero).
    stamp: Vec<Vec<u32>>,
    /// Sparse-DP scratch: candidates computed *nonzero* this epoch, in
    /// discovery order (capacity reserved up front — no steady-state
    /// growth).
    stamped: Vec<Vec<u32>>,
    epoch: u32,
    /// Conditioned zone: per S position, a binding-independent candidate
    /// filter (`false` = provably contributes to no answer, skipped by
    /// the conditioning enumeration). All-true until
    /// [`Self::compute_support`] tightens it.
    s_support: Vec<Vec<bool>>,
    support_ready: bool,
    binding: Vec<u32>,
    cursors: Vec<usize>,
    tuple: Vec<NodeId>,
    started: bool,
    done: bool,
    /// Wall-clock cutoff for the aggregate conditioning loops (see
    /// [`Self::set_deadline`]).
    deadline: Option<std::time::Instant>,
}

impl<'q, 'r> Factorization<'q, 'r> {
    /// Compiles the factorization (all scratch allocated here; the
    /// aggregate entry points are steady-state allocation-free).
    pub fn new(query: &'q PatternQuery, rig: &'r Rig) -> Factorization<'q, 'r> {
        assert_eq!(rig.num_query_nodes(), query.num_nodes(), "RIG/query shape mismatch");
        assert_eq!(rig.num_query_edges(), query.num_edges(), "RIG/query shape mismatch");
        let n = query.num_nodes();
        let shape = FactorizationShape::analyze(query);
        let mut is_cond = vec![false; n];
        for &q in &shape.conditioned {
            is_cond[q as usize] = true;
        }
        let mut in_tree = vec![false; query.num_edges()];
        for &e in &shape.tree_edges {
            in_tree[e as usize] = true;
        }

        // Binding order. Conditioned zone: smallest candidate set first,
        // then prefer nodes adjacent to an already-placed conditioned node
        // (their runs drive the conditioning enumeration).
        let mut order: Vec<QNode> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        {
            let mut remaining = shape.conditioned.clone();
            remaining.sort_by_key(|&q| rig.cos_len(q));
            while !remaining.is_empty() {
                let idx = remaining
                    .iter()
                    .position(|&q| query.neighbors(q).any(|(v, _, _)| placed[v as usize]))
                    .unwrap_or(0);
                let q = remaining.remove(idx);
                placed[q as usize] = true;
                order.push(q);
            }
        }
        let s_len = order.len();

        // Free zone: BFS forest over the spanning-tree edges restricted to
        // free nodes; parents precede children in `order`.
        let mut pos_of = vec![usize::MAX; n];
        for (p, &q) in order.iter().enumerate() {
            pos_of[q as usize] = p;
        }
        let mut parent: Vec<Option<Check>> = vec![None; n];
        let mut children: Vec<Vec<Check>> = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for root in 0..n {
            if placed[root] || is_cond[root] {
                continue;
            }
            placed[root] = true;
            pos_of[root] = order.len();
            roots.push(order.len());
            order.push(root as QNode);
            let mut head = pos_of[root];
            while head < order.len() {
                let u = order[head];
                let upos = head;
                head += 1;
                for (v, e, out) in query.neighbors(u) {
                    let vi = v as usize;
                    if in_tree[e as usize] && !is_cond[vi] && !placed[vi] {
                        placed[vi] = true;
                        pos_of[vi] = order.len();
                        parent[order.len()] = Some(Check { eid: e, pos: upos, fwd: out });
                        children[upos].push(Check { eid: e, pos: order.len(), fwd: out });
                        order.push(v);
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), n);

        // Classify every query edge not already encoded as a forest link.
        let mut checks: Vec<Vec<Check>> = vec![Vec::new(); n];
        for (ei, pe) in query.edges().iter().enumerate() {
            let (pf, pt) = (pos_of[pe.from as usize], pos_of[pe.to as usize]);
            if pf < s_len || pt < s_len {
                // at least one conditioned endpoint: probe at the later
                // position, anchored at the earlier one
                let (late, early, fwd) = if pf < pt { (pt, pf, true) } else { (pf, pt, false) };
                checks[late].push(Check { eid: ei as EdgeId, pos: early, fwd });
            } else {
                // both free: must be a forest parent/child link
                debug_assert!(
                    parent[pf.max(pt)].is_some_and(|c| c.eid == ei as EdgeId)
                        || parent[pf.min(pt)].is_some_and(|c| c.eid == ei as EdgeId),
                    "free-free edge not covered by the forest"
                );
            }
        }

        let counts: Vec<Vec<u128>> =
            order
                .iter()
                .enumerate()
                .map(|(p, &q)| {
                    if p < s_len {
                        Vec::new()
                    } else {
                        vec![0u128; rig.candidates(q as usize).len()]
                    }
                })
                .collect();

        // Conditioning dependence propagates from S-checked positions up
        // to their forest ancestors (children sit at later positions).
        let mut s_dep = vec![false; n];
        for pos in (s_len..n).rev() {
            s_dep[pos] = !checks[pos].is_empty() || children[pos].iter().any(|ch| s_dep[ch.pos]);
        }
        let stamp: Vec<Vec<u32>> = (0..n)
            .map(|p| if p >= s_len && s_dep[p] { vec![0u32; counts[p].len()] } else { Vec::new() })
            .collect();
        let stamped: Vec<Vec<u32>> = (0..n)
            .map(|p| {
                if p >= s_len && s_dep[p] {
                    Vec::with_capacity(counts[p].len())
                } else {
                    Vec::new()
                }
            })
            .collect();
        let s_support: Vec<Vec<bool>> = (0..n)
            .map(|p| {
                if p < s_len {
                    vec![true; rig.candidates(order[p] as usize).len()]
                } else {
                    Vec::new()
                }
            })
            .collect();

        Factorization {
            query,
            rig,
            shape,
            order,
            s_len,
            checks,
            parent,
            children,
            roots,
            counts,
            s_dep,
            stamp,
            stamped,
            epoch: 0,
            s_support,
            support_ready: false,
            binding: vec![0; n],
            cursors: vec![0; n],
            tuple: vec![0; n],
            started: false,
            done: false,
            deadline: None,
        }
    }

    /// The binding order (conditioned nodes first, then the free forest).
    pub fn order(&self) -> &[QNode] {
        &self.order
    }

    /// The query this factorization was compiled from.
    pub fn query(&self) -> &PatternQuery {
        self.query
    }

    /// The query-only shape analysis this factorization compiled from.
    pub fn shape(&self) -> &FactorizationShape {
        &self.shape
    }

    /// True iff the query is tree shaped (single DP pass, no conditioning).
    pub fn is_tree(&self) -> bool {
        self.shape.is_tree()
    }

    /// Upper bound on the number of conditioning bindings the aggregate
    /// entry points may expand: the product of the conditioned
    /// candidate-set sizes (saturating). `1` for tree queries. Callers
    /// use this as a cost estimate to route between the DP and plain
    /// enumeration.
    pub fn conditioning_estimate(&self) -> u64 {
        let mut est = 1u64;
        for pos in 0..self.s_len {
            est = est.saturating_mul(self.cand_len(pos) as u64);
        }
        est
    }

    /// Crude cost model for the aggregate entry points: estimated
    /// conditioning bindings times the expected per-binding re-expansion
    /// width (one plus the mean generator-run length of every S-anchored
    /// free position). `1` for tree queries. Callers compare this against
    /// a budget to route between the DP and plain enumeration.
    pub fn estimated_work(&self) -> u64 {
        let mut width = 1u64;
        for pos in self.s_len..self.order.len() {
            if let Some(first) = self.checks[pos].first() {
                let anchors = self.cand_len(first.pos).max(1) as u64;
                width = width.saturating_add(self.rig.edge_cardinality(first.eid) / anchors);
            }
        }
        self.conditioning_estimate().saturating_mul(width)
    }

    /// Rewinds the enumeration/conditioning state machine.
    pub fn reset(&mut self) {
        self.started = false;
        self.done = false;
    }

    #[inline]
    fn cand_len(&self, pos: usize) -> usize {
        self.rig.candidates(self.order[pos] as usize).len()
    }

    /// Bottom-up subtree-count DP over the free forest, under the current
    /// conditioning binding. Returns the product of component totals
    /// (`1` when the free zone is empty). Saturating arithmetic; `of` is
    /// raised on overflow (zero/non-zero stays exact).
    fn forest_dp(&mut self, of: &mut bool) -> u128 {
        let n = self.order.len();
        for pos in (self.s_len..n).rev() {
            let (head, tail) = self.counts.split_at_mut(pos + 1);
            let cur = &mut head[pos];
            let rig = self.rig;
            'cand: for (c, slot) in cur.iter_mut().enumerate() {
                let cl = c as u32;
                for ch in &self.checks[pos] {
                    let run = run_from(rig, ch.eid, self.binding[ch.pos], ch.fwd);
                    if !run.contains(cl) {
                        *slot = 0;
                        continue 'cand;
                    }
                }
                let mut acc = 1u128;
                for ch in &self.children[pos] {
                    let run = run_from(rig, ch.eid, cl, ch.fwd);
                    let child_counts = &tail[ch.pos - pos - 1];
                    let mut s = 0u128;
                    for &c2 in run.list {
                        s = sat_add(s, child_counts[c2 as usize], of);
                    }
                    if s == 0 {
                        acc = 0;
                        break;
                    }
                    acc = sat_mul(acc, s, of);
                }
                *slot = acc;
            }
        }
        let mut total = 1u128;
        for &r in &self.roots {
            let mut s = 0u128;
            for &v in &self.counts[r] {
                s = sat_add(s, v, of);
            }
            if s == 0 {
                return 0;
            }
            total = sat_mul(total, s, of);
        }
        total
    }

    /// One-time (per aggregate call) dense pass over the free forest
    /// **ignoring the S-anchored checks**. For binding-independent
    /// positions this *is* their final count (no checks anywhere in their
    /// subtree); for binding-dependent positions it is an upper-bound
    /// "potential" — zero potential means zero under every conditioning
    /// binding, which [`Self::compute_support`] exploits to prune
    /// conditioning candidates up front.
    fn potential_forest_dp(&mut self, of: &mut bool) {
        let n = self.order.len();
        for pos in (self.s_len..n).rev() {
            let (head, tail) = self.counts.split_at_mut(pos + 1);
            let cur = &mut head[pos];
            let rig = self.rig;
            for (c, slot) in cur.iter_mut().enumerate() {
                let mut acc = 1u128;
                for ch in &self.children[pos] {
                    let run = run_from(rig, ch.eid, c as u32, ch.fwd);
                    let child_counts = &tail[ch.pos - pos - 1];
                    let mut s = 0u128;
                    for &c2 in run.list {
                        s = sat_add(s, child_counts[c2 as usize], of);
                    }
                    if s == 0 {
                        acc = 0;
                        break;
                    }
                    acc = sat_mul(acc, s, of);
                }
                *slot = acc;
            }
        }
    }

    /// Tightens the conditioning-candidate filter from the potentials of
    /// [`Self::potential_forest_dp`] (which must have just run): a
    /// conditioning candidate anchoring a free-zone check whose run holds
    /// no candidate with positive potential can never contribute, so the
    /// conditioning enumeration skips it. Binding-independent, hence
    /// computed once per factorization.
    fn compute_support(&mut self) {
        let n = self.order.len();
        for p in self.s_len..n {
            for ch in &self.checks[p] {
                let sup = &mut self.s_support[ch.pos];
                let potential = &self.counts[p];
                for (x, live) in sup.iter_mut().enumerate() {
                    if !*live {
                        continue;
                    }
                    let run = run_from(self.rig, ch.eid, x as u32, ch.fwd);
                    if !run.list.iter().any(|&c| potential[c as usize] > 0) {
                        *live = false;
                    }
                }
            }
        }
        self.support_ready = true;
    }

    /// Bumps the sparse-DP epoch, resetting the stamps on wraparound so a
    /// stale stamp can never collide with a live epoch.
    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.epoch = 0;
            for s in &mut self.stamp {
                s.fill(0);
            }
        }
        self.epoch += 1;
        self.epoch
    }

    /// Sparse per-conditioning-binding DP pass: recomputes only the
    /// binding-dependent positions, and within them only the candidates
    /// that can be nonzero under the current binding — drawn from the
    /// position's own S-anchored run when it has one, else from the
    /// reverse runs of a dependent child's nonzero candidates (everything
    /// else is zero by the product rule). Cost is proportional to the
    /// *live* part of the answer graph for this binding, not the RIG.
    /// Returns the product of the dependent component totals times
    /// `base_factor` (the precomputed product of independent component
    /// totals — see [`Self::base_factor`]).
    fn sparse_pass(&mut self, base_factor: u128, of: &mut bool) -> u128 {
        let e = self.next_epoch();
        let n = self.order.len();
        let rig = self.rig;
        for pos in (self.s_len..n).rev() {
            if !self.s_dep[pos] {
                continue;
            }
            let (c_head, c_tail) = self.counts.split_at_mut(pos + 1);
            let (s_head, s_tail) = self.stamp.split_at_mut(pos + 1);
            let (f_head, f_tail) = self.stamped.split_at_mut(pos + 1);
            let cur = &mut c_head[pos];
            let cur_stamp = &mut s_head[pos];
            let cur_stamped = &mut f_head[pos];
            cur_stamped.clear();
            let children = &self.children[pos];
            let s_dep = &self.s_dep;
            // product of child-subtree sums for one candidate, reading
            // dependent children through this epoch's stamps
            let eval = |cand: u32, of: &mut bool| {
                let mut acc = 1u128;
                for ch in children {
                    let run = run_from(rig, ch.eid, cand, ch.fwd);
                    let child_counts = &c_tail[ch.pos - pos - 1];
                    let mut s = 0u128;
                    if s_dep[ch.pos] {
                        let child_stamp = &s_tail[ch.pos - pos - 1];
                        for &c2 in run.list {
                            if child_stamp[c2 as usize] == e {
                                s = sat_add(s, child_counts[c2 as usize], of);
                            }
                        }
                    } else {
                        for &c2 in run.list {
                            s = sat_add(s, child_counts[c2 as usize], of);
                        }
                    }
                    if s == 0 {
                        return 0;
                    }
                    acc = sat_mul(acc, s, of);
                }
                acc
            };
            if let Some((first, rest)) = self.checks[pos].split_first() {
                // generator: this position's own S-anchored run
                let run = run_from(rig, first.eid, self.binding[first.pos], first.fwd);
                'cand: for &cand in run.list {
                    if cur_stamp[cand as usize] == e {
                        continue; // duplicate-free runs make this moot, but stay safe
                    }
                    cur_stamp[cand as usize] = e;
                    cur[cand as usize] = 0;
                    for ch in rest {
                        if !run_from(rig, ch.eid, self.binding[ch.pos], ch.fwd).contains(cand) {
                            continue 'cand;
                        }
                    }
                    let acc = eval(cand, of);
                    if acc > 0 {
                        cur[cand as usize] = acc;
                        cur_stamped.push(cand);
                    }
                }
                if cur_stamped.is_empty() {
                    // this subtree's sum is zero, which zeroes every
                    // ancestor factor and therefore the whole product
                    return 0;
                }
            } else {
                // frontier: parents of a dependent child's nonzero
                // candidates (any other candidate has a zero child factor)
                let ch = self.children[pos]
                    .iter()
                    .find(|ch| self.s_dep[ch.pos])
                    .expect("dependent position without own check has a dependent child");
                let child_stamped = &f_tail[ch.pos - pos - 1];
                for &c2 in child_stamped {
                    let rrun = run_from(rig, ch.eid, c2, !ch.fwd);
                    for &cand in rrun.list {
                        if cur_stamp[cand as usize] == e {
                            continue;
                        }
                        cur_stamp[cand as usize] = e;
                        let acc = eval(cand, of);
                        cur[cand as usize] = acc;
                        if acc > 0 {
                            cur_stamped.push(cand);
                        }
                    }
                }
                if cur_stamped.is_empty() {
                    return 0;
                }
            }
        }
        let mut total = base_factor;
        for &r in &self.roots {
            if !self.s_dep[r] {
                continue;
            }
            let mut s = 0u128;
            for &cand in &self.stamped[r] {
                s = sat_add(s, self.counts[r][cand as usize], of);
            }
            if s == 0 {
                return 0;
            }
            total = sat_mul(total, s, of);
        }
        total
    }

    /// Product of the binding-independent component totals (after
    /// [`Self::base_forest_dp`]); a zero here zeroes every conditioning
    /// binding's contribution at once.
    fn base_factor(&self, of: &mut bool) -> u128 {
        let mut total = 1u128;
        for &r in &self.roots {
            if self.s_dep[r] {
                continue;
            }
            let mut s = 0u128;
            for &v in &self.counts[r] {
                s = sat_add(s, v, of);
            }
            if s == 0 {
                return 0;
            }
            total = sat_mul(total, s, of);
        }
        total
    }

    /// Next candidate at `pos`, advancing its cursor: conditioned
    /// positions run a generator/probe intersection over their checks;
    /// free positions walk the parent run (or the full candidate range at
    /// component roots) pruned by `counts > 0`.
    fn next_at(&mut self, pos: usize) -> Option<u32> {
        if pos < self.s_len {
            let clen = self.cand_len(pos);
            let use_gen = !self.checks[pos].is_empty();
            loop {
                let k = self.cursors[pos];
                self.cursors[pos] += 1;
                let cand = if use_gen {
                    let g = self.checks[pos][0];
                    let run = run_from(self.rig, g.eid, self.binding[g.pos], g.fwd);
                    if k >= run.len() {
                        return None;
                    }
                    run.list[k]
                } else {
                    if k >= clen {
                        return None;
                    }
                    k as u32
                };
                if !self.s_support[pos][cand as usize] {
                    continue;
                }
                let rest = &self.checks[pos][if use_gen { 1 } else { 0 }..];
                if rest.iter().all(|ch| {
                    run_from(self.rig, ch.eid, self.binding[ch.pos], ch.fwd).contains(cand)
                }) {
                    return Some(cand);
                }
            }
        } else {
            loop {
                let k = self.cursors[pos];
                self.cursors[pos] += 1;
                let cand = match self.parent[pos] {
                    Some(p) => {
                        let run = run_from(self.rig, p.eid, self.binding[p.pos], p.fwd);
                        if k >= run.len() {
                            return None;
                        }
                        run.list[k]
                    }
                    None => {
                        if k >= self.counts[pos].len() {
                            return None;
                        }
                        k as u32
                    }
                };
                if self.counts[pos][cand as usize] > 0 {
                    return Some(cand);
                }
            }
        }
    }

    /// Advances to the next consistent conditioning-set binding (positions
    /// `0..s_len`). Requires `s_len > 0`.
    fn next_s_assignment(&mut self) -> bool {
        let s = self.s_len;
        let mut pos;
        if !self.started {
            self.started = true;
            self.cursors[0] = 0;
            pos = 0;
        } else {
            if self.done {
                return false;
            }
            pos = s - 1;
        }
        loop {
            match self.next_at(pos) {
                Some(local) => {
                    self.binding[pos] = local;
                    pos += 1;
                    if pos == s {
                        return true;
                    }
                    self.cursors[pos] = 0;
                }
                None => {
                    if pos == 0 {
                        self.done = true;
                        return false;
                    }
                    pos -= 1;
                }
            }
        }
    }

    /// Sets a wall-clock cutoff for [`Self::count`]'s conditioning loop.
    /// Past the deadline the count aborts with `timed_out` set and
    /// `total: None` — a partial sum is never reported as the answer.
    /// Enumeration entry points are unaffected (they take their own budget
    /// through `EnumOptions`).
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// True when the configured deadline has passed; probed every few
    /// conditioning assignments, so one clock read amortizes over many
    /// sparse passes.
    #[inline]
    fn past_deadline(&self, assignments: u64) -> bool {
        self.deadline
            .is_some_and(|d| assignments.is_multiple_of(16) && std::time::Instant::now() >= d)
    }

    /// Exact occurrence count by DP — no tuple is ever materialized.
    pub fn count(&mut self) -> DpCount {
        let mut of = false;
        if self.rig.is_empty() || self.order.is_empty() {
            return DpCount { total: Some(0), assignments: 0, timed_out: false };
        }
        let mut timed_out = false;
        let (grand, assignments) = if self.s_len == 0 {
            (self.forest_dp(&mut of), 1)
        } else {
            self.potential_forest_dp(&mut of);
            let base = self.base_factor(&mut of);
            let mut grand = 0u128;
            let mut assignments = 0u64;
            if base > 0 {
                if !self.support_ready {
                    self.compute_support();
                }
                self.reset();
                while self.next_s_assignment() {
                    if self.past_deadline(assignments) {
                        timed_out = true;
                        break;
                    }
                    assignments += 1;
                    let t = self.sparse_pass(base, &mut of);
                    grand = sat_add(grand, t, &mut of);
                }
            }
            (grand, assignments)
        };
        DpCount { total: if of || timed_out { None } else { Some(grand) }, assignments, timed_out }
    }

    /// Pushed-down existence check: stops at the first conditioning
    /// binding whose DP total is positive.
    pub fn exists(&mut self) -> bool {
        if self.rig.is_empty() || self.order.is_empty() {
            return false;
        }
        let mut of = false;
        if self.s_len == 0 {
            return self.forest_dp(&mut of) > 0;
        }
        self.potential_forest_dp(&mut of);
        let base = self.base_factor(&mut of);
        if base == 0 {
            return false;
        }
        if !self.support_ready {
            self.compute_support();
        }
        self.reset();
        while self.next_s_assignment() {
            if self.sparse_pass(base, &mut of) > 0 {
                return true;
            }
        }
        false
    }

    /// Per-variable distinct-binding cardinality: for each query node, the
    /// number of its RIG candidates that occur in at least one answer.
    /// Computed by a top-down participation pass per conditioning binding
    /// — still no tuple materialization.
    pub fn var_cardinalities(&mut self) -> Vec<u64> {
        let n = self.order.len();
        let mut part: Vec<Vec<bool>> = (0..n).map(|p| vec![false; self.cand_len(p)]).collect();
        let mut above: Vec<Vec<bool>> = (0..n).map(|p| vec![false; self.cand_len(p)]).collect();
        if !self.rig.is_empty() && !self.order.is_empty() {
            let mut of = false;
            if self.s_len == 0 {
                if self.forest_dp(&mut of) > 0 {
                    self.mark_participation(&mut part, &mut above);
                }
            } else {
                self.reset();
                while self.next_s_assignment() {
                    if self.forest_dp(&mut of) > 0 {
                        self.mark_participation(&mut part, &mut above);
                    }
                }
            }
        }
        let mut out = vec![0u64; n];
        for (pos, p) in part.iter().enumerate() {
            out[self.order[pos] as usize] = p.iter().filter(|&&b| b).count() as u64;
        }
        out
    }

    /// Marks, for the current (positive-total) conditioning binding, every
    /// candidate that participates in some answer: conditioned bindings
    /// directly, free candidates via a parents-first reachability pass
    /// over positive DP counts.
    fn mark_participation(&self, part: &mut [Vec<bool>], above: &mut [Vec<bool>]) {
        let n = self.order.len();
        for pos in 0..self.s_len {
            part[pos][self.binding[pos] as usize] = true;
        }
        for pos in self.s_len..n {
            match self.parent[pos] {
                None => {
                    for (c, a) in above[pos].iter_mut().enumerate() {
                        *a = self.counts[pos][c] > 0;
                    }
                }
                Some(p) => {
                    for a in above[pos].iter_mut() {
                        *a = false;
                    }
                    let (pa, rest) = above.split_at_mut(pos);
                    let cur = &mut rest[0];
                    for (cp, &ok) in pa[p.pos].iter().enumerate() {
                        if !ok {
                            continue;
                        }
                        let run = run_from(self.rig, p.eid, cp as u32, p.fwd);
                        for &c2 in run.list {
                            if self.counts[pos][c2 as usize] > 0 {
                                cur[c2 as usize] = true;
                            }
                        }
                    }
                }
            }
            for (c, &a) in above[pos].iter().enumerate() {
                if a {
                    part[pos][c] = true;
                }
            }
        }
    }

    /// Advances the lazy expansion to the next answer tuple. The DP runs
    /// once per conditioning binding as the enumeration first crosses into
    /// the free zone (the "conditional re-expansion"); free-zone descent
    /// only ever enters subtrees with a positive extension count.
    fn advance(&mut self) -> bool {
        let n = self.order.len();
        let mut pos;
        if !self.started {
            self.started = true;
            if self.rig.is_empty() || n == 0 {
                self.done = true;
                return false;
            }
            self.cursors[0] = 0;
            pos = 0;
            if self.s_len == 0 {
                let mut of = false;
                if self.forest_dp(&mut of) == 0 {
                    self.done = true;
                    return false;
                }
            }
        } else {
            if self.done {
                return false;
            }
            pos = n - 1;
        }
        loop {
            match self.next_at(pos) {
                Some(local) => {
                    self.binding[pos] = local;
                    pos += 1;
                    if pos == n {
                        return true;
                    }
                    self.cursors[pos] = 0;
                    if pos == self.s_len {
                        let mut of = false;
                        if self.forest_dp(&mut of) == 0 {
                            pos -= 1; // dead conditioning binding
                        }
                    }
                }
                None => {
                    if pos == 0 {
                        self.done = true;
                        return false;
                    }
                    pos -= 1;
                }
            }
        }
    }

    fn fill_tuple(&mut self) {
        for pos in 0..self.order.len() {
            let q = self.order[pos] as usize;
            self.tuple[q] = self.rig.node_at(q, self.binding[pos]);
        }
    }

    /// Streams every answer tuple into `sink` (tuples indexed by query
    /// node, exactly like the MJoin engine). Returns the number of tuples
    /// emitted; a sink returning `false` stops the expansion early.
    /// `finish` is called exactly once.
    pub fn stream<S: ResultSink>(&mut self, sink: &mut S) -> u64 {
        self.reset();
        let mut emitted = 0u64;
        while self.advance() {
            self.fill_tuple();
            emitted += 1;
            if !sink.push(&self.tuple) {
                break;
            }
        }
        sink.finish();
        emitted
    }

    /// Pull-based lazy iterator over the answer tuples.
    pub fn tuples(&mut self) -> FactorizedTuples<'_, 'q, 'r> {
        self.reset();
        FactorizedTuples { fac: self }
    }
}

impl std::fmt::Debug for Factorization<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Factorization")
            .field("order", &self.order)
            .field("conditioned", &self.shape.conditioned)
            .field("extra_edges", &self.shape.extra_edges)
            .finish()
    }
}

/// Lazy pull iterator over a [`Factorization`]'s answer tuples (indexed by
/// query node id). Each `next` advances the underlying expansion by one
/// answer; nothing is precomputed beyond the per-conditioning-binding DP.
pub struct FactorizedTuples<'f, 'q, 'r> {
    fac: &'f mut Factorization<'q, 'r>,
}

impl Iterator for FactorizedTuples<'_, '_, '_> {
    type Item = Vec<NodeId>;

    fn next(&mut self) -> Option<Vec<NodeId>> {
        if self.fac.advance() {
            self.fac.fill_tuple();
            Some(self.fac.tuple.clone())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collect, count, EnumOptions};
    use rig_graph::GraphBuilder;
    use rig_index::{build_rig, RigOptions};
    use rig_query::EdgeKind;
    use rig_reach::BflIndex;
    use rig_sim::SimContext;

    fn rig_for(g: &rig_graph::DataGraph, q: &PatternQuery) -> Rig {
        let bfl = BflIndex::new(g);
        let ctx = SimContext::new(g, q, &bfl);
        build_rig(&ctx, &bfl, &RigOptions::default())
    }

    /// The Fig. 2(b)-style fixture used by the session tests: 3 As, 4 Bs,
    /// 3 Cs with a couple of A→B→C occurrences.
    fn fig2() -> rig_graph::DataGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_node(0);
        }
        for _ in 0..4 {
            b.add_node(1);
        }
        for _ in 0..3 {
            b.add_node(2);
        }
        for (u, v) in
            [(1, 3), (1, 7), (3, 8), (8, 7), (2, 5), (2, 9), (5, 9), (5, 8), (0, 4), (4, 7), (6, 0)]
        {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn shape_analysis_tree_and_cyclic() {
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Direct);
        let s = FactorizationShape::analyze(&q);
        assert!(s.is_tree());
        assert!(s.conditioned.is_empty());

        q.add_edge(0, 2, EdgeKind::Direct); // triangle
        let s = FactorizationShape::analyze(&q);
        assert_eq!(s.extra_edges.len(), 1);
        assert_eq!(s.conditioned.len(), 1);
    }

    #[test]
    fn fig2_count_matches_mjoin() {
        let g = fig2();
        let q = rig_query::fig2_query();
        let rig = rig_for(&g, &q);
        let mjoin = count(&q, &rig, &EnumOptions::default());
        let mut f = Factorization::new(&q, &rig);
        let dp = f.count();
        assert_eq!(dp.total, Some(mjoin.count as u128));
        assert!(f.exists());
    }

    #[test]
    fn tree_query_tuples_match_collect() {
        let g = fig2();
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Reachability);
        let rig = rig_for(&g, &q);
        let (mut expect, _) = collect(&q, &rig, &EnumOptions::default(), usize::MAX);
        expect.sort();
        let mut f = Factorization::new(&q, &rig);
        assert!(f.is_tree());
        let mut got: Vec<_> = f.tuples().collect();
        got.sort();
        assert_eq!(got, expect);
        assert_eq!(f.count().total, Some(expect.len() as u128));
    }

    #[test]
    fn cyclic_query_tuples_and_count_match() {
        let mut b = GraphBuilder::new();
        for _ in 0..6 {
            b.add_node(0);
        }
        for (u, v) in [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (1, 4), (4, 5), (2, 5)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        let mut q = PatternQuery::new(vec![0, 0, 0]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Direct);
        q.add_edge(0, 2, EdgeKind::Reachability); // cyclic chord
        let rig = rig_for(&g, &q);
        let (mut expect, _) = collect(&q, &rig, &EnumOptions::default(), usize::MAX);
        expect.sort();
        let mut f = Factorization::new(&q, &rig);
        assert!(!f.is_tree());
        let mut got: Vec<_> = f.tuples().collect();
        got.sort();
        assert_eq!(got, expect);
        assert_eq!(f.count().total, Some(expect.len() as u128));
        assert_eq!(f.exists(), !expect.is_empty());
    }

    #[test]
    fn var_cardinalities_match_enumeration() {
        let g = fig2();
        let q = rig_query::fig2_query();
        let rig = rig_for(&g, &q);
        let (tuples, _) = collect(&q, &rig, &EnumOptions::default(), usize::MAX);
        let mut f = Factorization::new(&q, &rig);
        let cards = f.var_cardinalities();
        for qn in 0..q.num_nodes() {
            let mut vals: Vec<_> = tuples.iter().map(|t| t[qn]).collect();
            vals.sort_unstable();
            vals.dedup();
            assert_eq!(cards[qn], vals.len() as u64, "var {qn}");
        }
    }

    #[test]
    fn sink_early_stop_is_honored() {
        let g = fig2();
        let mut q = PatternQuery::new(vec![1, 2]);
        q.add_edge(0, 1, EdgeKind::Reachability);
        let rig = rig_for(&g, &q);
        let mut f = Factorization::new(&q, &rig);
        let mut sink = crate::FirstKSink::new(1);
        let emitted = f.stream(&mut sink);
        assert_eq!(emitted, 1);
        assert_eq!(sink.tuples.len(), 1);
    }
}
