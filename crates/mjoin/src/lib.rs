//! MJoin — multiway-intersection answer enumeration (§5 of the paper).
//!
//! MJoin joins *one query node at a time* instead of one query edge at a
//! time: at search step `i` it intersects the candidate set `cos(q_i)` with
//! the RIG adjacency lists of every already-bound neighbor of `q_i`
//! (Alg. 5, lines 3–7), then iterates the surviving nodes. Because only
//! distinct join-key values are ever enumerated, no intermediate tuples are
//! materialized, giving the worst-case-optimal runtime of Thm. 5.2 and the
//! `O(n · MaxCos)` space bound of Thm. 5.1.
//!
//! The engine runs over the RIG's **CSR layout in candidate-local id
//! space** (see `rig_index`): every adjacency operand at step `i` is a
//! sorted slice of `cos(q_i)`-local ids, so the base candidate set never
//! needs to be intersected in (it is the full local range) and the
//! unconstrained root iterates `0..|cos(q_0)|` without cloning anything.
//! Multiway intersections pick the smallest operand as the driver and
//! probe the rest with galloping cursors (or O(1) dense-bitmap tests),
//! writing survivors into a per-depth scratch buffer that is reused across
//! steps — steady-state enumeration performs **zero heap allocations per
//! recursion step** (asserted by the `alloc_steady` test).
//!
//! The search order is pluggable (§5.2): [`SearchOrder::Jo`] (greedy on RIG
//! candidate cardinalities), [`SearchOrder::Ri`] (topology-only), and
//! [`SearchOrder::Bj`] (dynamic-programming optimal left-deep order, which
//! does not scale past ~16 nodes — Table 4 quantifies all three).
//!
//! An *injective* mode turns homomorphism enumeration into isomorphism-style
//! enumeration (the ISO comparison of Fig. 9).

pub(crate) mod order;
mod parallel;
pub mod reference;

pub use order::{compute_order, edge_cardinality, is_connected_order, SearchOrder};
pub use parallel::par_count;

use std::time::{Duration, Instant};

use rig_bitset::Bitset;
use rig_graph::NodeId;
use rig_index::{AdjRun, Rig};
use rig_query::{PatternQuery, QNode};

/// Options for [`enumerate`].
#[derive(Debug, Clone, Copy)]
pub struct EnumOptions {
    pub order: SearchOrder,
    /// Stop after this many occurrences (the paper caps at 10^7).
    pub limit: Option<u64>,
    /// Wall-clock budget (the paper stops queries at 10 minutes).
    pub timeout: Option<Duration>,
    /// Enforce injectivity (isomorphism-style matching).
    pub injective: bool,
}

impl Default for EnumOptions {
    fn default() -> Self {
        EnumOptions { order: SearchOrder::Jo, limit: None, timeout: None, injective: false }
    }
}

/// Outcome of an enumeration run.
#[derive(Debug, Clone)]
pub struct EnumResult {
    /// Occurrences produced (capped by `limit`).
    pub count: u64,
    /// True if the wall-clock budget expired before completion.
    pub timed_out: bool,
    /// True if the occurrence limit stopped the run.
    pub limit_hit: bool,
    /// The search order used.
    pub order: Vec<QNode>,
    /// Recursion steps taken (search-tree nodes visited).
    pub steps: u64,
}

/// Enumerates the answer of `query` over the RIG, invoking `visit` with
/// each occurrence tuple **indexed by query node id** (not search
/// position). Returning `false` from `visit` stops the enumeration.
pub fn enumerate(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    visit: impl FnMut(&[NodeId]) -> bool,
) -> EnumResult {
    enumerate_inner(query, rig, opts, None, visit)
}

/// Like [`enumerate`], but only explores bindings of the *first*
/// search-order node that lie in `root_filter` — the partitioning hook the
/// parallel driver uses.
pub fn enumerate_restricted(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    root_filter: &Bitset,
    visit: impl FnMut(&[NodeId]) -> bool,
) -> EnumResult {
    enumerate_inner(query, rig, opts, Some(root_filter), visit)
}

fn enumerate_inner(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    root_filter: Option<&Bitset>,
    mut visit: impl FnMut(&[NodeId]) -> bool,
) -> EnumResult {
    let order = compute_order(query, rig, opts.order);
    let mut result =
        EnumResult { count: 0, timed_out: false, limit_hit: false, order: order.clone(), steps: 0 };
    if rig.is_empty() || query.num_nodes() == 0 {
        return result;
    }

    // Pre-resolve, for each search step i, the edges connecting order[i]
    // to earlier-bound query nodes: (edge id, bound search position,
    // bound_is_source).
    let n = order.len();
    let mut pos_of = vec![usize::MAX; n];
    for (i, &q) in order.iter().enumerate() {
        pos_of[q as usize] = i;
    }
    let mut constraints: Vec<Vec<(u32, usize, bool)>> = vec![Vec::new(); n];
    for (eid, e) in query.edges().iter().enumerate() {
        let pf = pos_of[e.from as usize];
        let pt = pos_of[e.to as usize];
        if pf < pt {
            // `from` bound first: at step pt, follow successors of t[pf]
            constraints[pt].push((eid as u32, pf, true));
        } else {
            // `to` bound first: at step pf, follow predecessors of t[pt]
            constraints[pf].push((eid as u32, pt, false));
        }
    }

    // Per-depth reusable state: every buffer is sized for the worst case up
    // front (|cos(q_i)| bounds any intersection at step i — the Thm. 5.1
    // space bound), so steady-state recursion never reallocates.
    let steps: Vec<Step<'_>> = order
        .iter()
        .enumerate()
        .map(|(i, &q)| {
            let n_local = rig.candidates(q as usize).len();
            Step {
                q: q as usize,
                n_local: n_local as u32,
                ops: Vec::with_capacity(constraints[i].len()),
                cursors: Vec::with_capacity(constraints[i].len()),
                buf: Vec::with_capacity(n_local),
            }
        })
        .collect();
    // Root partition (parallel driver): global ids -> root-local ids.
    let root_locals: Option<Vec<u32>> = root_filter.map(|f| {
        let rq = order[0] as usize;
        f.iter().filter_map(|v| rig.local_of(rq, v)).collect()
    });

    let mut tuple_local = vec![0u32; n];
    let mut tuple_global = vec![0 as NodeId; n];
    let mut out_tuple = vec![0 as NodeId; n];
    let mut engine = Engine {
        rig,
        opts,
        constraints: &constraints,
        steps,
        root_locals,
        started: Instant::now(),
        check_counter: 0,
        result: &mut result,
    };
    engine.recurse(0, &mut tuple_local, &mut tuple_global, &mut |tg: &[NodeId]| {
        for (i, &q) in order.iter().enumerate() {
            out_tuple[q as usize] = tg[i];
        }
        visit(&out_tuple)
    });
    result
}

/// Counts occurrences (no per-tuple callback overhead beyond counting).
pub fn count(query: &PatternQuery, rig: &Rig, opts: &EnumOptions) -> EnumResult {
    enumerate(query, rig, opts, |_| true)
}

/// Collects up to `max` occurrence tuples (indexed by query node).
pub fn collect(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    max: usize,
) -> (Vec<Vec<NodeId>>, EnumResult) {
    let mut out = Vec::new();
    let r = enumerate(query, rig, opts, |t| {
        if out.len() < max {
            out.push(t.to_vec());
        }
        out.len() < max
    });
    (out, r)
}

/// Reusable per-depth scratch (allocated once per [`enumerate`] call).
struct Step<'r> {
    /// Query node bound at this depth.
    q: usize,
    /// `|cos(q)|` — the full local-id range.
    n_local: u32,
    /// Operand runs gathered for the current binding of earlier nodes.
    ops: Vec<AdjRun<'r>>,
    /// Galloping cursors, parallel to `ops`.
    cursors: Vec<usize>,
    /// Materialized intersection (local ids); capacity = `n_local`.
    buf: Vec<u32>,
}

/// Where the candidates of the current step come from.
enum Src<'r> {
    /// Unconstrained: the full local range `0..n_local` (no clone of the
    /// base candidate set).
    Range,
    /// Unconstrained root restricted by the parallel driver's partition.
    Root,
    /// Exactly one operand: iterate its run in place.
    Slice(&'r [u32]),
    /// Two or more operands: the intersection materialized in `buf`.
    Buf,
}

struct Engine<'a, 'r> {
    rig: &'r Rig,
    opts: &'a EnumOptions,
    constraints: &'a [Vec<(u32, usize, bool)>],
    steps: Vec<Step<'r>>,
    root_locals: Option<Vec<u32>>,
    started: Instant,
    check_counter: u32,
    result: &'a mut EnumResult,
}

impl<'r> Engine<'_, 'r> {
    fn stop(&mut self) -> bool {
        if self.result.timed_out || self.result.limit_hit {
            return true;
        }
        if let Some(limit) = self.opts.limit {
            if self.result.count >= limit {
                self.result.limit_hit = true;
                return true;
            }
        }
        self.check_counter += 1;
        if self.check_counter >= 1024 {
            self.check_counter = 0;
            if let Some(budget) = self.opts.timeout {
                if self.started.elapsed() > budget {
                    self.result.timed_out = true;
                    return true;
                }
            }
        }
        false
    }

    /// Returns false when enumeration must stop entirely.
    fn recurse(
        &mut self,
        i: usize,
        tuple_local: &mut [u32],
        tuple_global: &mut [NodeId],
        emit: &mut impl FnMut(&[NodeId]) -> bool,
    ) -> bool {
        if i == self.steps.len() {
            self.result.count += 1;
            let keep = emit(tuple_global);
            if let Some(limit) = self.opts.limit {
                if self.result.count >= limit {
                    self.result.limit_hit = true;
                    return false;
                }
            }
            return keep;
        }
        if self.stop() {
            return false;
        }
        self.result.steps += 1;

        // Gather the adjacency runs of all bound neighbors (Alg. 5 lines
        // 4-7). All runs live in cos(q_i)-local id space, so cos(q_i)
        // itself never has to join the intersection.
        self.steps[i].ops.clear();
        for &(eid, bound_pos, bound_is_source) in &self.constraints[i] {
            let bound_local = tuple_local[bound_pos];
            let run = if bound_is_source {
                self.rig.successors_local(eid, bound_local)
            } else {
                self.rig.predecessors_local(eid, bound_local)
            };
            if run.is_empty() {
                return true; // empty adjacency: dead branch
            }
            self.steps[i].ops.push(run);
        }

        let (src, count) = match self.steps[i].ops.len() {
            0 => {
                if i == 0 && self.root_locals.is_some() {
                    (Src::Root, self.root_locals.as_ref().map_or(0, |r| r.len()))
                } else {
                    (Src::Range, self.steps[i].n_local as usize)
                }
            }
            1 => {
                let run = self.steps[i].ops[0];
                (Src::Slice(run.list), run.len())
            }
            _ => {
                let len = self.intersect_into(i);
                (Src::Buf, len)
            }
        };

        let q = self.steps[i].q;
        for k in 0..count {
            let v_local = match src {
                Src::Range => k as u32,
                Src::Root => self.root_locals.as_ref().expect("root partition")[k],
                Src::Slice(list) => list[k],
                Src::Buf => self.steps[i].buf[k],
            };
            let v_global = self.rig.node_at(q, v_local);
            if self.opts.injective && tuple_global[..i].contains(&v_global) {
                continue;
            }
            tuple_local[i] = v_local;
            tuple_global[i] = v_global;
            if !self.recurse(i + 1, tuple_local, tuple_global, emit) {
                return false;
            }
        }
        true
    }

    /// Materializes the multiway intersection of `steps[i].ops` into
    /// `steps[i].buf` (smallest operand drives, the rest are probed with
    /// galloping cursors or dense-bitmap tests) and returns its length.
    /// Allocation-free: the buffer and cursor vector were pre-sized.
    fn intersect_into(&mut self, i: usize) -> usize {
        let step = &mut self.steps[i];
        let driver_at =
            (0..step.ops.len()).min_by_key(|&k| step.ops[k].len()).expect("at least two operands");
        step.ops.swap(0, driver_at);
        let driver = step.ops[0];
        step.buf.clear();
        // Cheap nonemptiness early exit: disjoint value ranges can never
        // intersect, so skip the probe loop entirely.
        let lo = step.ops.iter().map(|o| o.list[0]).max().expect("nonempty");
        let hi =
            step.ops.iter().map(|o| *o.list.last().expect("nonempty")).min().expect("nonempty");
        if lo > hi {
            return 0;
        }
        step.cursors.clear();
        step.cursors.resize(step.ops.len(), 0);
        'outer: for &v in driver.list {
            for k in 1..step.ops.len() {
                if !step.ops[k].contains_from(&mut step.cursors[k], v) {
                    continue 'outer;
                }
            }
            step.buf.push(v);
        }
        step.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::{DataGraph, GraphBuilder};
    use rig_index::{build_rig, RigOptions};
    use rig_query::{fig2_query, EdgeKind, PatternQuery};
    use rig_reach::BflIndex;
    use rig_sim::SimContext;

    fn fig2_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_node(0);
        }
        for _ in 0..4 {
            b.add_node(1);
        }
        for _ in 0..3 {
            b.add_node(2);
        }
        b.add_edge(1, 3);
        b.add_edge(1, 7);
        b.add_edge(3, 8);
        b.add_edge(8, 7);
        b.add_edge(2, 5);
        b.add_edge(2, 9);
        b.add_edge(5, 9);
        b.add_edge(5, 8);
        b.add_edge(0, 4);
        b.add_edge(4, 7);
        b.add_edge(6, 0);
        b.build()
    }

    fn rig_for(g: &DataGraph, q: &PatternQuery) -> Rig {
        let bfl = BflIndex::new(g);
        let ctx = SimContext::new(g, q, &bfl);
        build_rig(&ctx, &bfl, &RigOptions::exact())
    }

    /// The running example answer: {(a1,b0,c0), (a2,b2,c2)} — and notably
    /// NOT (a2,b2,c0), whose RIG edge survives double simulation.
    #[test]
    fn fig2_answer_exact() {
        let g = fig2_graph();
        let q = fig2_query();
        let rig = rig_for(&g, &q);
        for order in [SearchOrder::Jo, SearchOrder::Ri, SearchOrder::Bj] {
            let (tuples, r) = collect(&q, &rig, &EnumOptions { order, ..Default::default() }, 100);
            let mut sorted = tuples.clone();
            sorted.sort();
            assert_eq!(sorted, vec![vec![1, 3, 7], vec![2, 5, 9]], "{order:?}");
            assert_eq!(r.count, 2);
            assert!(!r.timed_out && !r.limit_hit);
        }
    }

    #[test]
    fn limit_and_injective() {
        let g = fig2_graph();
        let q = fig2_query();
        let rig = rig_for(&g, &q);
        let r = count(&q, &rig, &EnumOptions { limit: Some(1), ..Default::default() });
        assert_eq!(r.count, 1);
        assert!(r.limit_hit);
        // all answers here are injective anyway
        let ri = count(&q, &rig, &EnumOptions { injective: true, ..Default::default() });
        assert_eq!(ri.count, 2);
    }

    /// Homomorphism vs isomorphism: a pattern with two same-label nodes can
    /// map both to one data node; injective mode must exclude that.
    #[test]
    fn injective_excludes_non_injective_matches() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        let y = b.add_node(1);
        b.add_edge(x, y);
        let g = b.build();
        // pattern: two A-labeled nodes both with a direct edge to one B node
        let mut q = PatternQuery::new(vec![0, 0, 1]);
        q.add_edge(0, 2, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Direct);
        let rig = rig_for(&g, &q);
        let homo = count(&q, &rig, &EnumOptions::default());
        assert_eq!(homo.count, 1); // both pattern A's -> x
        let iso = count(&q, &rig, &EnumOptions { injective: true, ..Default::default() });
        assert_eq!(iso.count, 0);
    }

    /// Cross-check MJoin against brute force on random instances.
    #[test]
    fn randomized_equivalence_with_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use rig_reach::Reachability;
        for seed in 0..15u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = GraphBuilder::new();
            let n = 12;
            for _ in 0..n {
                b.add_node(rng.gen_range(0..2));
            }
            for _ in 0..26 {
                let u = rng.gen_range(0..n) as NodeId;
                let v = rng.gen_range(0..n) as NodeId;
                if u != v {
                    b.add_edge(u, v);
                }
            }
            let g = b.build();
            let nq = rng.gen_range(2..4usize);
            let mut q = PatternQuery::new((0..nq).map(|_| rng.gen_range(0..2)).collect());
            for i in 1..nq as u32 {
                let kind =
                    if rng.gen_bool(0.5) { EdgeKind::Direct } else { EdgeKind::Reachability };
                q.add_edge(i - 1, i, kind);
            }
            if nq == 3 && rng.gen_bool(0.7) {
                q.add_edge(0, 2, EdgeKind::Reachability);
            }
            // brute force
            let bfl = BflIndex::new(&g);
            let mut expect = 0u64;
            let gv = g.num_nodes() as NodeId;
            let mut assign = vec![0 as NodeId; nq];
            #[allow(clippy::too_many_arguments)]
            fn rec(
                d: usize,
                nq: usize,
                gv: NodeId,
                g: &DataGraph,
                q: &PatternQuery,
                bfl: &BflIndex,
                assign: &mut Vec<NodeId>,
                count: &mut u64,
            ) {
                if d == nq {
                    *count += 1;
                    return;
                }
                for v in 0..gv {
                    if g.label(v) != q.label(d as u32) {
                        continue;
                    }
                    assign[d] = v;
                    let ok = q.edges().iter().all(|e| {
                        let (f, t) = (e.from as usize, e.to as usize);
                        if f > d || t > d {
                            return true;
                        }
                        match e.kind {
                            EdgeKind::Direct => g.has_edge(assign[f], assign[t]),
                            EdgeKind::Reachability => bfl.reaches(assign[f], assign[t]),
                        }
                    });
                    if ok {
                        rec(d + 1, nq, gv, g, q, bfl, assign, count);
                    }
                }
            }
            rec(0, nq, gv, &g, &q, &bfl, &mut assign, &mut expect);
            let rig = rig_for(&g, &q);
            for order in [SearchOrder::Jo, SearchOrder::Ri, SearchOrder::Bj] {
                let r = count_with(&q, &rig, order);
                assert_eq!(r.count, expect, "seed={seed} {order:?}");
            }
        }
    }

    fn count_with(q: &PatternQuery, rig: &Rig, order: SearchOrder) -> EnumResult {
        count(q, rig, &EnumOptions { order, ..Default::default() })
    }

    /// Tuples come out indexed by query node regardless of search order.
    #[test]
    fn tuple_indexing_is_by_query_node() {
        let g = fig2_graph();
        let q = fig2_query();
        let rig = rig_for(&g, &q);
        for order in [SearchOrder::Jo, SearchOrder::Ri] {
            let (tuples, _) = collect(&q, &rig, &EnumOptions { order, ..Default::default() }, 10);
            for t in &tuples {
                assert_eq!(g.label(t[0]), 0, "{order:?}"); // A slot holds an a-node
                assert_eq!(g.label(t[1]), 1);
                assert_eq!(g.label(t[2]), 2);
            }
        }
    }

    #[test]
    fn empty_rig_returns_zero() {
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(1);
        let g = b.build(); // no edges
        let mut q = PatternQuery::new(vec![0, 1]);
        q.add_edge(0, 1, EdgeKind::Direct);
        let rig = rig_for(&g, &q);
        let r = count(&q, &rig, &EnumOptions::default());
        assert_eq!(r.count, 0);
        assert_eq!(r.steps, 0);
    }
}
