//! MJoin — multiway-intersection answer enumeration (§5 of the paper).
//!
//! MJoin joins *one query node at a time* instead of one query edge at a
//! time: at search step `i` it intersects the candidate set `cos(q_i)` with
//! the RIG adjacency lists of every already-bound neighbor of `q_i`
//! (Alg. 5, lines 3–7), then iterates the surviving nodes. Because only
//! distinct join-key values are ever enumerated, no intermediate tuples are
//! materialized, giving the worst-case-optimal runtime of Thm. 5.2 and the
//! `O(n · MaxCos)` space bound of Thm. 5.1.
//!
//! The search order is pluggable (§5.2): [`SearchOrder::Jo`] (greedy on RIG
//! candidate cardinalities), [`SearchOrder::Ri`] (topology-only), and
//! [`SearchOrder::Bj`] (dynamic-programming optimal left-deep order, which
//! does not scale past ~16 nodes — Table 4 quantifies all three).
//!
//! An *injective* mode turns homomorphism enumeration into isomorphism-style
//! enumeration (the ISO comparison of Fig. 9).

mod order;
mod parallel;

pub use order::{compute_order, edge_cardinality, is_connected_order, SearchOrder};
pub use parallel::par_count;

use std::time::{Duration, Instant};

use rig_bitset::Bitset;
use rig_graph::NodeId;
use rig_index::Rig;
use rig_query::{PatternQuery, QNode};

/// Options for [`enumerate`].
#[derive(Debug, Clone, Copy)]
pub struct EnumOptions {
    pub order: SearchOrder,
    /// Stop after this many occurrences (the paper caps at 10^7).
    pub limit: Option<u64>,
    /// Wall-clock budget (the paper stops queries at 10 minutes).
    pub timeout: Option<Duration>,
    /// Enforce injectivity (isomorphism-style matching).
    pub injective: bool,
}

impl Default for EnumOptions {
    fn default() -> Self {
        EnumOptions { order: SearchOrder::Jo, limit: None, timeout: None, injective: false }
    }
}

/// Outcome of an enumeration run.
#[derive(Debug, Clone)]
pub struct EnumResult {
    /// Occurrences produced (capped by `limit`).
    pub count: u64,
    /// True if the wall-clock budget expired before completion.
    pub timed_out: bool,
    /// True if the occurrence limit stopped the run.
    pub limit_hit: bool,
    /// The search order used.
    pub order: Vec<QNode>,
    /// Recursion steps taken (search-tree nodes visited).
    pub steps: u64,
}

/// Enumerates the answer of `query` over the RIG, invoking `visit` with
/// each occurrence tuple **indexed by query node id** (not search
/// position). Returning `false` from `visit` stops the enumeration.
pub fn enumerate(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    visit: impl FnMut(&[NodeId]) -> bool,
) -> EnumResult {
    enumerate_inner(query, rig, opts, None, visit)
}

/// Like [`enumerate`], but only explores bindings of the *first*
/// search-order node that lie in `root_filter` — the partitioning hook the
/// parallel driver uses.
pub fn enumerate_restricted(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    root_filter: &Bitset,
    visit: impl FnMut(&[NodeId]) -> bool,
) -> EnumResult {
    enumerate_inner(query, rig, opts, Some(root_filter), visit)
}

fn enumerate_inner(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    root_filter: Option<&Bitset>,
    mut visit: impl FnMut(&[NodeId]) -> bool,
) -> EnumResult {
    let order = compute_order(query, rig, opts.order);
    let mut result =
        EnumResult { count: 0, timed_out: false, limit_hit: false, order: order.clone(), steps: 0 };
    if rig.is_empty() || query.num_nodes() == 0 {
        return result;
    }

    // Pre-resolve, for each search step i, the edges connecting order[i]
    // to earlier-bound query nodes: (edge id, bound search position,
    // bound_is_source).
    let n = order.len();
    let mut pos_of = vec![usize::MAX; n];
    for (i, &q) in order.iter().enumerate() {
        pos_of[q as usize] = i;
    }
    let mut constraints: Vec<Vec<(u32, usize, bool)>> = vec![Vec::new(); n];
    for (eid, e) in query.edges().iter().enumerate() {
        let pf = pos_of[e.from as usize];
        let pt = pos_of[e.to as usize];
        if pf < pt {
            // `from` bound first: at step pt, follow successors of t[pf]
            constraints[pt].push((eid as u32, pf, true));
        } else {
            // `to` bound first: at step pf, follow predecessors of t[pt]
            constraints[pf].push((eid as u32, pt, false));
        }
    }

    let mut tuple_by_pos = vec![0 as NodeId; n];
    let started = Instant::now();
    let mut engine = Engine {
        rig,
        opts,
        order: &order,
        constraints: &constraints,
        root_filter,
        started,
        check_counter: 0,
        result: &mut result,
    };
    let mut out_tuple = vec![0 as NodeId; n];
    engine.recurse(0, &mut tuple_by_pos, &mut |tuple_by_pos, eng| {
        for (i, &q) in eng.order.iter().enumerate() {
            out_tuple[q as usize] = tuple_by_pos[i];
        }
        visit(&out_tuple)
    });
    result
}

/// Counts occurrences (no per-tuple callback overhead beyond counting).
pub fn count(query: &PatternQuery, rig: &Rig, opts: &EnumOptions) -> EnumResult {
    enumerate(query, rig, opts, |_| true)
}

/// Collects up to `max` occurrence tuples (indexed by query node).
pub fn collect(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    max: usize,
) -> (Vec<Vec<NodeId>>, EnumResult) {
    let mut out = Vec::new();
    let r = enumerate(query, rig, opts, |t| {
        if out.len() < max {
            out.push(t.to_vec());
        }
        out.len() < max
    });
    (out, r)
}

struct Engine<'a> {
    rig: &'a Rig,
    opts: &'a EnumOptions,
    order: &'a [QNode],
    constraints: &'a [Vec<(u32, usize, bool)>],
    root_filter: Option<&'a Bitset>,
    started: Instant,
    check_counter: u32,
    result: &'a mut EnumResult,
}

impl Engine<'_> {
    fn stop(&mut self) -> bool {
        if self.result.timed_out || self.result.limit_hit {
            return true;
        }
        if let Some(limit) = self.opts.limit {
            if self.result.count >= limit {
                self.result.limit_hit = true;
                return true;
            }
        }
        self.check_counter += 1;
        if self.check_counter >= 1024 {
            self.check_counter = 0;
            if let Some(budget) = self.opts.timeout {
                if self.started.elapsed() > budget {
                    self.result.timed_out = true;
                    return true;
                }
            }
        }
        false
    }

    /// Returns false when enumeration must stop entirely.
    fn recurse(
        &mut self,
        i: usize,
        tuple: &mut [NodeId],
        emit: &mut impl FnMut(&[NodeId], &Engine<'_>) -> bool,
    ) -> bool {
        if i == self.order.len() {
            self.result.count += 1;
            let keep = emit(tuple, self);
            if let Some(limit) = self.opts.limit {
                if self.result.count >= limit {
                    self.result.limit_hit = true;
                    return false;
                }
            }
            return keep;
        }
        if self.stop() {
            return false;
        }
        self.result.steps += 1;
        let q = self.order[i];

        // Multi-way intersection of cos(q) with the adjacency lists of all
        // bound neighbors (Alg. 5 lines 4-7).
        let mut operands: Vec<&Bitset> = Vec::with_capacity(self.constraints[i].len());
        for &(eid, bound_pos, bound_is_source) in &self.constraints[i] {
            let bound_node = tuple[bound_pos];
            let adj = if bound_is_source {
                self.rig.successors(eid, bound_node)
            } else {
                self.rig.predecessors(eid, bound_node)
            };
            match adj {
                Some(s) => operands.push(s),
                None => return true, // empty adjacency: dead branch
            }
        }
        let base = &self.rig.cos[q as usize];
        if i == 0 {
            if let Some(filter) = self.root_filter {
                operands.push(filter);
            }
        }
        let cos_i = if operands.is_empty() {
            base.clone()
        } else {
            let mut all: Vec<&Bitset> = Vec::with_capacity(operands.len() + 1);
            all.push(base);
            all.extend(operands);
            Bitset::multi_and(&all)
        };
        for v in cos_i.iter() {
            if self.opts.injective && tuple[..i].contains(&v) {
                continue;
            }
            tuple[i] = v;
            if !self.recurse(i + 1, tuple, emit) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::{DataGraph, GraphBuilder};
    use rig_index::{build_rig, RigOptions};
    use rig_query::{fig2_query, EdgeKind, PatternQuery};
    use rig_reach::BflIndex;
    use rig_sim::SimContext;

    fn fig2_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_node(0);
        }
        for _ in 0..4 {
            b.add_node(1);
        }
        for _ in 0..3 {
            b.add_node(2);
        }
        b.add_edge(1, 3);
        b.add_edge(1, 7);
        b.add_edge(3, 8);
        b.add_edge(8, 7);
        b.add_edge(2, 5);
        b.add_edge(2, 9);
        b.add_edge(5, 9);
        b.add_edge(5, 8);
        b.add_edge(0, 4);
        b.add_edge(4, 7);
        b.add_edge(6, 0);
        b.build()
    }

    fn rig_for(g: &DataGraph, q: &PatternQuery) -> Rig {
        let bfl = BflIndex::new(g);
        let ctx = SimContext::new(g, q, &bfl);
        build_rig(&ctx, &bfl, &RigOptions::exact())
    }

    /// The running example answer: {(a1,b0,c0), (a2,b2,c2)} — and notably
    /// NOT (a2,b2,c0), whose RIG edge survives double simulation.
    #[test]
    fn fig2_answer_exact() {
        let g = fig2_graph();
        let q = fig2_query();
        let rig = rig_for(&g, &q);
        for order in [SearchOrder::Jo, SearchOrder::Ri, SearchOrder::Bj] {
            let (tuples, r) = collect(&q, &rig, &EnumOptions { order, ..Default::default() }, 100);
            let mut sorted = tuples.clone();
            sorted.sort();
            assert_eq!(sorted, vec![vec![1, 3, 7], vec![2, 5, 9]], "{order:?}");
            assert_eq!(r.count, 2);
            assert!(!r.timed_out && !r.limit_hit);
        }
    }

    #[test]
    fn limit_and_injective() {
        let g = fig2_graph();
        let q = fig2_query();
        let rig = rig_for(&g, &q);
        let r = count(&q, &rig, &EnumOptions { limit: Some(1), ..Default::default() });
        assert_eq!(r.count, 1);
        assert!(r.limit_hit);
        // all answers here are injective anyway
        let ri = count(&q, &rig, &EnumOptions { injective: true, ..Default::default() });
        assert_eq!(ri.count, 2);
    }

    /// Homomorphism vs isomorphism: a pattern with two same-label nodes can
    /// map both to one data node; injective mode must exclude that.
    #[test]
    fn injective_excludes_non_injective_matches() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        let y = b.add_node(1);
        b.add_edge(x, y);
        let g = b.build();
        // pattern: two A-labeled nodes both with a direct edge to one B node
        let mut q = PatternQuery::new(vec![0, 0, 1]);
        q.add_edge(0, 2, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Direct);
        let rig = rig_for(&g, &q);
        let homo = count(&q, &rig, &EnumOptions::default());
        assert_eq!(homo.count, 1); // both pattern A's -> x
        let iso = count(&q, &rig, &EnumOptions { injective: true, ..Default::default() });
        assert_eq!(iso.count, 0);
    }

    /// Cross-check MJoin against brute force on random instances.
    #[test]
    fn randomized_equivalence_with_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use rig_reach::Reachability;
        for seed in 0..15u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = GraphBuilder::new();
            let n = 12;
            for _ in 0..n {
                b.add_node(rng.gen_range(0..2));
            }
            for _ in 0..26 {
                let u = rng.gen_range(0..n) as NodeId;
                let v = rng.gen_range(0..n) as NodeId;
                if u != v {
                    b.add_edge(u, v);
                }
            }
            let g = b.build();
            let nq = rng.gen_range(2..4usize);
            let mut q = PatternQuery::new((0..nq).map(|_| rng.gen_range(0..2)).collect());
            for i in 1..nq as u32 {
                let kind =
                    if rng.gen_bool(0.5) { EdgeKind::Direct } else { EdgeKind::Reachability };
                q.add_edge(i - 1, i, kind);
            }
            if nq == 3 && rng.gen_bool(0.7) {
                q.add_edge(0, 2, EdgeKind::Reachability);
            }
            // brute force
            let bfl = BflIndex::new(&g);
            let mut expect = 0u64;
            let gv = g.num_nodes() as NodeId;
            let mut assign = vec![0 as NodeId; nq];
            #[allow(clippy::too_many_arguments)]
            fn rec(
                d: usize,
                nq: usize,
                gv: NodeId,
                g: &DataGraph,
                q: &PatternQuery,
                bfl: &BflIndex,
                assign: &mut Vec<NodeId>,
                count: &mut u64,
            ) {
                if d == nq {
                    *count += 1;
                    return;
                }
                for v in 0..gv {
                    if g.label(v) != q.label(d as u32) {
                        continue;
                    }
                    assign[d] = v;
                    let ok = q.edges().iter().all(|e| {
                        let (f, t) = (e.from as usize, e.to as usize);
                        if f > d || t > d {
                            return true;
                        }
                        match e.kind {
                            EdgeKind::Direct => g.has_edge(assign[f], assign[t]),
                            EdgeKind::Reachability => bfl.reaches(assign[f], assign[t]),
                        }
                    });
                    if ok {
                        rec(d + 1, nq, gv, g, q, bfl, assign, count);
                    }
                }
            }
            rec(0, nq, gv, &g, &q, &bfl, &mut assign, &mut expect);
            let rig = rig_for(&g, &q);
            for order in [SearchOrder::Jo, SearchOrder::Ri, SearchOrder::Bj] {
                let r = count_with(&q, &rig, order);
                assert_eq!(r.count, expect, "seed={seed} {order:?}");
            }
        }
    }

    fn count_with(q: &PatternQuery, rig: &Rig, order: SearchOrder) -> EnumResult {
        count(q, rig, &EnumOptions { order, ..Default::default() })
    }

    /// Tuples come out indexed by query node regardless of search order.
    #[test]
    fn tuple_indexing_is_by_query_node() {
        let g = fig2_graph();
        let q = fig2_query();
        let rig = rig_for(&g, &q);
        for order in [SearchOrder::Jo, SearchOrder::Ri] {
            let (tuples, _) = collect(&q, &rig, &EnumOptions { order, ..Default::default() }, 10);
            for t in &tuples {
                assert_eq!(g.label(t[0]), 0, "{order:?}"); // A slot holds an a-node
                assert_eq!(g.label(t[1]), 1);
                assert_eq!(g.label(t[2]), 2);
            }
        }
    }

    #[test]
    fn empty_rig_returns_zero() {
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(1);
        let g = b.build(); // no edges
        let mut q = PatternQuery::new(vec![0, 1]);
        q.add_edge(0, 1, EdgeKind::Direct);
        let rig = rig_for(&g, &q);
        let r = count(&q, &rig, &EnumOptions::default());
        assert_eq!(r.count, 0);
        assert_eq!(r.steps, 0);
    }
}
