//! MJoin — multiway-intersection answer enumeration (§5 of the paper).
//!
//! MJoin joins *one query node at a time* instead of one query edge at a
//! time: at search step `i` it intersects the candidate set `cos(q_i)` with
//! the RIG adjacency lists of every already-bound neighbor of `q_i`
//! (Alg. 5, lines 3–7), then iterates the surviving nodes. Because only
//! distinct join-key values are ever enumerated, no intermediate tuples are
//! materialized, giving the worst-case-optimal runtime of Thm. 5.2 and the
//! `O(n · MaxCos)` space bound of Thm. 5.1.
//!
//! The engine runs over the RIG's **CSR layout in candidate-local id
//! space** (see `rig_index`): every adjacency operand at step `i` is a
//! sorted slice of `cos(q_i)`-local ids, so the base candidate set never
//! needs to be intersected in (it is the full local range) and the
//! unconstrained root iterates `0..|cos(q_0)|` without cloning anything.
//! Multiway intersections pick the smallest operand as the driver and
//! probe the rest with galloping cursors (or O(1) dense-bitmap tests),
//! writing survivors into a per-depth scratch buffer that is reused across
//! steps — steady-state enumeration performs **zero heap allocations per
//! recursion step** (asserted by the `alloc_steady` test).
//!
//! The search order is pluggable (§5.2): [`SearchOrder::Jo`] (greedy on RIG
//! candidate cardinalities), [`SearchOrder::Ri`] (topology-only), and
//! [`SearchOrder::Bj`] (dynamic-programming optimal left-deep order, which
//! does not scale past ~16 nodes — Table 4 quantifies all three).
//!
//! An *injective* mode turns homomorphism enumeration into isomorphism-style
//! enumeration (the ISO comparison of Fig. 9).
//!
//! Results stream through a [`ResultSink`] (see [`sink`]) rather than being
//! materialized, and the same engine core powers the **morsel-driven
//! parallel** entry points [`par_count`] / [`par_enumerate`] (see
//! [`parallel`] and `docs/parallel.md`): workers pull fixed-size morsels of
//! the root candidate range off a shared atomic cursor and share the
//! `limit`/timeout budget through atomics, so parallel runs honor both
//! without falling back to the sequential engine.

pub mod factorized;
pub(crate) mod order;
pub mod parallel;
pub mod reference;
pub mod sink;

pub use factorized::{DpCount, Factorization, FactorizationShape, FactorizedTuples};
pub use order::{compute_order, edge_cardinality, is_connected_order, SearchOrder};
pub use parallel::{par_collect_sorted, par_count, par_count_with, par_enumerate, ParOptions};
pub use sink::{BatchSink, CollectSink, CountSink, FirstKSink, FnSink, ResultSink};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rig_bitset::Bitset;
use rig_graph::NodeId;
use rig_index::{AdjRun, Rig};
use rig_query::{PatternQuery, QNode};

/// Options for [`enumerate`].
#[derive(Debug, Clone, Copy)]
pub struct EnumOptions {
    pub order: SearchOrder,
    /// Stop after this many occurrences (the paper caps at 10^7).
    pub limit: Option<u64>,
    /// Wall-clock budget (the paper stops queries at 10 minutes).
    pub timeout: Option<Duration>,
    /// Enforce injectivity (isomorphism-style matching).
    pub injective: bool,
}

impl Default for EnumOptions {
    fn default() -> Self {
        EnumOptions { order: SearchOrder::Jo, limit: None, timeout: None, injective: false }
    }
}

impl EnumOptions {
    /// Same options with the given search order.
    pub fn with_order(self, order: SearchOrder) -> Self {
        EnumOptions { order, ..self }
    }

    /// Same options stopping after `limit` occurrences.
    pub fn with_limit(self, limit: u64) -> Self {
        EnumOptions { limit: Some(limit), ..self }
    }

    /// Same options with a wall-clock budget.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        EnumOptions { timeout: Some(timeout), ..self }
    }

    /// Same options with injectivity (isomorphism-style matching) toggled.
    pub fn with_injective(self, injective: bool) -> Self {
        EnumOptions { injective, ..self }
    }
}

/// Outcome of an enumeration run.
#[derive(Debug, Clone)]
pub struct EnumResult {
    /// Occurrences produced (capped by `limit`).
    pub count: u64,
    /// True if the wall-clock budget expired before completion.
    pub timed_out: bool,
    /// True if the occurrence limit stopped the run.
    pub limit_hit: bool,
    /// The search order used.
    pub order: Vec<QNode>,
    /// Recursion steps taken (search-tree nodes visited).
    pub steps: u64,
}

impl EnumResult {
    /// An empty result carrying only the search order.
    pub fn empty(order: Vec<QNode>) -> EnumResult {
        EnumResult { count: 0, timed_out: false, limit_hit: false, order, steps: 0 }
    }

    /// Totals `other` into `self`: counts and steps add, **both** budget
    /// flags OR (a limit or timeout that stopped any worker stopped the
    /// run). This is the only correct way to combine per-worker results —
    /// dropping `limit_hit` here was a real bug in the pre-morsel
    /// partitioned driver.
    pub fn merge(&mut self, other: &EnumResult) {
        self.count += other.count;
        self.steps += other.steps;
        self.timed_out |= other.timed_out;
        self.limit_hit |= other.limit_hit;
    }
}

/// Enumerates the answer of `query` over the RIG, invoking `visit` with
/// each occurrence tuple **indexed by query node id** (not search
/// position). Returning `false` from `visit` stops the enumeration.
pub fn enumerate(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    visit: impl FnMut(&[NodeId]) -> bool,
) -> EnumResult {
    let mut sink = FnSink(visit);
    enumerate_inner(query, rig, opts, None, &mut sink)
}

/// Like [`enumerate`], but streams occurrences into a [`ResultSink`]
/// (`sink.finish()` is called when the run ends).
pub fn enumerate_sink<S: ResultSink>(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    sink: &mut S,
) -> EnumResult {
    enumerate_inner(query, rig, opts, None, sink)
}

/// Like [`enumerate`], but only explores bindings of the *first*
/// search-order node that lie in `root_filter` — the partitioning hook kept
/// for external drivers (the in-tree parallel engine now morsel-slices the
/// root range directly, see [`parallel`]).
pub fn enumerate_restricted(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    root_filter: &Bitset,
    visit: impl FnMut(&[NodeId]) -> bool,
) -> EnumResult {
    let mut sink = FnSink(visit);
    enumerate_inner(query, rig, opts, Some(root_filter), &mut sink)
}

fn enumerate_inner<S: ResultSink>(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    root_filter: Option<&Bitset>,
    sink: &mut S,
) -> EnumResult {
    let plan = Plan::new(query, rig, opts.order);
    if rig.is_empty() || query.num_nodes() == 0 {
        sink.finish();
        return EnumResult::empty(plan.order);
    }
    let mut worker = Worker::new(rig, opts, &plan, None);
    // Root partition (restricted driver): global ids -> root-local ids.
    worker.root_locals = root_filter.map(|f| {
        let rq = plan.order[0] as usize;
        f.iter().filter_map(|v| rig.local_of(rq, v)).collect()
    });
    worker.recurse(0, sink);
    sink.finish();
    worker.result
}

/// Counts occurrences (no per-tuple callback overhead beyond counting).
pub fn count(query: &PatternQuery, rig: &Rig, opts: &EnumOptions) -> EnumResult {
    enumerate(query, rig, opts, |_| true)
}

/// Collects up to `max` occurrence tuples (indexed by query node).
pub fn collect(
    query: &PatternQuery,
    rig: &Rig,
    opts: &EnumOptions,
    max: usize,
) -> (Vec<Vec<NodeId>>, EnumResult) {
    let mut out = Vec::new();
    let r = enumerate(query, rig, opts, |t| {
        if out.len() < max {
            out.push(t.to_vec());
        }
        out.len() < max
    });
    (out, r)
}

/// The query-shaped, RIG-independent-of-binding part of an enumeration:
/// the search order plus, per search step, the edges connecting that step
/// to earlier-bound query nodes. Computed once and shared (read-only) by
/// every worker of a parallel run.
pub(crate) struct Plan {
    pub(crate) order: Vec<QNode>,
    /// Per step `i`: `(edge id, bound search position, bound_is_source)`.
    constraints: Vec<Vec<(u32, usize, bool)>>,
}

impl Plan {
    pub(crate) fn new(query: &PatternQuery, rig: &Rig, strategy: SearchOrder) -> Plan {
        let order = compute_order(query, rig, strategy);
        let n = order.len();
        let mut pos_of = vec![usize::MAX; n];
        for (i, &q) in order.iter().enumerate() {
            pos_of[q as usize] = i;
        }
        let mut constraints: Vec<Vec<(u32, usize, bool)>> = vec![Vec::new(); n];
        for (eid, e) in query.edges().iter().enumerate() {
            let pf = pos_of[e.from as usize];
            let pt = pos_of[e.to as usize];
            if pf < pt {
                // `from` bound first: at step pt, follow successors of t[pf]
                constraints[pt].push((eid as u32, pf, true));
            } else {
                // `to` bound first: at step pf, follow predecessors of t[pt]
                constraints[pf].push((eid as u32, pt, false));
            }
        }
        Plan { order, constraints }
    }
}

/// Budget and work-distribution state shared by all workers of one
/// parallel run. Everything is lock-free: morsel claims and match
/// reservations are single `fetch_add`s, termination is a flag every
/// worker polls once per recursion step.
pub(crate) struct SharedState {
    /// Next unclaimed root-candidate position (the morsel cursor).
    /// Work-stealing degenerates to contention on this one counter: a fast
    /// worker simply claims more morsels than a slow one.
    pub(crate) cursor: AtomicUsize,
    /// Set on any terminal condition (limit reached, timeout, sink stop);
    /// all workers observe it within one recursion step.
    pub(crate) stop: AtomicBool,
    /// Match reservations when a limit is set: a worker may emit the n-th
    /// match iff `n <= limit`, so exactly `limit` matches are emitted
    /// across all workers.
    emitted: AtomicU64,
    pub(crate) timed_out: AtomicBool,
    pub(crate) limit_hit: AtomicBool,
    /// One deadline for the whole run (same wall clock for every worker).
    deadline: Option<Instant>,
}

impl SharedState {
    pub(crate) fn new(opts: &EnumOptions) -> SharedState {
        SharedState {
            cursor: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            emitted: AtomicU64::new(0),
            timed_out: AtomicBool::new(false),
            limit_hit: AtomicBool::new(false),
            deadline: opts.timeout.map(|t| Instant::now() + t),
        }
    }
}

/// Reusable per-depth scratch (allocated once per worker).
struct Step<'r> {
    /// Query node bound at this depth.
    q: usize,
    /// `|cos(q)|` — the full local-id range.
    n_local: u32,
    /// Operand runs gathered for the current binding of earlier nodes.
    ops: Vec<AdjRun<'r>>,
    /// Galloping cursors, parallel to `ops`.
    cursors: Vec<usize>,
    /// Materialized intersection (local ids); capacity = `n_local`.
    buf: Vec<u32>,
}

/// Where the candidates of the current step come from.
enum Src<'r> {
    /// Unconstrained: the full local range `0..n_local` (no clone of the
    /// base candidate set).
    Range,
    /// Unconstrained root restricted by the partitioned driver.
    Root,
    /// Exactly one operand: iterate its run in place.
    Slice(&'r [u32]),
    /// Two or more operands: the intersection materialized in `buf`.
    Buf,
}

/// One enumeration worker: all per-run mutable state (per-depth scratch,
/// tuple buffers, budget counters). Sequential enumeration is a single
/// worker driven from the root; parallel enumeration is `threads` workers
/// pulling root morsels off a [`SharedState`] cursor, each reusing its own
/// scratch across morsels (zero steady-state allocations per step, same as
/// the sequential hot loop).
pub(crate) struct Worker<'a, 'r> {
    rig: &'r Rig,
    opts: &'a EnumOptions,
    plan: &'a Plan,
    steps: Vec<Step<'r>>,
    /// Root partition of the restricted (sequential) driver.
    root_locals: Option<Vec<u32>>,
    tuple_local: Vec<u32>,
    tuple_global: Vec<NodeId>,
    /// Occurrence remapped to query-node indexing, handed to the sink.
    out_tuple: Vec<NodeId>,
    deadline: Option<Instant>,
    check_counter: u32,
    shared: Option<&'a SharedState>,
    pub(crate) result: EnumResult,
}

impl<'a, 'r> Worker<'a, 'r> {
    pub(crate) fn new(
        rig: &'r Rig,
        opts: &'a EnumOptions,
        plan: &'a Plan,
        shared: Option<&'a SharedState>,
    ) -> Worker<'a, 'r> {
        let n = plan.order.len();
        // Every buffer is sized for the worst case up front (|cos(q_i)|
        // bounds any intersection at step i — the Thm. 5.1 space bound), so
        // steady-state recursion never reallocates.
        let steps: Vec<Step<'r>> = plan
            .order
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let n_local = rig.candidates(q as usize).len();
                Step {
                    q: q as usize,
                    n_local: n_local as u32,
                    ops: Vec::with_capacity(plan.constraints[i].len()),
                    cursors: Vec::with_capacity(plan.constraints[i].len()),
                    buf: Vec::with_capacity(n_local),
                }
            })
            .collect();
        let deadline = match shared {
            Some(sh) => sh.deadline,
            None => opts.timeout.map(|t| Instant::now() + t),
        };
        Worker {
            rig,
            opts,
            plan,
            steps,
            root_locals: None,
            tuple_local: vec![0; n],
            tuple_global: vec![0; n],
            out_tuple: vec![0; n],
            deadline,
            check_counter: 0,
            shared,
            result: EnumResult::empty(plan.order.clone()),
        }
    }

    /// Terminal-condition poll, run once per recursion step.
    fn stopped(&mut self) -> bool {
        if self.result.timed_out || self.result.limit_hit {
            return true;
        }
        if let Some(sh) = self.shared {
            if sh.stop.load(Ordering::Relaxed) {
                return true;
            }
        } else if let Some(limit) = self.opts.limit {
            if self.result.count >= limit {
                self.result.limit_hit = true;
                return true;
            }
        }
        self.check_counter += 1;
        if self.check_counter >= 1024 {
            self.check_counter = 0;
            if self.deadline_expired() {
                return true;
            }
        }
        false
    }

    /// Checks the wall-clock deadline, recording (and broadcasting) the
    /// timeout when it has passed.
    fn deadline_expired(&mut self) -> bool {
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                self.result.timed_out = true;
                if let Some(sh) = self.shared {
                    sh.timed_out.store(true, Ordering::Relaxed);
                    sh.stop.store(true, Ordering::Relaxed);
                }
                return true;
            }
        }
        false
    }

    /// Emits the current full binding. Returns `false` when the
    /// enumeration must stop (limit reached or sink asked to stop).
    fn emit<S: ResultSink>(&mut self, sink: &mut S) -> bool {
        for (i, &q) in self.plan.order.iter().enumerate() {
            self.out_tuple[q as usize] = self.tuple_global[i];
        }
        let Some(sh) = self.shared else {
            self.result.count += 1;
            let keep = sink.push(&self.out_tuple);
            if let Some(limit) = self.opts.limit {
                if self.result.count >= limit {
                    self.result.limit_hit = true;
                    return false;
                }
            }
            return keep;
        };
        match self.opts.limit {
            None => {
                self.result.count += 1;
                let keep = sink.push(&self.out_tuple);
                if !keep {
                    sh.stop.store(true, Ordering::Relaxed);
                }
                keep
            }
            Some(limit) => {
                // Reserve a slot before emitting: the n-th reservation may
                // be emitted iff n <= limit, so the k workers collectively
                // emit exactly `limit` matches, never more.
                let prev = sh.emitted.fetch_add(1, Ordering::Relaxed);
                if prev >= limit {
                    sh.limit_hit.store(true, Ordering::Relaxed);
                    sh.stop.store(true, Ordering::Relaxed);
                    return false;
                }
                self.result.count += 1;
                let keep = sink.push(&self.out_tuple);
                if prev + 1 == limit {
                    self.result.limit_hit = true;
                    sh.limit_hit.store(true, Ordering::Relaxed);
                    sh.stop.store(true, Ordering::Relaxed);
                    return false;
                }
                if !keep {
                    sh.stop.store(true, Ordering::Relaxed);
                }
                keep
            }
        }
    }

    /// Morsel loop of one parallel worker: claim `[lo, lo + morsel)` root
    /// positions off the shared cursor, run the ordinary backtracking
    /// search under each claimed root binding, repeat until the cursor is
    /// exhausted or the run stops. Load balancing is automatic — cursor
    /// contention *is* the work-stealing protocol.
    pub(crate) fn run_morsels<S: ResultSink>(&mut self, sink: &mut S, morsel: usize) {
        let sh = self.shared.expect("run_morsels requires shared state");
        debug_assert!(
            self.plan.constraints[0].is_empty(),
            "the first search-order node has no earlier-bound constraints"
        );
        // An already-expired (e.g. zero) budget stops the worker before it
        // claims any work.
        if self.deadline_expired() {
            sink.finish();
            return;
        }
        let n_root = self.steps[0].n_local as usize;
        let q_root = self.steps[0].q;
        let morsel = morsel.max(1);
        'claim: while !sh.stop.load(Ordering::Relaxed) {
            let lo = sh.cursor.fetch_add(morsel, Ordering::Relaxed);
            if lo >= n_root {
                break;
            }
            let hi = (lo + morsel).min(n_root);
            self.result.steps += 1; // root-level step, one per claimed morsel
            for k in lo..hi {
                self.tuple_local[0] = k as u32;
                self.tuple_global[0] = self.rig.node_at(q_root, k as u32);
                if !self.recurse(1, sink) {
                    break 'claim;
                }
            }
        }
        sink.finish();
    }

    /// Returns false when enumeration must stop entirely.
    fn recurse<S: ResultSink>(&mut self, i: usize, sink: &mut S) -> bool {
        if i == self.steps.len() {
            return self.emit(sink);
        }
        if self.stopped() {
            return false;
        }
        self.result.steps += 1;

        // Gather the adjacency runs of all bound neighbors (Alg. 5 lines
        // 4-7). All runs live in cos(q_i)-local id space, so cos(q_i)
        // itself never has to join the intersection.
        self.steps[i].ops.clear();
        for &(eid, bound_pos, bound_is_source) in &self.plan.constraints[i] {
            let bound_local = self.tuple_local[bound_pos];
            let run = if bound_is_source {
                self.rig.successors_local(eid, bound_local)
            } else {
                self.rig.predecessors_local(eid, bound_local)
            };
            if run.is_empty() {
                return true; // empty adjacency: dead branch
            }
            self.steps[i].ops.push(run);
        }

        let (src, count) = match self.steps[i].ops.len() {
            0 => {
                if i == 0 && self.root_locals.is_some() {
                    (Src::Root, self.root_locals.as_ref().map_or(0, |r| r.len()))
                } else {
                    (Src::Range, self.steps[i].n_local as usize)
                }
            }
            1 => {
                let run = self.steps[i].ops[0];
                (Src::Slice(run.list), run.len())
            }
            _ => {
                let len = self.intersect_into(i);
                (Src::Buf, len)
            }
        };

        let q = self.steps[i].q;
        for k in 0..count {
            let v_local = match src {
                Src::Range => k as u32,
                Src::Root => self.root_locals.as_ref().expect("root partition")[k],
                Src::Slice(list) => list[k],
                Src::Buf => self.steps[i].buf[k],
            };
            let v_global = self.rig.node_at(q, v_local);
            if self.opts.injective && self.tuple_global[..i].contains(&v_global) {
                continue;
            }
            self.tuple_local[i] = v_local;
            self.tuple_global[i] = v_global;
            if !self.recurse(i + 1, sink) {
                return false;
            }
        }
        true
    }

    /// Materializes the multiway intersection of `steps[i].ops` into
    /// `steps[i].buf` (smallest operand drives, the rest are probed with
    /// galloping cursors or dense-bitmap tests) and returns its length.
    /// Allocation-free: the buffer and cursor vector were pre-sized.
    fn intersect_into(&mut self, i: usize) -> usize {
        let step = &mut self.steps[i];
        let driver_at =
            (0..step.ops.len()).min_by_key(|&k| step.ops[k].len()).expect("at least two operands");
        step.ops.swap(0, driver_at);
        let driver = step.ops[0];
        step.buf.clear();
        // Cheap nonemptiness early exit: disjoint value ranges can never
        // intersect, so skip the probe loop entirely.
        let lo = step.ops.iter().map(|o| o.list[0]).max().expect("nonempty");
        let hi =
            step.ops.iter().map(|o| *o.list.last().expect("nonempty")).min().expect("nonempty");
        if lo > hi {
            return 0;
        }
        step.cursors.clear();
        step.cursors.resize(step.ops.len(), 0);
        'outer: for &v in driver.list {
            for k in 1..step.ops.len() {
                if !step.ops[k].contains_from(&mut step.cursors[k], v) {
                    continue 'outer;
                }
            }
            step.buf.push(v);
        }
        step.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::{DataGraph, GraphBuilder};
    use rig_index::{build_rig, RigOptions};
    use rig_query::{fig2_query, EdgeKind, PatternQuery};
    use rig_reach::BflIndex;
    use rig_sim::SimContext;

    fn fig2_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_node(0);
        }
        for _ in 0..4 {
            b.add_node(1);
        }
        for _ in 0..3 {
            b.add_node(2);
        }
        b.add_edge(1, 3);
        b.add_edge(1, 7);
        b.add_edge(3, 8);
        b.add_edge(8, 7);
        b.add_edge(2, 5);
        b.add_edge(2, 9);
        b.add_edge(5, 9);
        b.add_edge(5, 8);
        b.add_edge(0, 4);
        b.add_edge(4, 7);
        b.add_edge(6, 0);
        b.build()
    }

    fn rig_for(g: &DataGraph, q: &PatternQuery) -> Rig {
        let bfl = BflIndex::new(g);
        let ctx = SimContext::new(g, q, &bfl);
        build_rig(&ctx, &bfl, &RigOptions::exact())
    }

    /// The running example answer: {(a1,b0,c0), (a2,b2,c2)} — and notably
    /// NOT (a2,b2,c0), whose RIG edge survives double simulation.
    #[test]
    fn fig2_answer_exact() {
        let g = fig2_graph();
        let q = fig2_query();
        let rig = rig_for(&g, &q);
        for order in [SearchOrder::Jo, SearchOrder::Ri, SearchOrder::Bj] {
            let (tuples, r) = collect(&q, &rig, &EnumOptions { order, ..Default::default() }, 100);
            let mut sorted = tuples.clone();
            sorted.sort();
            assert_eq!(sorted, vec![vec![1, 3, 7], vec![2, 5, 9]], "{order:?}");
            assert_eq!(r.count, 2);
            assert!(!r.timed_out && !r.limit_hit);
        }
    }

    #[test]
    fn limit_and_injective() {
        let g = fig2_graph();
        let q = fig2_query();
        let rig = rig_for(&g, &q);
        let r = count(&q, &rig, &EnumOptions { limit: Some(1), ..Default::default() });
        assert_eq!(r.count, 1);
        assert!(r.limit_hit);
        // all answers here are injective anyway
        let ri = count(&q, &rig, &EnumOptions { injective: true, ..Default::default() });
        assert_eq!(ri.count, 2);
    }

    /// Homomorphism vs isomorphism: a pattern with two same-label nodes can
    /// map both to one data node; injective mode must exclude that.
    #[test]
    fn injective_excludes_non_injective_matches() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        let y = b.add_node(1);
        b.add_edge(x, y);
        let g = b.build();
        // pattern: two A-labeled nodes both with a direct edge to one B node
        let mut q = PatternQuery::new(vec![0, 0, 1]);
        q.add_edge(0, 2, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Direct);
        let rig = rig_for(&g, &q);
        let homo = count(&q, &rig, &EnumOptions::default());
        assert_eq!(homo.count, 1); // both pattern A's -> x
        let iso = count(&q, &rig, &EnumOptions { injective: true, ..Default::default() });
        assert_eq!(iso.count, 0);
    }

    /// Cross-check MJoin against brute force on random instances.
    #[test]
    fn randomized_equivalence_with_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use rig_reach::Reachability;
        for seed in 0..15u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = GraphBuilder::new();
            let n = 12;
            for _ in 0..n {
                b.add_node(rng.gen_range(0..2));
            }
            for _ in 0..26 {
                let u = rng.gen_range(0..n) as NodeId;
                let v = rng.gen_range(0..n) as NodeId;
                if u != v {
                    b.add_edge(u, v);
                }
            }
            let g = b.build();
            let nq = rng.gen_range(2..4usize);
            let mut q = PatternQuery::new((0..nq).map(|_| rng.gen_range(0..2)).collect());
            for i in 1..nq as u32 {
                let kind =
                    if rng.gen_bool(0.5) { EdgeKind::Direct } else { EdgeKind::Reachability };
                q.add_edge(i - 1, i, kind);
            }
            if nq == 3 && rng.gen_bool(0.7) {
                q.add_edge(0, 2, EdgeKind::Reachability);
            }
            // brute force
            let bfl = BflIndex::new(&g);
            let mut expect = 0u64;
            let gv = g.num_nodes() as NodeId;
            let mut assign = vec![0 as NodeId; nq];
            #[allow(clippy::too_many_arguments)]
            fn rec(
                d: usize,
                nq: usize,
                gv: NodeId,
                g: &DataGraph,
                q: &PatternQuery,
                bfl: &BflIndex,
                assign: &mut Vec<NodeId>,
                count: &mut u64,
            ) {
                if d == nq {
                    *count += 1;
                    return;
                }
                for v in 0..gv {
                    if g.label(v) != q.label(d as u32) {
                        continue;
                    }
                    assign[d] = v;
                    let ok = q.edges().iter().all(|e| {
                        let (f, t) = (e.from as usize, e.to as usize);
                        if f > d || t > d {
                            return true;
                        }
                        match e.kind {
                            EdgeKind::Direct => g.has_edge(assign[f], assign[t]),
                            EdgeKind::Reachability => bfl.reaches(assign[f], assign[t]),
                        }
                    });
                    if ok {
                        rec(d + 1, nq, gv, g, q, bfl, assign, count);
                    }
                }
            }
            rec(0, nq, gv, &g, &q, &bfl, &mut assign, &mut expect);
            let rig = rig_for(&g, &q);
            for order in [SearchOrder::Jo, SearchOrder::Ri, SearchOrder::Bj] {
                let r = count_with(&q, &rig, order);
                assert_eq!(r.count, expect, "seed={seed} {order:?}");
            }
        }
    }

    fn count_with(q: &PatternQuery, rig: &Rig, order: SearchOrder) -> EnumResult {
        count(q, rig, &EnumOptions { order, ..Default::default() })
    }

    /// Tuples come out indexed by query node regardless of search order.
    #[test]
    fn tuple_indexing_is_by_query_node() {
        let g = fig2_graph();
        let q = fig2_query();
        let rig = rig_for(&g, &q);
        for order in [SearchOrder::Jo, SearchOrder::Ri] {
            let (tuples, _) = collect(&q, &rig, &EnumOptions { order, ..Default::default() }, 10);
            for t in &tuples {
                assert_eq!(g.label(t[0]), 0, "{order:?}"); // A slot holds an a-node
                assert_eq!(g.label(t[1]), 1);
                assert_eq!(g.label(t[2]), 2);
            }
        }
    }

    #[test]
    fn empty_rig_returns_zero() {
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(1);
        let g = b.build(); // no edges
        let mut q = PatternQuery::new(vec![0, 1]);
        q.add_edge(0, 1, EdgeKind::Direct);
        let rig = rig_for(&g, &q);
        let r = count(&q, &rig, &EnumOptions::default());
        assert_eq!(r.count, 0);
        assert_eq!(r.steps, 0);
    }

    /// The sink entry point streams the same answer the closure API does,
    /// and `finish` flushes batch tails.
    #[test]
    fn sink_entry_point_streams_batches() {
        let g = fig2_graph();
        let q = fig2_query();
        let rig = rig_for(&g, &q);
        let mut flat: Vec<NodeId> = Vec::new();
        let mut flushes = 0usize;
        {
            let mut sink = BatchSink::new(q.num_nodes(), 1, |b: &[NodeId], arity| {
                assert_eq!(arity, 3);
                flat.extend_from_slice(b);
                flushes += 1;
            });
            let r = enumerate_sink(&q, &rig, &EnumOptions::default(), &mut sink);
            assert_eq!(r.count, 2);
            assert_eq!(sink.pushed, 2);
        }
        assert_eq!(flushes, 2);
        let mut tuples: Vec<Vec<NodeId>> = flat.chunks(3).map(|c| c.to_vec()).collect();
        tuples.sort();
        assert_eq!(tuples, vec![vec![1, 3, 7], vec![2, 5, 9]]);
    }

    /// EnumResult::merge is total: counts/steps add, both flags OR.
    #[test]
    fn enum_result_merge_is_total() {
        let mut a = EnumResult {
            count: 3,
            timed_out: false,
            limit_hit: true,
            order: vec![0, 1],
            steps: 10,
        };
        let b =
            EnumResult { count: 4, timed_out: true, limit_hit: false, order: vec![0, 1], steps: 7 };
        a.merge(&b);
        assert_eq!(a.count, 7);
        assert_eq!(a.steps, 17);
        assert!(a.timed_out, "timed_out must survive the merge");
        assert!(a.limit_hit, "limit_hit must survive the merge");
    }
}
