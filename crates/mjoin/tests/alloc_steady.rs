//! Allocation regression test: steady-state MJoin enumeration must perform
//! **zero heap allocations per recursion step**. A counting global
//! allocator (own test binary, so the counter sees every allocation in the
//! process) snapshots the allocation count at the first emitted tuple
//! (after which all per-depth scratch is warm) and asserts it never moves
//! again for the remainder of the enumeration.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rig_graph::{GraphBuilder, NodeId};
use rig_index::{build_rig, RigOptions};
use rig_mjoin::{enumerate, EnumOptions};
use rig_query::{EdgeKind, PatternQuery};
use rig_reach::BflIndex;
use rig_sim::SimContext;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Dense one-label graph + a 4-node pattern with a skipping constraint, so
/// the enumeration has an astronomically large answer, exercises both the
/// single-operand and the multiway-intersection paths, and emits plenty of
/// tuples for the steady-state window.
fn workload() -> (rig_graph::DataGraph, PatternQuery) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    let n = 200usize;
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_node(0);
    }
    for _ in 0..1500 {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    let g = b.build();
    let mut q = PatternQuery::new(vec![0; 4]);
    q.add_edge(0, 1, EdgeKind::Reachability);
    q.add_edge(1, 2, EdgeKind::Direct);
    q.add_edge(2, 3, EdgeKind::Reachability);
    q.add_edge(0, 2, EdgeKind::Reachability); // second operand at step of node 2
    (g, q)
}

#[test]
fn zero_allocations_per_steady_state_step() {
    let (g, q) = workload();
    let bfl = BflIndex::new(&g);
    let ctx = SimContext::new(&g, &q, &bfl);
    let rig = build_rig(&ctx, &bfl, &RigOptions::default());
    assert!(!rig.is_empty(), "workload must have matches");

    let opts = EnumOptions { limit: Some(100_000), ..Default::default() };
    let mut at_first_visit: Option<u64> = None;
    let mut at_last_visit: u64 = 0;
    let mut visits: u64 = 0;
    let r = enumerate(&q, &rig, &opts, |_| {
        let now = ALLOC_CALLS.load(Ordering::Relaxed);
        if at_first_visit.is_none() {
            at_first_visit = Some(now);
        }
        at_last_visit = now;
        visits += 1;
        true
    });
    assert!(visits >= 10_000, "need a meaningful steady-state window, got {visits} tuples");
    assert_eq!(r.count, visits);
    let first = at_first_visit.expect("at least one tuple");
    assert_eq!(
        at_last_visit,
        first,
        "MJoin allocated {} time(s) during steady-state enumeration ({} tuples)",
        at_last_visit - first,
        visits
    );
}

/// The restricted (parallel-partition) entry point must be steady-state
/// allocation-free too: its root slice is resolved to local ids up front.
#[test]
fn restricted_enumeration_is_steady_state_allocation_free() {
    use rig_bitset::Bitset;
    let (g, q) = workload();
    let bfl = BflIndex::new(&g);
    let ctx = SimContext::new(&g, &q, &bfl);
    let rig = build_rig(&ctx, &bfl, &RigOptions::default());
    let root_half: Bitset = (0..(g.num_nodes() as u32) / 2).collect();

    let opts = EnumOptions { limit: Some(20_000), ..Default::default() };
    let mut at_first_visit: Option<u64> = None;
    let mut at_last_visit: u64 = 0;
    let mut visits: u64 = 0;
    rig_mjoin::enumerate_restricted(&q, &rig, &opts, &root_half, |_| {
        let now = ALLOC_CALLS.load(Ordering::Relaxed);
        if at_first_visit.is_none() {
            at_first_visit = Some(now);
        }
        at_last_visit = now;
        visits += 1;
        true
    });
    assert!(visits >= 1_000, "restricted run too small: {visits}");
    assert_eq!(Some(at_last_visit), at_first_visit, "allocations during restricted enumeration");
}
