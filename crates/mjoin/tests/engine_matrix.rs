//! Cross-engine differential matrix: on random graphs × random query
//! templates, the sequential CSR engine (`count`), the morsel-driven
//! parallel engine (`par_count`, threads ∈ {2, 3, 8} by default) and the
//! pre-CSR reference implementation (`reference::ref_count`) must agree on
//! the occurrence count, across **all** `SelectMode` × `EdgeKind`
//! combinations and both data-driven search orders.
//!
//! The parallel thread counts are overridable via `RIGMATCH_THREADS`
//! (comma-separated, e.g. `RIGMATCH_THREADS=1,2,8`) so CI can sweep the
//! suite per thread count without recompiling.

use proptest::prelude::*;
use rig_graph::GraphBuilder;
use rig_index::reference::build_reference_rig;
use rig_index::{build_rig, RigOptions, SelectMode};
use rig_mjoin::reference::ref_count;
use rig_mjoin::{count, par_count_with, EnumOptions, ParOptions, SearchOrder};
use rig_query::{EdgeKind, PatternQuery};
use rig_reach::BflIndex;
use rig_sim::SimContext;

/// Thread counts under test: `RIGMATCH_THREADS` (comma list) or {2, 3, 8}.
fn thread_counts() -> Vec<usize> {
    match std::env::var("RIGMATCH_THREADS") {
        Ok(v) => v
            .split(',')
            .map(|p| p.trim().parse().unwrap_or_else(|_| panic!("bad RIGMATCH_THREADS part {p:?}")))
            .collect(),
        Err(_) => vec![2, 3, 8],
    }
}

/// Query templates: index picks the shape, `kinds` picks Direct vs
/// Reachability per edge — between them every EdgeKind combination on
/// every shape is reachable.
fn template_query(shape: usize, kinds: &[bool]) -> PatternQuery {
    let kind = |b: bool| if b { EdgeKind::Direct } else { EdgeKind::Reachability };
    match shape % 4 {
        // 3-path
        0 => {
            let mut q = PatternQuery::new(vec![0, 1, 2]);
            q.add_edge(0, 1, kind(kinds[0]));
            q.add_edge(1, 2, kind(kinds[1]));
            q
        }
        // triangle
        1 => {
            let mut q = PatternQuery::new(vec![0, 1, 2]);
            q.add_edge(0, 1, kind(kinds[0]));
            q.add_edge(1, 2, kind(kinds[1]));
            q.add_edge(0, 2, kind(kinds[2]));
            q
        }
        // star (center 0 out to three leaves)
        2 => {
            let mut q = PatternQuery::new(vec![0, 1, 2, 0]);
            q.add_edge(0, 1, kind(kinds[0]));
            q.add_edge(0, 2, kind(kinds[1]));
            q.add_edge(0, 3, kind(kinds[2]));
            q
        }
        // 4-cycle (diamond orientation, stays a DAG pattern)
        _ => {
            let mut q = PatternQuery::new(vec![0, 1, 2, 1]);
            q.add_edge(0, 1, kind(kinds[0]));
            q.add_edge(0, 3, kind(kinds[1]));
            q.add_edge(1, 2, kind(kinds[2]));
            q.add_edge(3, 2, kind(kinds[3]));
            q
        }
    }
}

fn setup_strategy() -> impl Strategy<Value = (rig_graph::DataGraph, PatternQuery)> {
    (
        prop::collection::vec(0u32..3, 6..28),
        prop::collection::vec((0u32..28, 0u32..28), 8..70),
        0usize..4,
        prop::collection::vec(prop::bool::ANY, 4),
    )
        .prop_map(|(labels, edges, shape, kinds)| {
            let n = labels.len() as u32;
            let mut b = GraphBuilder::new();
            for l in labels {
                b.add_node(l);
            }
            for (u, v) in edges {
                let (u, v) = (u % n, v % n);
                if u != v {
                    b.add_edge(u, v);
                }
            }
            (b.build(), template_query(shape, &kinds))
        })
}

const ALL_SELECT_MODES: [SelectMode; 4] = [
    SelectMode::MatchSets,
    SelectMode::PrefilterOnly,
    SelectMode::SimOnly,
    SelectMode::PrefilterThenSim,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The agreement matrix: sequential == parallel (every thread count,
    /// two morsel sizes) == reference, for every selection mode and both
    /// data-driven orders.
    #[test]
    fn seq_par_reference_counts_agree((g, q) in setup_strategy()) {
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let threads = thread_counts();
        for select in ALL_SELECT_MODES {
            let opts = RigOptions { select, ..RigOptions::exact() };
            let csr = build_rig(&ctx, &bfl, &opts);
            let reference = build_reference_rig(&ctx, &bfl, &opts);
            for order in [SearchOrder::Jo, SearchOrder::Ri] {
                let eo = EnumOptions { order, ..Default::default() };
                let seq = count(&q, &csr, &eo);
                let rf = ref_count(&q, &reference, &eo);
                prop_assert_eq!(
                    seq.count, rf.count,
                    "{:?} {:?}: sequential vs reference", select, order
                );
                prop_assert!(!seq.timed_out && !seq.limit_hit);
                for &t in &threads {
                    for morsel in [1usize, 64] {
                        let par = par_count_with(&q, &csr, &eo, &ParOptions { threads: t, morsel });
                        prop_assert_eq!(
                            par.count, seq.count,
                            "{:?} {:?} threads={} morsel={}", select, order, t, morsel
                        );
                        prop_assert!(!par.timed_out && !par.limit_hit);
                    }
                }
            }
        }
    }

    /// Parallel RIG construction slots into the same matrix: the RIG built
    /// with worker threads is interchangeable with the sequential one.
    #[test]
    fn parallel_rig_build_preserves_counts((g, q) in setup_strategy()) {
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        let eo = EnumOptions::default();
        let seq_rig = build_rig(&ctx, &bfl, &RigOptions::exact());
        let expect = count(&q, &seq_rig, &eo).count;
        for &t in &thread_counts() {
            let par_rig = build_rig(&ctx, &bfl, &RigOptions::exact().with_build_threads(t));
            prop_assert_eq!(count(&q, &par_rig, &eo).count, expect, "build_threads={}", t);
        }
    }
}
