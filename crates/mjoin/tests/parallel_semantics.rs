//! Semantics of the morsel-driven parallel engine: deterministic match
//! sets, exact limits, prompt timeouts, and total `EnumResult` merging.

use std::time::{Duration, Instant};

use rig_graph::{GraphBuilder, NodeId};
use rig_index::{build_rig, Rig, RigOptions};
use rig_mjoin::{
    collect, count, par_collect_sorted, par_count, par_count_with, par_enumerate, CollectSink,
    EnumOptions, EnumResult, ParOptions,
};
use rig_query::{EdgeKind, PatternQuery};
use rig_reach::BflIndex;
use rig_sim::SimContext;

fn build(g: &rig_graph::DataGraph, q: &PatternQuery) -> Rig {
    let bfl = BflIndex::new(g);
    let ctx = SimContext::new(g, q, &bfl);
    build_rig(&ctx, &bfl, &RigOptions::exact())
}

/// Mixed-label random graph with a hybrid 3-node pattern — a mid-size
/// answer set with skewed per-root work.
fn mixed_setup(seed: u64) -> (rig_graph::DataGraph, PatternQuery) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 150usize;
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_node(rng.gen_range(0..3));
    }
    for _ in 0..600 {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    let g = b.build();
    let mut q = PatternQuery::new(vec![0, 1, 2]);
    q.add_edge(0, 1, EdgeKind::Direct);
    q.add_edge(1, 2, EdgeKind::Reachability);
    q.add_edge(0, 2, EdgeKind::Reachability);
    (g, q)
}

/// One-label dense graph whose 5-chain reachability query has an
/// astronomically large answer — the budget-stress workload.
fn explosive_setup() -> (rig_graph::DataGraph, PatternQuery) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    let n = 300usize;
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_node(0);
    }
    for _ in 0..3000 {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    let g = b.build();
    let mut q = PatternQuery::new(vec![0; 5]);
    for i in 1..5u32 {
        q.add_edge(i - 1, i, EdgeKind::Reachability);
    }
    (g, q)
}

/// Determinism: with a sorting (collect-then-sort) sink, the match set is
/// byte-identical for every thread count and every morsel size — including
/// morsel size 1 and a morsel larger than the whole root candidate range.
#[test]
fn sorted_match_sets_are_invariant_to_threads_and_morsels() {
    let (g, q) = mixed_setup(11);
    let rig = build(&g, &q);
    let opts = EnumOptions::default();
    let (mut expect, seq) = collect(&q, &rig, &opts, usize::MAX);
    expect.sort_unstable();
    assert!(seq.count > 50, "workload too small to be meaningful: {}", seq.count);
    let huge = rig.candidates(0).len() + 7; // > |candidates| of every node
    for threads in [1usize, 2, 3, 8] {
        for morsel in [1usize, 5, 64, huge] {
            let (tuples, r) = par_collect_sorted(&q, &rig, &opts, &ParOptions { threads, morsel });
            assert_eq!(tuples, expect, "match set differs at threads={threads} morsel={morsel}");
            assert_eq!(r.count, seq.count);
            assert!(!r.timed_out && !r.limit_hit);
        }
    }
}

/// With `limit = k`, sequential and parallel runs both produce exactly `k`
/// matches and set `limit_hit` — the shared reservation counter caps
/// emission across workers with no sequential fallback.
#[test]
fn limit_is_exact_and_flagged_in_both_engines() {
    let (g, q) = explosive_setup();
    let rig = build(&g, &q);
    for k in [1u64, 17, 1000] {
        let opts = EnumOptions { limit: Some(k), ..Default::default() };
        let seq = count(&q, &rig, &opts);
        assert_eq!(seq.count, k);
        assert!(seq.limit_hit && !seq.timed_out);
        for threads in [2usize, 8] {
            let (sinks, par) =
                par_enumerate(&q, &rig, &opts, &ParOptions { threads, morsel: 4 }, |_| {
                    CollectSink::default()
                });
            assert_eq!(par.count, k, "threads={threads} k={k}");
            assert!(par.limit_hit, "threads={threads} k={k}: limit_hit dropped");
            assert!(!par.timed_out);
            let emitted: usize = sinks.iter().map(|s| s.tuples.len()).sum();
            assert_eq!(emitted as u64, k, "sinks saw a different number of tuples");
        }
    }
}

/// A zero wall-clock budget terminates every worker promptly: no worker
/// claims a morsel, the run reports `timed_out`, and the whole call stays
/// far under the explosive workload's natural runtime.
#[test]
fn zero_budget_timeout_terminates_workers_promptly() {
    let (g, q) = explosive_setup();
    let rig = build(&g, &q);
    let opts = EnumOptions { timeout: Some(Duration::ZERO), ..Default::default() };
    let start = Instant::now();
    let r = par_count(&q, &rig, &opts, 8);
    let elapsed = start.elapsed();
    assert!(r.timed_out, "zero budget must time out");
    assert_eq!(r.count, 0, "no matches can be produced on an expired budget");
    assert!(elapsed < Duration::from_secs(5), "workers did not stop promptly: {elapsed:?}");
}

/// A small nonzero budget interrupts a parallel explosive enumeration and
/// the flag survives the merge.
#[test]
fn parallel_timeout_interrupts_explosive_enumeration() {
    let (g, q) = explosive_setup();
    let rig = build(&g, &q);
    let opts = EnumOptions { timeout: Some(Duration::from_millis(50)), ..Default::default() };
    let start = Instant::now();
    let r = par_count(&q, &rig, &opts, 4);
    assert!(r.timed_out, "must hit the wall-clock budget");
    assert!(start.elapsed() < Duration::from_secs(10));
    assert!(r.count > 0, "partial results are still produced");
}

/// Regression for the pre-morsel merge bug: the static-partition driver
/// OR'd `timed_out` across workers but silently dropped `limit_hit`.
/// `EnumResult::merge` must keep both flags, in every combination.
#[test]
fn merge_keeps_both_budget_flags() {
    for (lh_a, lh_b) in [(false, true), (true, false), (true, true)] {
        for (to_a, to_b) in [(false, true), (true, false), (false, false)] {
            let mut a =
                EnumResult { count: 2, timed_out: to_a, limit_hit: lh_a, order: vec![0], steps: 5 };
            let b =
                EnumResult { count: 3, timed_out: to_b, limit_hit: lh_b, order: vec![0], steps: 6 };
            a.merge(&b);
            assert_eq!(a.count, 5);
            assert_eq!(a.steps, 11);
            assert_eq!(a.limit_hit, lh_a || lh_b, "limit_hit must OR across workers");
            assert_eq!(a.timed_out, to_a || to_b, "timed_out must OR across workers");
        }
    }
}

/// par_count with limit reports `limit_hit` end to end (the observable
/// symptom of the old dropped-flag bug, now exercised through the real
/// parallel path instead of a fallback).
#[test]
fn par_count_reports_limit_hit() {
    let (g, q) = mixed_setup(4);
    let rig = build(&g, &q);
    let full = count(&q, &rig, &EnumOptions::default());
    assert!(full.count >= 4, "need a few matches");
    let k = full.count / 2;
    let opts = EnumOptions { limit: Some(k), ..Default::default() };
    let r = par_count_with(&q, &rig, &opts, &ParOptions { threads: 3, morsel: 2 });
    assert_eq!(r.count, k);
    assert!(r.limit_hit, "limit_hit lost in the parallel merge");
}

/// Degenerate shapes: more threads than root candidates, and an empty RIG.
#[test]
fn degenerate_shapes_are_safe() {
    let (g, q) = mixed_setup(7);
    let rig = build(&g, &q);
    let seq = count(&q, &rig, &EnumOptions::default());
    let wide =
        par_count_with(&q, &rig, &EnumOptions::default(), &ParOptions { threads: 64, morsel: 1 });
    assert_eq!(wide.count, seq.count);

    // empty RIG: label 7 never occurs
    let mut q2 = PatternQuery::new(vec![7, 1]);
    q2.add_edge(0, 1, EdgeKind::Direct);
    let rig2 = build(&g, &q2);
    let r = par_count(&q2, &rig2, &EnumOptions::default(), 4);
    assert_eq!(r.count, 0);
    assert!(!r.timed_out && !r.limit_hit);
}
