//! Allocation regression test for the factorized counting DP: after one
//! warm-up pass, repeated `count()` / `exists()` calls on a prebuilt
//! [`rig_mjoin::Factorization`] must perform **zero heap allocations** —
//! the DP runs entirely in the scratch buffers sized at construction time.
//! Same counting-global-allocator harness as `alloc_steady.rs` (own test
//! binary so the counter sees every allocation in the process).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rig_graph::{GraphBuilder, NodeId};
use rig_index::{build_rig, RigOptions};
use rig_mjoin::Factorization;
use rig_query::{EdgeKind, PatternQuery};
use rig_reach::BflIndex;
use rig_sim::SimContext;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Dense one-label graph so every query below has a large answer count.
fn dense_graph() -> rig_graph::DataGraph {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(11);
    let n = 150usize;
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_node(0);
    }
    for _ in 0..1200 {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// A tree query (pure DP, no conditioning) and a cyclic query (non-empty
/// conditioning set, so the per-S-binding re-expansion loop runs too).
fn queries() -> Vec<PatternQuery> {
    let mut tree = PatternQuery::new(vec![0; 4]);
    tree.add_edge(0, 1, EdgeKind::Direct);
    tree.add_edge(1, 2, EdgeKind::Reachability);
    tree.add_edge(1, 3, EdgeKind::Direct);
    let mut cyc = PatternQuery::new(vec![0; 4]);
    cyc.add_edge(0, 1, EdgeKind::Direct);
    cyc.add_edge(1, 2, EdgeKind::Direct);
    cyc.add_edge(2, 3, EdgeKind::Reachability);
    cyc.add_edge(0, 3, EdgeKind::Reachability); // closes the cycle
    vec![tree, cyc]
}

#[test]
fn repeated_dp_counts_do_not_allocate() {
    let g = dense_graph();
    let bfl = BflIndex::new(&g);
    for (qi, q) in queries().iter().enumerate() {
        let ctx = SimContext::new(&g, q, &bfl);
        let rig = build_rig(&ctx, &bfl, &RigOptions::default());
        assert!(!rig.is_empty(), "workload query {qi} must have matches");

        let mut f = Factorization::new(q, &rig);
        if qi == 1 {
            assert!(!f.is_tree(), "cyclic query must exercise conditioning");
        }
        // warm-up: first pass may lazily touch nothing, but keep the
        // steady-state window strictly after it regardless
        let warm = f.count();
        let expect = warm.total.expect("counts fit in u128 here");
        assert!(expect > 0);

        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        for _ in 0..50 {
            let c = f.count();
            assert_eq!(c.total, Some(expect));
            assert!(f.exists());
        }
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        assert_eq!(
            after,
            before,
            "query {qi}: DP count path allocated {} time(s) across 50 steady-state runs",
            after - before
        );
    }
}
