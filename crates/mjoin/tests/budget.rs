//! Budget enforcement: timeouts fire on explosive enumerations; limits are
//! exact; steps accounting is sane.

use std::time::Duration;

use rig_graph::{GraphBuilder, NodeId};
use rig_index::{build_rig, RigOptions};
use rig_mjoin::{count, EnumOptions};
use rig_query::{EdgeKind, PatternQuery};
use rig_reach::BflIndex;
use rig_sim::SimContext;

/// One-label dense random graph: every k-chain reachability query has an
/// astronomically large answer.
fn explosive_setup() -> (rig_graph::DataGraph, PatternQuery) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    let n = 300usize;
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_node(0);
    }
    for _ in 0..3000 {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    let g = b.build();
    let mut q = PatternQuery::new(vec![0; 5]);
    for i in 1..5u32 {
        q.add_edge(i - 1, i, EdgeKind::Reachability);
    }
    (g, q)
}

#[test]
fn timeout_interrupts_explosive_enumeration() {
    let (g, q) = explosive_setup();
    let bfl = BflIndex::new(&g);
    let ctx = SimContext::new(&g, &q, &bfl);
    let rig = build_rig(&ctx, &bfl, &RigOptions::default());
    let opts = EnumOptions { timeout: Some(Duration::from_millis(50)), ..Default::default() };
    let start = std::time::Instant::now();
    let r = count(&q, &rig, &opts);
    assert!(r.timed_out, "must hit the wall-clock budget");
    // generous bound: the 1024-step check plus enumeration overhead
    assert!(start.elapsed() < Duration::from_secs(10));
    assert!(r.count > 0, "partial results are still produced");
}

#[test]
fn limit_is_exact_on_large_answers() {
    let (g, q) = explosive_setup();
    let bfl = BflIndex::new(&g);
    let ctx = SimContext::new(&g, &q, &bfl);
    let rig = build_rig(&ctx, &bfl, &RigOptions::default());
    for limit in [1u64, 17, 1000] {
        let r = count(&q, &rig, &EnumOptions { limit: Some(limit), ..Default::default() });
        assert_eq!(r.count, limit);
        assert!(r.limit_hit);
        assert!(!r.timed_out);
    }
}

#[test]
fn steps_bounded_by_answer_plus_backtracks() {
    let (g, q) = explosive_setup();
    let bfl = BflIndex::new(&g);
    let ctx = SimContext::new(&g, &q, &bfl);
    let rig = build_rig(&ctx, &bfl, &RigOptions::default());
    let r = count(&q, &rig, &EnumOptions { limit: Some(5_000), ..Default::default() });
    // every answer takes at most |V(Q)| recursion steps on this workload
    assert!(r.steps <= r.count * q.num_nodes() as u64 + q.num_nodes() as u64 * 5_000);
}
