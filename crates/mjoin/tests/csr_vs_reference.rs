//! Differential testing: the CSR RIG + allocation-free MJoin engine must be
//! observationally identical to the pre-CSR reference implementation
//! (hashmap-of-bitsets RIG + materializing multi_and engine) — identical
//! candidate sets, adjacency in both directions, edge cardinalities and
//! enumeration counts — across all `SelectMode` × `EdgeKind` combinations
//! on random graphs.

use proptest::prelude::*;
use rig_graph::GraphBuilder;
use rig_index::reference::build_reference_rig;
use rig_index::{build_rig, RigOptions, SelectMode};
use rig_mjoin::reference::ref_count;
use rig_mjoin::{count, EnumOptions, SearchOrder};
use rig_query::{EdgeKind, PatternQuery};
use rig_reach::BflIndex;
use rig_sim::SimContext;

fn setup_strategy() -> impl Strategy<Value = (rig_graph::DataGraph, PatternQuery)> {
    (
        prop::collection::vec(0u32..3, 4..25),
        prop::collection::vec((0u32..25, 0u32..25), 5..60),
        prop::collection::vec(prop::bool::ANY, 3),
    )
        .prop_map(|(labels, edges, kinds)| {
            let n = labels.len() as u32;
            let mut b = GraphBuilder::new();
            for l in labels {
                b.add_node(l);
            }
            for (u, v) in edges {
                let (u, v) = (u % n, v % n);
                if u != v {
                    b.add_edge(u, v);
                }
            }
            let g = b.build();
            // triangle pattern exercising every EdgeKind combination
            let mut q = PatternQuery::new(vec![0, 1, 2]);
            let kind = |b: bool| if b { EdgeKind::Direct } else { EdgeKind::Reachability };
            q.add_edge(0, 1, kind(kinds[0]));
            q.add_edge(1, 2, kind(kinds[1]));
            q.add_edge(0, 2, kind(kinds[2]));
            (g, q)
        })
}

const ALL_SELECT_MODES: [SelectMode; 4] = [
    SelectMode::MatchSets,
    SelectMode::PrefilterOnly,
    SelectMode::SimOnly,
    SelectMode::PrefilterThenSim,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Structural agreement: cos / successors / predecessors /
    /// edge_cardinality identical between CSR and reference.
    ///
    /// Exact (fixpoint) simulation is used so that the seeded selection of
    /// the CSR build and the intersect-after selection of the reference
    /// build provably converge to the same FB relation.
    #[test]
    fn structures_agree((g, q) in setup_strategy()) {
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        for select in ALL_SELECT_MODES {
            let opts = RigOptions { select, ..RigOptions::exact() };
            let csr = build_rig(&ctx, &bfl, &opts);
            let reference = build_reference_rig(&ctx, &bfl, &opts);
            for i in 0..q.num_nodes() {
                prop_assert_eq!(
                    csr.cos(i).to_vec(),
                    reference.cos[i].to_vec(),
                    "{:?}: cos({}) differs", select, i
                );
            }
            for eid in 0..q.num_edges() as u32 {
                prop_assert_eq!(
                    csr.edge_cardinality(eid),
                    reference.edge_cardinality(eid),
                    "{:?}: |cos(e{})| differs", select, eid
                );
                let (p, t) = csr.edge_endpoints(eid);
                for u in csr.cos(p).iter() {
                    prop_assert_eq!(
                        csr.successors(eid, u).map(|s| s.to_vec()),
                        reference.successors(eid, u).map(|s| s.to_vec()),
                        "{:?}: successors(e{}, {}) differ", select, eid, u
                    );
                }
                for v in csr.cos(t).iter() {
                    prop_assert_eq!(
                        csr.predecessors(eid, v).map(|s| s.to_vec()),
                        reference.predecessors(eid, v).map(|s| s.to_vec()),
                        "{:?}: predecessors(e{}, {}) differ", select, eid, v
                    );
                }
            }
        }
    }

    /// Behavioral agreement: MJoin counts identical across engines, search
    /// orders, selection modes and injectivity.
    #[test]
    fn mjoin_counts_agree((g, q) in setup_strategy()) {
        let bfl = BflIndex::new(&g);
        let ctx = SimContext::new(&g, &q, &bfl);
        for select in ALL_SELECT_MODES {
            let opts = RigOptions { select, ..RigOptions::exact() };
            let csr = build_rig(&ctx, &bfl, &opts);
            let reference = build_reference_rig(&ctx, &bfl, &opts);
            for order in [SearchOrder::Jo, SearchOrder::Ri] {
                for injective in [false, true] {
                    let eo = EnumOptions { order, injective, ..Default::default() };
                    let a = count(&q, &csr, &eo);
                    let b = ref_count(&q, &reference, &eo);
                    prop_assert_eq!(
                        a.count, b.count,
                        "{:?} {:?} injective={}", select, order, injective
                    );
                }
            }
        }
    }
}
