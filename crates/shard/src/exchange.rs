//! The boundary-binding exchange: how scatter-gather workers hand partial
//! bindings to the shards that own the next extension's candidates.
//!
//! [`Exchange`] is deliberately tiny — a `send` / `recv` pair over opaque
//! [`Envelope`]s — because it is the seam a networked backend would plug
//! into: replace the in-process [`ChannelExchange`] with one that
//! serializes envelopes onto sockets and the enumeration engine does not
//! change. Termination (the distributed in-flight count) and budget
//! enforcement live *above* the exchange in [`crate::run_sharded`], so an
//! implementation only has to deliver every sent envelope to its
//! destination shard, in any order.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A message between shard workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Envelope {
    /// A partial binding: locals of the first `binding.len()` search-order
    /// nodes (candidate-local ids are globally consistent, because every
    /// shard's RIG shares the same candidate arrays). The receiving shard
    /// extends it at search position `binding.len()`.
    Task { binding: Vec<u32> },
    /// The run is over; the receiving worker exits its loop.
    Shutdown,
}

/// Transport between shard workers. Implementations must be `Sync`
/// (every worker sends through one shared instance) and must not drop
/// envelopes; delivery order is unconstrained.
pub trait Exchange: Sync {
    /// Enqueues `env` for shard `to`. Must not block indefinitely.
    fn send(&self, to: usize, env: Envelope);

    /// Blocks until the next envelope for shard `shard` arrives.
    fn recv(&self, shard: usize) -> Envelope;
}

/// One shard's inbox: an unbounded queue with a condvar for blocking
/// receivers.
#[derive(Default)]
struct Inbox {
    queue: Mutex<VecDeque<Envelope>>,
    ready: Condvar,
}

/// The in-process [`Exchange`]: one `Inbox` per shard.
pub struct ChannelExchange {
    inboxes: Vec<Inbox>,
}

impl ChannelExchange {
    pub fn new(shards: usize) -> ChannelExchange {
        ChannelExchange { inboxes: (0..shards).map(|_| Inbox::default()).collect() }
    }
}

impl Exchange for ChannelExchange {
    fn send(&self, to: usize, env: Envelope) {
        let inbox = &self.inboxes[to];
        // the queue mutex guards a plain VecDeque; a poisoning panic in a
        // peer leaves the queue itself intact, so recover and proceed
        let mut q = match inbox.queue.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        q.push_back(env);
        inbox.ready.notify_one();
    }

    fn recv(&self, shard: usize) -> Envelope {
        let inbox = &self.inboxes[shard];
        let mut q = match inbox.queue.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        loop {
            if let Some(env) = q.pop_front() {
                return env;
            }
            q = match inbox.ready.wait(q) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_per_shard_fifo_and_unblocks_waiters() {
        let ex = ChannelExchange::new(2);
        ex.send(0, Envelope::Task { binding: vec![1] });
        ex.send(1, Envelope::Shutdown);
        ex.send(0, Envelope::Shutdown);
        assert_eq!(ex.recv(0), Envelope::Task { binding: vec![1] });
        assert_eq!(ex.recv(0), Envelope::Shutdown);
        assert_eq!(ex.recv(1), Envelope::Shutdown);
        // a blocked receiver wakes on a send from another thread
        std::thread::scope(|scope| {
            let h = scope.spawn(|| ex.recv(1));
            scope.spawn(|| ex.send(1, Envelope::Task { binding: vec![9, 9] }));
            assert_eq!(
                match h.join() {
                    Ok(env) => env,
                    Err(p) => std::panic::resume_unwind(p),
                },
                Envelope::Task { binding: vec![9, 9] }
            );
        });
    }
}
