//! Per-shard RIG construction and the sharded query plan.
//!
//! The sharded engine keeps **one candidate array per query node, shared
//! verbatim by every shard** (match sets over live nodes — the largest
//! valid RIG selection, which Prop. 4.1 still makes lossless), and
//! partitions only the RIG *adjacency* by the owner of the new node a run
//! extends to:
//!
//! - shard `t`'s **forward** block for query edge `(p, q)` keeps rows for
//!   *all* sources but only targets owned by `t`;
//! - its **backward** block keeps rows for all targets but only sources
//!   owned by `t`.
//!
//! The two blocks are deliberately *not* mutual transposes — each answers
//! "which extensions does shard `t` own?" for the direction MJoin asks in.
//! Intersecting one shard's constraint runs therefore yields exactly the
//! extensions owned by that shard, and the union over shards is the
//! single-graph intersection, disjointly — the invariant
//! [`crate::run_sharded`] relies on and `tests/shard_differential.rs`
//! checks end to end.
//!
//! Candidate arrays are match sets (not simulation-refined sets) on
//! purpose: they are invariant under edge mutations, so a routed refresh
//! after an edge-only commit can rebuild just the owner shards' blocks
//! ([`ShardedPlan::rebuild`]) while every other shard's local-id CSRs stay
//! valid by construction.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rig_graph::{GraphView, NodeId};
use rig_index::{Rig, RigEdgeParts, RigStats};
use rig_mjoin::{compute_order, SearchOrder};
use rig_query::{EdgeKind, PatternQuery, QNode};

use crate::reach::ShardReach;
use crate::store::ShardedStore;

/// A compiled sharded query: the global search order and constraint
/// schedule (identical on every shard), one partitioned RIG per shard,
/// and the routing signature tables the scatter-gather workers consult
/// to decide which shards can extend a binding.
pub struct ShardedPlan {
    /// Search order (a permutation of query nodes), globally valid
    /// because every shard shares the same candidate arrays.
    pub order: Vec<QNode>,
    /// Per search step `i`: `(edge id, bound search position,
    /// bound_is_source)` — the constraint schedule of MJoin's plan.
    pub(crate) constraints: Vec<Vec<(u32, usize, bool)>>,
    /// One partitioned RIG per shard (shared candidate arrays, per-shard
    /// adjacency blocks).
    pub rigs: Vec<Arc<Rig>>,
    /// `fwd_sig[eid][src_local]`: bitmask of shards whose forward block
    /// has a nonempty run for that source.
    pub(crate) fwd_sig: Vec<Vec<u64>>,
    /// `bwd_sig[eid][tgt_local]`: same for backward runs.
    pub(crate) bwd_sig: Vec<Vec<u64>>,
    /// Per shard: the locals of `order[0]` whose nodes it owns — the root
    /// partition each worker seeds its search from.
    pub(crate) root_locals: Vec<Vec<u32>>,
    /// The query has at least one reachability edge (such plans rebuild
    /// whole on any structural commit — cut closures are global).
    pub has_reach: bool,
    /// Wall-clock cost of this build (selection + expansion + assembly).
    pub build_time: Duration,
}

/// Appends the next CSR offset, refusing to wrap (same guard as the
/// single-graph RIG builder).
#[inline]
fn push_offset(offsets: &mut Vec<u32>, targets_len: usize) {
    assert!(
        u32::try_from(targets_len).is_ok(),
        "query-edge adjacency exceeds u32::MAX entries ({targets_len}); CSR offsets would wrap"
    );
    offsets.push(targets_len as u32);
}

/// Intersects a sorted neighbor list with a sorted candidate array,
/// emitting the candidates' *positions* (local ids) in ascending order.
fn intersect_to_locals(nbrs: &[NodeId], tgt: &[NodeId], out: &mut Vec<u32>) {
    if nbrs.is_empty() || tgt.is_empty() {
        return;
    }
    if nbrs.len() * 16 < tgt.len() {
        for &v in nbrs {
            if let Ok(j) = tgt.binary_search(&v) {
                out.push(j as u32);
            }
        }
    } else if tgt.len() * 16 < nbrs.len() {
        for (j, t) in tgt.iter().enumerate() {
            if nbrs.binary_search(t).is_ok() {
                out.push(j as u32);
            }
        }
    } else {
        let (mut i, mut j) = (0, 0);
        while i < nbrs.len() && j < tgt.len() {
            match nbrs[i].cmp(&tgt[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(j as u32);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Counting-sort transpose of a local-id CSR; every output run comes out
/// sorted because sources are scanned in ascending order.
fn transpose(offsets: &[u32], targets: &[u32], n_targets: usize) -> (Vec<u32>, Vec<u32>) {
    let mut boff = vec![0u32; n_targets + 1];
    for &t in targets {
        boff[t as usize + 1] += 1;
    }
    for i in 0..n_targets {
        boff[i + 1] += boff[i];
    }
    let mut cursor: Vec<u32> = boff[..n_targets].to_vec();
    let mut out = vec![0u32; targets.len()];
    for s in 0..offsets.len().saturating_sub(1) {
        for &t in &targets[offsets[s] as usize..offsets[s + 1] as usize] {
            out[cursor[t as usize] as usize] = s as u32;
            cursor[t as usize] += 1;
        }
    }
    (boff, out)
}

/// One query edge's *unpartitioned* CSR pair, built once and then split
/// into per-shard blocks.
struct FullEdge {
    fwd_off: Vec<u32>,
    fwd_tgt: Vec<u32>,
    bwd_off: Vec<u32>,
    bwd_tgt: Vec<u32>,
}

/// Match-set candidates (live nodes carrying the query node's label),
/// sorted ascending so positions are local ids.
fn match_set_candidates(view: GraphView<'_>, query: &PatternQuery) -> Vec<Vec<NodeId>> {
    let mut cand: Vec<Vec<NodeId>> = (0..query.num_nodes())
        .map(|i| {
            let l = query.label(i as QNode);
            if (l as usize) < view.num_labels() {
                view.nodes_with_label(l).iter().copied().filter(|&v| view.is_live(v)).collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    for c in &mut cand {
        c.sort_unstable();
        c.dedup();
    }
    // Any empty candidate set empties the whole answer: collapse to the
    // empty-shaped plan (mirrors the single-graph builder's short-circuit).
    if cand.iter().any(|c| c.is_empty()) {
        for c in &mut cand {
            c.clear();
        }
    }
    cand
}

/// Per query node: the owner shard of each candidate, by local id.
fn candidate_owners(store: &ShardedStore, cand: &[Vec<NodeId>]) -> Vec<Vec<u8>> {
    cand.iter().map(|c| c.iter().map(|&v| store.owner(v) as u8).collect()).collect()
}

/// The MJoin constraint schedule for `order` (same derivation as the
/// single-graph plan): each query edge constrains the search step that
/// binds its *later* endpoint.
fn constraint_schedule(query: &PatternQuery, order: &[QNode]) -> Vec<Vec<(u32, usize, bool)>> {
    let n = order.len();
    let mut pos_of = vec![usize::MAX; n];
    for (i, &q) in order.iter().enumerate() {
        pos_of[q as usize] = i;
    }
    let mut constraints: Vec<Vec<(u32, usize, bool)>> = vec![Vec::new(); n];
    for (eid, e) in query.edges().iter().enumerate() {
        let pf = pos_of[e.from as usize];
        let pt = pos_of[e.to as usize];
        if pf < pt {
            constraints[pt].push((eid as u32, pf, true));
        } else {
            constraints[pf].push((eid as u32, pt, false));
        }
    }
    constraints
}

/// Recomputes both signature tables from the per-shard blocks: shard `t`'s
/// bit is set for a local iff its block has a nonempty run there.
fn signatures(rigs: &[Arc<Rig>]) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
    let Some(first) = rigs.first() else {
        return (Vec::new(), Vec::new());
    };
    let ne = first.num_query_edges();
    let mut fwd_sig: Vec<Vec<u64>> = Vec::with_capacity(ne);
    let mut bwd_sig: Vec<Vec<u64>> = Vec::with_capacity(ne);
    for eid in 0..ne {
        let (p, q) = first.edge_endpoints(eid as u32);
        let mut fs = vec![0u64; first.candidates(p).len()];
        let mut bs = vec![0u64; first.candidates(q).len()];
        for (t, rig) in rigs.iter().enumerate() {
            let bit = 1u64 << t;
            for (su, slot) in fs.iter_mut().enumerate() {
                if !rig.successors_local(eid as u32, su as u32).is_empty() {
                    *slot |= bit;
                }
            }
            for (tv, slot) in bs.iter_mut().enumerate() {
                if !rig.predecessors_local(eid as u32, tv as u32).is_empty() {
                    *slot |= bit;
                }
            }
        }
        fwd_sig.push(fs);
        bwd_sig.push(bs);
    }
    (fwd_sig, bwd_sig)
}

/// Splits one full CSR pair into shard `s`'s block pair: forward entries
/// filtered to targets `s` owns, backward entries to sources it owns.
fn filter_parts(full: &FullEdge, pq: (usize, usize), owners: &[Vec<u8>], s: usize) -> RigEdgeParts {
    let (p, q) = pq;
    let s = s as u8;
    let mut parts = RigEdgeParts::default();
    parts.fwd_offsets.push(0);
    for su in 0..full.fwd_off.len().saturating_sub(1) {
        let (lo, hi) = (full.fwd_off[su] as usize, full.fwd_off[su + 1] as usize);
        parts
            .fwd_targets
            .extend(full.fwd_tgt[lo..hi].iter().filter(|&&tv| owners[q][tv as usize] == s));
        parts.fwd_offsets.push(parts.fwd_targets.len() as u32);
    }
    parts.bwd_offsets.push(0);
    for tv in 0..full.bwd_off.len().saturating_sub(1) {
        let (lo, hi) = (full.bwd_off[tv] as usize, full.bwd_off[tv + 1] as usize);
        parts
            .bwd_targets
            .extend(full.bwd_tgt[lo..hi].iter().filter(|&&su| owners[p][su as usize] == s));
        parts.bwd_offsets.push(parts.bwd_targets.len() as u32);
    }
    parts
}

impl ShardedPlan {
    /// Compiles `query` against a sharded store: expands every query edge
    /// once (direct edges by adjacency intersection through `view`,
    /// reachability edges by one cut-graph walk per source through
    /// [`ShardReach::reachable_tags`]), then assembles the per-shard
    /// blocks on scoped threads and derives the routing signatures.
    pub fn build(
        view: GraphView<'_>,
        store: &ShardedStore,
        query: &PatternQuery,
        strategy: SearchOrder,
    ) -> ShardedPlan {
        let start = Instant::now();
        let ns = store.num_shards();
        let part = store.partition();
        let cand = match_set_candidates(view, query);
        let owners = candidate_owners(store, &cand);
        let edge_nodes: Vec<(usize, usize)> =
            query.edges().iter().map(|e| (e.from as usize, e.to as usize)).collect();
        let reach = ShardReach::new(store);

        // ---- expansion: one full CSR pair per query edge ----
        let fulls: Vec<FullEdge> = (0..query.num_edges())
            .map(|eid| {
                let e = query.edge(eid as u32);
                let (p, q) = (e.from as usize, e.to as usize);
                let (src, tgt) = (&cand[p], &cand[q]);
                let mut off = Vec::with_capacity(src.len() + 1);
                off.push(0u32);
                let mut tgts: Vec<u32> = Vec::new();
                match e.kind {
                    EdgeKind::Direct => {
                        for &u in src {
                            intersect_to_locals(view.out_neighbors(u), tgt, &mut tgts);
                            push_offset(&mut off, tgts.len());
                        }
                    }
                    EdgeKind::Reachability => {
                        let mut by_shard: Vec<Vec<(u32, NodeId)>> = vec![Vec::new(); ns];
                        for (j, &v) in tgt.iter().enumerate() {
                            by_shard[part.owner(v)].push((j as u32, v));
                        }
                        for &u in src {
                            tgts.extend(reach.reachable_tags(u, &by_shard));
                            push_offset(&mut off, tgts.len());
                        }
                    }
                }
                let (bwd_off, bwd_tgt) = transpose(&off, &tgts, tgt.len());
                FullEdge { fwd_off: off, fwd_tgt: tgts, bwd_off, bwd_tgt }
            })
            .collect();

        // ---- per-shard block assembly (scoped threads) ----
        let rigs: Vec<Arc<Rig>> = std::thread::scope(|scope| {
            let (cand, owners, fulls, edge_nodes) = (&cand, &owners, &fulls, &edge_nodes);
            let handles: Vec<_> = (0..ns)
                .map(|s| {
                    scope.spawn(move || {
                        let parts: Vec<RigEdgeParts> = fulls
                            .iter()
                            .zip(edge_nodes.iter())
                            .map(|(full, &pq)| filter_parts(full, pq, owners, s))
                            .collect();
                        Arc::new(Rig::from_parts(
                            cand.clone(),
                            edge_nodes.clone(),
                            parts,
                            RigStats::default(),
                        ))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(rig) => rig,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        });

        Self::assemble(query, strategy, rigs, &owners, start)
    }

    /// Routed refresh after an edge-only commit: rebuilds only the shards
    /// flagged in `stale` against the new `view`, sharing every other
    /// shard's RIG with `prior`. Sound because the candidate arrays are
    /// match sets (edge mutations cannot change them) — node or label
    /// commits, and any commit under a reachability plan, must go through
    /// a full [`ShardedPlan::build`] instead.
    pub fn rebuild(
        view: GraphView<'_>,
        store: &ShardedStore,
        query: &PatternQuery,
        prior: &ShardedPlan,
        stale: &[bool],
    ) -> ShardedPlan {
        debug_assert!(!prior.has_reach, "reachability plans rebuild whole");
        let start = Instant::now();
        let Some(first) = prior.rigs.first() else {
            return Self::build(view, store, query, SearchOrder::Jo);
        };
        let cand: Vec<Vec<NodeId>> =
            (0..query.num_nodes()).map(|i| first.candidates(i).to_vec()).collect();
        let owners = candidate_owners(store, &cand);
        let edge_nodes: Vec<(usize, usize)> =
            query.edges().iter().map(|e| (e.from as usize, e.to as usize)).collect();
        let rigs: Vec<Arc<Rig>> = std::thread::scope(|scope| {
            let (cand, owners, edge_nodes) = (&cand, &owners, &edge_nodes);
            let handles: Vec<_> = (0..prior.rigs.len())
                .map(|s| {
                    let old = Arc::clone(&prior.rigs[s]);
                    let rebuild = stale.get(s).copied().unwrap_or(true);
                    scope.spawn(move || {
                        if !rebuild {
                            return old;
                        }
                        let parts: Vec<RigEdgeParts> = edge_nodes
                            .iter()
                            .enumerate()
                            .map(|(eid, &(p, q))| {
                                build_shard_direct(view, cand, owners, query, eid, p, q, s)
                            })
                            .collect();
                        Arc::new(Rig::from_parts(
                            cand.clone(),
                            edge_nodes.clone(),
                            parts,
                            RigStats::default(),
                        ))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(rig) => rig,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        });
        Self::assemble_with_order(
            prior.order.clone(),
            prior.constraints.clone(),
            rigs,
            &owners,
            prior.has_reach,
            start,
        )
    }

    fn assemble(
        query: &PatternQuery,
        strategy: SearchOrder,
        rigs: Vec<Arc<Rig>>,
        owners: &[Vec<u8>],
        start: Instant,
    ) -> ShardedPlan {
        let order = match rigs.first() {
            Some(first) => compute_order(query, first, strategy),
            None => Vec::new(),
        };
        let constraints = constraint_schedule(query, &order);
        let has_reach = query.edges().iter().any(|e| e.kind == EdgeKind::Reachability);
        Self::assemble_with_order(order, constraints, rigs, owners, has_reach, start)
    }

    fn assemble_with_order(
        order: Vec<QNode>,
        constraints: Vec<Vec<(u32, usize, bool)>>,
        rigs: Vec<Arc<Rig>>,
        owners: &[Vec<u8>],
        has_reach: bool,
        start: Instant,
    ) -> ShardedPlan {
        let (fwd_sig, bwd_sig) = signatures(&rigs);
        let mut root_locals: Vec<Vec<u32>> = vec![Vec::new(); rigs.len()];
        if let Some(&rq) = order.first() {
            for (l, &owner) in owners[rq as usize].iter().enumerate() {
                root_locals[owner as usize].push(l as u32);
            }
        }
        ShardedPlan {
            order,
            constraints,
            rigs,
            fwd_sig,
            bwd_sig,
            root_locals,
            has_reach,
            build_time: start.elapsed(),
        }
    }

    /// Number of shards this plan is partitioned across.
    pub fn num_shards(&self) -> usize {
        self.rigs.len()
    }

    /// True iff some candidate set is empty (the answer is empty).
    pub fn is_empty(&self) -> bool {
        self.rigs.first().is_none_or(|r| r.is_empty())
    }

    /// Total RIG adjacency entries across all shards (each entry lives in
    /// exactly one shard's forward block).
    pub fn total_edge_entries(&self) -> u64 {
        self.rigs.iter().map(|r| r.stats.edge_count).sum()
    }
}

/// One-pass per-shard block build for a *direct* edge against a fresh
/// view: each source's full intersection row is computed once, its
/// `s`-owned targets appended to the forward block, and — when `s` owns
/// the source — the whole row buffered for the backward transpose.
#[allow(clippy::too_many_arguments)]
fn build_shard_direct(
    view: GraphView<'_>,
    cand: &[Vec<NodeId>],
    owners: &[Vec<u8>],
    query: &PatternQuery,
    eid: usize,
    p: usize,
    q: usize,
    s: usize,
) -> RigEdgeParts {
    debug_assert_eq!(query.edge(eid as u32).kind, EdgeKind::Direct);
    let (src, tgt) = (&cand[p], &cand[q]);
    let s8 = s as u8;
    let mut parts = RigEdgeParts::default();
    parts.fwd_offsets.push(0);
    // rows over ALL sources; only `s`-owned sources contribute entries
    let mut own_off: Vec<u32> = Vec::with_capacity(src.len() + 1);
    own_off.push(0);
    let mut own_tgt: Vec<u32> = Vec::new();
    let mut row: Vec<u32> = Vec::new();
    for (su, &u) in src.iter().enumerate() {
        row.clear();
        intersect_to_locals(view.out_neighbors(u), tgt, &mut row);
        parts.fwd_targets.extend(row.iter().filter(|&&tv| owners[q][tv as usize] == s8));
        push_offset(&mut parts.fwd_offsets, parts.fwd_targets.len());
        if owners[p][su] == s8 {
            own_tgt.extend_from_slice(&row);
        }
        push_offset(&mut own_off, own_tgt.len());
    }
    let (bwd_offsets, bwd_targets) = transpose(&own_off, &own_tgt, tgt.len());
    parts.bwd_offsets = bwd_offsets;
    parts.bwd_targets = bwd_targets;
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::{DataGraph, GraphBuilder};
    use rig_reach::{BflIndex, Reachability};

    use crate::partition::ShardOptions;

    fn random_graph(seed: u64, n: u32, edges: usize, labels: u32) -> DataGraph {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(rng.gen_range(0..labels));
        }
        for _ in 0..edges {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    fn mixed_query() -> PatternQuery {
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Reachability);
        q.add_edge(0, 2, EdgeKind::Direct);
        q
    }

    /// Brute-force expected full RIG row for one (edge, source candidate).
    fn expected_row(
        g: &DataGraph,
        bfl: &BflIndex,
        kind: EdgeKind,
        u: NodeId,
        tgt: &[NodeId],
    ) -> Vec<u32> {
        tgt.iter()
            .enumerate()
            .filter(|&(_, &v)| match kind {
                EdgeKind::Direct => g.out_neighbors(u).binary_search(&v).is_ok(),
                EdgeKind::Reachability => bfl.reaches(u, v),
            })
            .map(|(j, _)| j as u32)
            .collect()
    }

    /// Union over shards of each forward/backward run equals the
    /// unpartitioned RIG run; every entry lives in exactly one shard.
    #[test]
    fn shard_blocks_union_to_whole_graph_rig() {
        let g = random_graph(3, 30, 70, 3);
        let bfl = BflIndex::new(&g);
        let q = mixed_query();
        for opts in [ShardOptions::hash(1), ShardOptions::hash(4), ShardOptions::range(3)] {
            let store = ShardedStore::build(GraphView::from(&g), &opts);
            let plan = ShardedPlan::build(GraphView::from(&g), &store, &q, SearchOrder::Jo);
            assert!(plan.has_reach);
            let first = &plan.rigs[0];
            for eid in 0..q.num_edges() {
                let e = q.edge(eid as u32);
                let (p, t) = (e.from as usize, e.to as usize);
                for su in 0..first.candidates(p).len() {
                    let mut union: Vec<u32> = plan
                        .rigs
                        .iter()
                        .flat_map(|r| r.successors_local(eid as u32, su as u32).list.to_vec())
                        .collect();
                    union.sort_unstable();
                    let expect = expected_row(
                        &g,
                        &bfl,
                        e.kind,
                        first.candidates(p)[su],
                        first.candidates(t),
                    );
                    assert_eq!(union, expect, "{opts:?} e{eid} su{su}");
                    // disjointness: union length == sum of shard lengths
                    let total: usize = plan
                        .rigs
                        .iter()
                        .map(|r| r.successors_local(eid as u32, su as u32).len())
                        .sum();
                    assert_eq!(total, expect.len());
                    // signature bits match nonemptiness exactly
                    let mask = plan.fwd_sig[eid][su];
                    for (sh, r) in plan.rigs.iter().enumerate() {
                        let nonempty = !r.successors_local(eid as u32, su as u32).is_empty();
                        assert_eq!(mask & (1 << sh) != 0, nonempty, "fwd sig e{eid} su{su}");
                    }
                }
                // backward blocks partition the predecessors by source owner
                for tv in 0..first.candidates(t).len() {
                    let mut union: Vec<u32> = plan
                        .rigs
                        .iter()
                        .flat_map(|r| r.predecessors_local(eid as u32, tv as u32).list.to_vec())
                        .collect();
                    union.sort_unstable();
                    let v = first.candidates(t)[tv];
                    let expect: Vec<u32> = first
                        .candidates(p)
                        .iter()
                        .enumerate()
                        .filter(|&(_, &u)| match e.kind {
                            EdgeKind::Direct => g.out_neighbors(u).binary_search(&v).is_ok(),
                            EdgeKind::Reachability => bfl.reaches(u, v),
                        })
                        .map(|(j, _)| j as u32)
                        .collect();
                    assert_eq!(union, expect, "{opts:?} e{eid} tv{tv} (bwd)");
                    let mask = plan.bwd_sig[eid][tv];
                    for (sh, r) in plan.rigs.iter().enumerate() {
                        let nonempty = !r.predecessors_local(eid as u32, tv as u32).is_empty();
                        assert_eq!(mask & (1 << sh) != 0, nonempty, "bwd sig e{eid} tv{tv}");
                    }
                }
            }
            // root locals partition the root candidate range
            let mut all: Vec<u32> = plan.root_locals.iter().flatten().copied().collect();
            all.sort_unstable();
            let n_root = first.candidates(plan.order[0] as usize).len() as u32;
            assert_eq!(all, (0..n_root).collect::<Vec<u32>>());
        }
    }

    /// A routed rebuild with every shard stale reproduces a fresh build;
    /// untouched shards are shared by pointer.
    #[test]
    fn rebuild_matches_build_and_shares_untouched() {
        let g = random_graph(9, 24, 50, 2);
        let mut q = PatternQuery::new(vec![0, 1]);
        q.add_edge(0, 1, EdgeKind::Direct);
        let store = ShardedStore::build(GraphView::from(&g), &ShardOptions::hash(4));
        let plan = ShardedPlan::build(GraphView::from(&g), &store, &q, SearchOrder::Jo);
        let all_stale = ShardedPlan::rebuild(GraphView::from(&g), &store, &q, &plan, &[true; 4]);
        for s in 0..4 {
            let (a, b) = (&plan.rigs[s], &all_stale.rigs[s]);
            for i in 0..q.num_nodes() {
                assert_eq!(a.candidates(i), b.candidates(i));
            }
            for su in 0..a.candidates(0).len() as u32 {
                assert_eq!(
                    a.successors_local(0, su).list,
                    b.successors_local(0, su).list,
                    "shard {s} fwd {su}"
                );
            }
            for tv in 0..a.candidates(1).len() as u32 {
                assert_eq!(
                    a.predecessors_local(0, tv).list,
                    b.predecessors_local(0, tv).list,
                    "shard {s} bwd {tv}"
                );
            }
        }
        assert_eq!(plan.fwd_sig, all_stale.fwd_sig);
        assert_eq!(plan.bwd_sig, all_stale.bwd_sig);
        let partial = ShardedPlan::rebuild(
            GraphView::from(&g),
            &store,
            &q,
            &plan,
            &[false, true, false, false],
        );
        assert!(Arc::ptr_eq(&plan.rigs[0], &partial.rigs[0]));
        assert!(!Arc::ptr_eq(&plan.rigs[1], &partial.rigs[1]));
        assert!(Arc::ptr_eq(&plan.rigs[2], &partial.rigs[2]));
    }

    /// A label with no live candidates collapses to the empty-shaped plan.
    #[test]
    fn missing_label_is_empty_plan() {
        let g = random_graph(1, 10, 20, 2);
        let mut q = PatternQuery::new(vec![0, 7]); // label 7 absent
        q.add_edge(0, 1, EdgeKind::Direct);
        let store = ShardedStore::build(GraphView::from(&g), &ShardOptions::hash(2));
        let plan = ShardedPlan::build(GraphView::from(&g), &store, &q, SearchOrder::Jo);
        assert!(plan.is_empty());
        assert_eq!(plan.total_edge_entries(), 0);
        assert!(plan.root_locals.iter().all(|r| r.is_empty()));
    }
}
