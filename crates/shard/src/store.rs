//! The partitioned graph store: one [`ShardStore`] per partition, each a
//! pair of materialized [`rig_graph::DataGraph`]s (incident + internal) with its own
//! BFL reachability index and cut-edge tables to the other shards.
//!
//! Every shard graph keeps the **full global id space** (node `v` is dense
//! id `v` in every shard), so ids — and therefore RIG candidate-local
//! ids — mean the same thing on every shard and boundary bindings cross
//! the [`crate::Exchange`] without re-localization. Only *edges* are
//! partitioned:
//!
//! - the **incident** graph of shard `s` holds every edge with at least
//!   one endpoint owned by `s` — complete out-adjacency for owned
//!   sources, complete in-adjacency for owned targets;
//! - the **internal** graph holds only edges with *both* endpoints owned,
//!   and is what the per-shard [`BflIndex`] is built on;
//! - edges crossing a shard boundary land in the **cut tables**: the
//!   owner of the source records an *exit* (`cut_out`), the owner of the
//!   target an *entry* (`cut_in`). [`crate::ShardReach`] composes
//!   per-shard BFL answers over exactly these tables.
//!
//! Builds read the graph through a [`GraphView`], so a dirty snapshot
//! (uncompacted delta overlay) materializes into ordinary per-shard CSRs
//! and the per-shard BFL stays sound without any overlay-aware machinery.

use std::sync::{Arc, Mutex};

use rig_graph::{FxHashMap, GraphBuilder, GraphView, NodeId};
use rig_reach::{BflIndex, Reachability};

use crate::partition::{Partition, ShardOptions};

/// Size counters of one shard, surfaced by `explain` and `/metrics`.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Nodes this shard owns (live only).
    pub owned_nodes: u64,
    /// Edges with both endpoints owned.
    pub internal_edges: u64,
    /// Cut edges whose source this shard owns (exits).
    pub cut_out: u64,
    /// Cut edges whose target this shard owns (entries).
    pub cut_in: u64,
}

/// One partition of a [`ShardedStore`].
pub struct ShardStore {
    /// All edges incident to an owned endpoint (full node id space).
    pub incident: rig_graph::DataGraph,
    /// Owned-to-owned edges only; the base of `bfl`.
    pub internal: rig_graph::DataGraph,
    /// Reachability index over `internal`.
    pub bfl: BflIndex,
    /// Owned sources of cut edges, sorted ascending.
    pub exits: Vec<NodeId>,
    /// Cut edges leaving this shard, sorted by source (then target).
    cut_out_edges: Vec<(NodeId, NodeId)>,
    pub stats: ShardStats,
    /// Memoized cut closure: for a node `w` of this shard, the exits of
    /// this shard reachable from `w` through the **internal** graph
    /// (including `w` itself when it is an exit). Local to this shard's
    /// internal graph + exit set, so a commit touching only other shards
    /// never stales it.
    closure: Mutex<FxHashMap<NodeId, Arc<Vec<NodeId>>>>,
}

impl ShardStore {
    fn build(view: GraphView<'_>, part: &Partition, s: usize) -> ShardStore {
        let n = view.num_nodes();
        let mut inc = GraphBuilder::new();
        let mut int = GraphBuilder::new();
        let mut owned_nodes = 0u64;
        for v in 0..n as NodeId {
            let l = view.label(v);
            inc.add_node(l);
            int.add_node(l);
            if part.owner(v) == s && view.is_live(v) {
                owned_nodes += 1;
            }
        }
        let mut cut_out_edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut cut_in = 0u64;
        let mut internal_edges = 0u64;
        for u in 0..n as NodeId {
            if !view.is_live(u) {
                continue;
            }
            let ou = part.owner(u);
            for &v in view.out_neighbors(u) {
                let ov = part.owner(v);
                if ou != s && ov != s {
                    continue;
                }
                inc.add_edge(u, v);
                if ou == s && ov == s {
                    int.add_edge(u, v);
                    internal_edges += 1;
                } else if ou == s {
                    cut_out_edges.push((u, v));
                } else {
                    cut_in += 1;
                }
            }
        }
        cut_out_edges.sort_unstable();
        let mut exits: Vec<NodeId> = cut_out_edges.iter().map(|&(u, _)| u).collect();
        exits.dedup();
        let internal = int.build();
        let bfl = BflIndex::new(&internal);
        ShardStore {
            incident: inc.build(),
            internal,
            bfl,
            stats: ShardStats {
                owned_nodes,
                internal_edges,
                cut_out: cut_out_edges.len() as u64,
                cut_in,
            },
            exits,
            cut_out_edges,
            closure: Mutex::new(FxHashMap::default()),
        }
    }

    /// The cut edges leaving this shard whose source is `exit` (empty for
    /// non-exits).
    pub fn cut_successors(&self, exit: NodeId) -> &[(NodeId, NodeId)] {
        let lo = self.cut_out_edges.partition_point(|&(u, _)| u < exit);
        let hi = self.cut_out_edges.partition_point(|&(u, _)| u <= exit);
        &self.cut_out_edges[lo..hi]
    }

    /// Exits of this shard reachable from `w` through the internal graph
    /// (`w` itself included when it is an exit), memoized per node.
    pub fn exits_from(&self, w: NodeId) -> Arc<Vec<NodeId>> {
        // the closure mutex only guards a memo map; a poisoned entry
        // (panicked prober) is recovered by recomputing
        let mut memo = match self.closure.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if let Some(hit) = memo.get(&w) {
            return Arc::clone(hit);
        }
        let mut out: Vec<NodeId> = Vec::new();
        for &x in &self.exits {
            if x == w || self.bfl.reaches(w, x) {
                out.push(x);
            }
        }
        let out = Arc::new(out);
        memo.insert(w, Arc::clone(&out));
        out
    }
}

impl std::fmt::Debug for ShardStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardStore").field("stats", &self.stats).finish()
    }
}

/// The full partitioned store: the owner function plus one
/// [`ShardStore`] per shard (individually `Arc`'d so a routed refresh
/// rebuilds only the touched partitions and shares the rest).
#[derive(Debug, Clone)]
pub struct ShardedStore {
    part: Partition,
    shards: Vec<Arc<ShardStore>>,
}

impl ShardedStore {
    /// Partitions `view` into `opts.shards` stores. Each shard's
    /// (incident graph, internal graph, BFL, cut tables) build is
    /// independent, so they run on scoped threads.
    pub fn build(view: GraphView<'_>, opts: &ShardOptions) -> ShardedStore {
        let part = Partition::new(opts, view.num_nodes());
        let n = part.num_shards();
        let shards = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|s| scope.spawn(move || Arc::new(ShardStore::build(view, &part, s))))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(store) => store,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        });
        ShardedStore { part, shards }
    }

    /// Rebuilds only the shards flagged in `stale` against `view`,
    /// sharing every other partition with `self` — the routed-refresh
    /// path for edge-only commits, whose blast radius is exactly the
    /// owner shards of the touched endpoints.
    pub fn refresh(&self, view: GraphView<'_>, stale: &[bool]) -> ShardedStore {
        let part = self.part;
        let shards = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(s, old)| {
                    let old = Arc::clone(old);
                    let rebuild = stale.get(s).copied().unwrap_or(true);
                    scope.spawn(move || {
                        if rebuild {
                            Arc::new(ShardStore::build(view, &part, s))
                        } else {
                            old
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(store) => store,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        });
        ShardedStore { part, shards }
    }

    pub fn partition(&self) -> Partition {
        self.part
    }

    pub fn num_shards(&self) -> usize {
        self.part.num_shards()
    }

    #[inline]
    pub fn owner(&self, v: NodeId) -> usize {
        self.part.owner(v)
    }

    pub fn shard(&self, s: usize) -> &ShardStore {
        &self.shards[s]
    }

    /// Total cut edges (each crossing edge counted once, at its source
    /// owner).
    pub fn total_cut_edges(&self) -> u64 {
        self.shards.iter().map(|s| s.stats.cut_out).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::DataGraph;

    fn line_graph(n: u32) -> DataGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(0);
        }
        for v in 1..n {
            b.add_edge(v - 1, v);
        }
        b.build()
    }

    #[test]
    fn partitions_edges_exactly_once() {
        let g = line_graph(20);
        for opts in [ShardOptions::hash(4), ShardOptions::range(4)] {
            let st = ShardedStore::build(GraphView::from(&g), &opts);
            let internal: u64 = (0..4).map(|s| st.shard(s).stats.internal_edges).sum();
            let cut: u64 = st.total_cut_edges();
            assert_eq!(internal + cut, g.num_edges() as u64, "{opts:?}");
            let cut_in: u64 = (0..4).map(|s| st.shard(s).stats.cut_in).sum();
            assert_eq!(cut, cut_in, "every cut edge has exactly one entry owner");
            let owned: u64 = (0..4).map(|s| st.shard(s).stats.owned_nodes).sum();
            assert_eq!(owned, g.num_nodes() as u64);
        }
    }

    #[test]
    fn single_shard_has_no_cut() {
        let g = line_graph(10);
        let st = ShardedStore::build(GraphView::from(&g), &ShardOptions::hash(1));
        assert_eq!(st.total_cut_edges(), 0);
        assert_eq!(st.shard(0).stats.internal_edges, 9);
        assert!(st.shard(0).exits.is_empty());
    }

    #[test]
    fn incident_graph_has_complete_adjacency_for_owned_nodes() {
        let g = line_graph(16);
        let st = ShardedStore::build(GraphView::from(&g), &ShardOptions::range(4));
        for v in 0..16 as NodeId {
            let s = st.owner(v);
            assert_eq!(
                st.shard(s).incident.out_neighbors(v),
                g.out_neighbors(v),
                "owned out-adjacency is complete"
            );
            assert_eq!(st.shard(s).incident.in_neighbors(v), g.in_neighbors(v));
        }
    }

    #[test]
    fn refresh_shares_untouched_shards() {
        let g = line_graph(16);
        let st = ShardedStore::build(GraphView::from(&g), &ShardOptions::range(4));
        let st2 = st.refresh(GraphView::from(&g), &[false, true, false, false]);
        assert!(Arc::ptr_eq(&st.shards[0], &st2.shards[0]));
        assert!(!Arc::ptr_eq(&st.shards[1], &st2.shards[1]));
        assert!(Arc::ptr_eq(&st.shards[2], &st2.shards[2]));
    }
}
