//! Sharded execution: partition the graph, scatter-gather the MJoin.
//!
//! This crate splits a data graph into `N` edge-partitioned shards
//! ([`ShardedStore`]), builds one RIG block pair per shard
//! ([`ShardedPlan`]), and enumerates pattern matches with a
//! scatter-gather MJoin ([`run_sharded`]) in which each shard worker
//! binds only the extensions it owns and exchanges boundary bindings
//! with the owning shards over the [`Exchange`] seam.
//!
//! The moving parts, bottom-up:
//!
//! - [`Partition`] / [`ShardOptions`] — the owner function (hash or
//!   range over node ids) every sharded structure agrees on;
//! - [`ShardedStore`] — per-shard incident/internal graphs, BFL
//!   indexes and cut-edge tables, built on scoped threads and refreshed
//!   shard-by-shard after routed commits;
//! - [`ShardReach`] — cross-shard reachability composing per-shard BFL
//!   answers over the memoized cut closure;
//! - [`ShardedPlan`] — shared match-set candidate arrays plus per-shard
//!   forward/backward RIG blocks and the routing signature tables;
//! - [`Exchange`] / [`ChannelExchange`] — the boundary-binding
//!   transport (in-process today; the trait is where a networked
//!   backend plugs in);
//! - [`run_sharded`] — the scatter-gather enumeration itself, honoring
//!   the exact `limit` / timeout budget discipline of the single-graph
//!   engines.
//!
//! `docs/sharding.md` walks through the partitioning scheme, the
//! cut-edge closure, the Exchange contract and when sharding pays off.

pub mod exchange;
pub mod exec;
pub mod partition;
pub mod plan;
pub mod reach;
pub mod store;

pub use exchange::{ChannelExchange, Envelope, Exchange};
pub use exec::{run_sharded, run_sharded_on, ShardRun, ShardRunStats};
pub use partition::{Partition, Partitioner, ShardOptions, MAX_SHARDS};
pub use plan::ShardedPlan;
pub use reach::ShardReach;
pub use store::{ShardStats, ShardStore, ShardedStore};

#[cfg(test)]
mod tests {
    use rig_mjoin::EnumResult;

    /// Satellite regression: the merge used to combine per-shard results
    /// is total — counts and steps add, and BOTH budget flags survive,
    /// whichever side carried them. (Dropping `limit_hit` across a
    /// partitioned merge was a real pre-morsel bug; the sharded gather
    /// leans on the same totality.)
    #[test]
    fn shard_merge_totality() {
        for (a_lim, a_to, b_lim, b_to) in [
            (true, false, false, false),
            (false, true, false, false),
            (false, false, true, true),
            (true, true, false, false),
        ] {
            let mut a = EnumResult {
                count: 5,
                timed_out: a_to,
                limit_hit: a_lim,
                order: vec![0, 1],
                steps: 11,
            };
            let b = EnumResult {
                count: 2,
                timed_out: b_to,
                limit_hit: b_lim,
                order: vec![0, 1],
                steps: 3,
            };
            a.merge(&b);
            assert_eq!(a.count, 7);
            assert_eq!(a.steps, 14);
            assert_eq!(a.limit_hit, a_lim || b_lim, "limit_hit dropped in merge");
            assert_eq!(a.timed_out, a_to || b_to, "timed_out dropped in merge");
        }
    }
}
