//! Node-id partitioning: the owner function every sharded structure
//! (store, RIG blocks, task routing) agrees on.

use rig_graph::NodeId;

/// Routing masks are `u64` bitmasks, so a sharded store holds at most 64
/// partitions. Requests beyond that are clamped.
pub const MAX_SHARDS: usize = 64;

/// How node ids map to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partitioner {
    /// Fibonacci-multiply hash of the node id, modulo shard count.
    /// Id-dense subgraphs spread evenly; stable under graph growth (the
    /// owner of `v` never depends on the node count).
    Hash,
    /// Even split of the id space into contiguous ranges. Preserves the
    /// locality of generators that allocate related ids together, but the
    /// mapping is a function of the node count: growing the graph moves
    /// boundaries, so range-partitioned artifacts rebuild on node commits.
    Range,
}

impl Partitioner {
    /// Parses the CLI / config spelling (`hash` / `range`).
    pub fn parse(s: &str) -> Option<Partitioner> {
        match s {
            "hash" => Some(Partitioner::Hash),
            "range" => Some(Partitioner::Range),
            _ => None,
        }
    }

    /// The CLI / metrics spelling.
    pub fn name(self) -> &'static str {
        match self {
            Partitioner::Hash => "hash",
            Partitioner::Range => "range",
        }
    }
}

/// Sharding configuration handed to `Session::set_sharding` and the
/// `--shards` CLI flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardOptions {
    /// Number of partitions (clamped to `1..=`[`MAX_SHARDS`]).
    pub shards: usize,
    pub partitioner: Partitioner,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions { shards: 1, partitioner: Partitioner::Hash }
    }
}

impl ShardOptions {
    /// `n` hash partitions.
    pub fn hash(shards: usize) -> ShardOptions {
        ShardOptions { shards, partitioner: Partitioner::Hash }
    }

    /// `n` range partitions.
    pub fn range(shards: usize) -> ShardOptions {
        ShardOptions { shards, partitioner: Partitioner::Range }
    }

    /// The effective shard count after clamping.
    pub fn effective_shards(&self) -> usize {
        self.shards.clamp(1, MAX_SHARDS)
    }
}

/// A frozen owner function: [`ShardOptions`] bound to a concrete node
/// count. Copy — workers pass it by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    shards: usize,
    partitioner: Partitioner,
    /// Range-partition chunk width (`ceil(num_nodes / shards)`, min 1).
    chunk: u32,
}

impl Partition {
    pub fn new(opts: &ShardOptions, num_nodes: usize) -> Partition {
        let shards = opts.effective_shards();
        Partition {
            shards,
            partitioner: opts.partitioner,
            chunk: (num_nodes.div_ceil(shards).max(1)) as u32,
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards
    }

    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// The shard owning node `v`.
    #[inline]
    pub fn owner(&self, v: NodeId) -> usize {
        match self.partitioner {
            Partitioner::Hash => {
                (((v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % self.shards as u64)
                    as usize
            }
            Partitioner::Range => ((v / self.chunk) as usize).min(self.shards - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_in_range_and_total() {
        for p in [Partitioner::Hash, Partitioner::Range] {
            for shards in [1usize, 2, 3, 8] {
                let part = Partition::new(&ShardOptions { shards, partitioner: p }, 1000);
                let mut seen = vec![0u32; shards];
                for v in 0..1000u32 {
                    let o = part.owner(v);
                    assert!(o < shards, "{p:?} {shards}");
                    seen[o] += 1;
                }
                assert_eq!(seen.iter().sum::<u32>(), 1000);
                if shards > 1 {
                    assert!(seen.iter().all(|&c| c > 0), "{p:?}: some shard owns nothing");
                }
            }
        }
    }

    #[test]
    fn range_is_contiguous_and_hash_is_growth_stable() {
        let part = Partition::new(&ShardOptions::range(4), 100);
        for v in 1..100u32 {
            assert!(part.owner(v) >= part.owner(v - 1), "range owners are monotone");
        }
        let small = Partition::new(&ShardOptions::hash(4), 100);
        let big = Partition::new(&ShardOptions::hash(4), 100_000);
        for v in 0..100u32 {
            assert_eq!(small.owner(v), big.owner(v), "hash owner is independent of node count");
        }
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ShardOptions::hash(0).effective_shards(), 1);
        assert_eq!(ShardOptions::hash(1000).effective_shards(), MAX_SHARDS);
        let part = Partition::new(&ShardOptions::hash(1000), 10);
        assert!(part.num_shards() <= MAX_SHARDS);
    }
}
