//! Scatter-gather MJoin over a [`ShardedPlan`]: one worker per shard
//! enumerates extensions *its shard owns* and hands bindings whose next
//! extension lives elsewhere to the owning shards through an
//! [`Exchange`].
//!
//! Each worker runs the ordinary MJoin backtracking search against its
//! shard's RIG blocks — by construction (see [`crate::plan`]) the
//! intersection of one shard's constraint runs yields exactly the
//! extensions that shard owns, so the workers' outputs partition the
//! answer. Before descending into search position `i + 1`, a worker ANDs
//! the routing signatures of the bound constraint locals: the resulting
//! bitmask is exactly the set of shards whose blocks can extend this
//! binding. Its own bit recurses inline (no envelope, no counter
//! traffic); every other bit becomes a [`Envelope::Task`] on the
//! exchange.
//!
//! **Termination** is a distributed credit count: `in_flight` starts at
//! one credit per root task, each remote send adds one, each fully
//! processed task releases one, and the worker that releases the last
//! credit broadcasts [`Envelope::Shutdown`] to every shard. **Budgets**
//! mirror the single-graph parallel engine exactly: a shared stop flag
//! polled once per recursion step, the limit enforced by atomic emit
//! reservations (exactly `limit` matches emitted across all shards, and
//! `limit_hit` / `timed_out` survive the merge), the deadline probed
//! every 1024 steps.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use rig_graph::NodeId;
use rig_index::{AdjRun, Rig};
use rig_mjoin::{EnumOptions, EnumResult};

use crate::exchange::{ChannelExchange, Envelope, Exchange};
use crate::plan::ShardedPlan;

/// Per-shard execution counters, surfaced by `explain` and `/metrics`.
#[derive(Debug, Clone, Default)]
pub struct ShardRunStats {
    /// Tasks this shard's worker received (its root task included).
    pub tasks: u64,
    /// Bindings it handed to other shards.
    pub sent: u64,
    /// Matches it emitted.
    pub emitted: u64,
    /// Recursion steps it took.
    pub steps: u64,
}

/// Outcome of a sharded run: the merged [`EnumResult`] (counts and steps
/// summed, budget flags OR-ed), the collected tuples when requested
/// (sorted ascending, so output order is deterministic regardless of
/// exchange interleaving), and per-shard counters.
#[derive(Debug, Clone)]
pub struct ShardRun {
    pub result: EnumResult,
    pub tuples: Vec<Vec<NodeId>>,
    pub per_shard: Vec<ShardRunStats>,
}

/// Budget state shared by every shard worker (the sharded analogue of the
/// parallel engine's shared state, plus the termination credit count).
struct ShardShared<'x, E: Exchange> {
    exchange: &'x E,
    num_shards: usize,
    /// Outstanding task credits; the worker releasing the last one
    /// broadcasts shutdown.
    in_flight: AtomicU64,
    stop: AtomicBool,
    emitted: AtomicU64,
    timed_out: AtomicBool,
    limit_hit: AtomicBool,
    deadline: Option<Instant>,
}

impl<E: Exchange> ShardShared<'_, E> {
    fn broadcast_shutdown(&self) {
        for t in 0..self.num_shards {
            self.exchange.send(t, Envelope::Shutdown);
        }
    }
}

/// Reusable per-depth scratch (same shape as the single-graph worker's).
struct StepScratch<'r> {
    q: usize,
    ops: Vec<AdjRun<'r>>,
    cursors: Vec<usize>,
    buf: Vec<u32>,
}

enum Src<'r> {
    Root,
    Slice(&'r [u32]),
    Buf,
}

struct ShardWorker<'a, 'x, E: Exchange> {
    shard: usize,
    plan: &'a ShardedPlan,
    rig: &'a Rig,
    opts: &'a EnumOptions,
    shared: &'a ShardShared<'x, E>,
    steps: Vec<StepScratch<'a>>,
    tuple_local: Vec<u32>,
    tuple_global: Vec<NodeId>,
    out_tuple: Vec<NodeId>,
    check_counter: u32,
    want_tuples: bool,
    tuples: Vec<Vec<NodeId>>,
    stats: ShardRunStats,
    result: EnumResult,
}

impl<'a, 'x, E: Exchange> ShardWorker<'a, 'x, E> {
    fn new(
        shard: usize,
        plan: &'a ShardedPlan,
        opts: &'a EnumOptions,
        shared: &'a ShardShared<'x, E>,
        want_tuples: bool,
    ) -> ShardWorker<'a, 'x, E> {
        let n = plan.order.len();
        let rig: &'a Rig = &plan.rigs[shard];
        let steps: Vec<StepScratch<'a>> = plan
            .order
            .iter()
            .enumerate()
            .map(|(i, &q)| StepScratch {
                q: q as usize,
                ops: Vec::with_capacity(plan.constraints[i].len()),
                cursors: Vec::with_capacity(plan.constraints[i].len()),
                buf: Vec::with_capacity(rig.candidates(q as usize).len()),
            })
            .collect();
        ShardWorker {
            shard,
            plan,
            rig,
            opts,
            shared,
            steps,
            tuple_local: vec![0; n],
            tuple_global: vec![0; n],
            out_tuple: vec![0; n],
            check_counter: 0,
            want_tuples,
            tuples: Vec::new(),
            stats: ShardRunStats::default(),
            result: EnumResult::empty(plan.order.clone()),
        }
    }

    /// Message loop: process tasks until the shutdown broadcast arrives.
    fn run(&mut self) {
        loop {
            match self.shared.exchange.recv(self.shard) {
                Envelope::Shutdown => return,
                Envelope::Task { binding } => {
                    self.stats.tasks += 1;
                    let depth = binding.len();
                    for (i, &l) in binding.iter().enumerate() {
                        self.tuple_local[i] = l;
                        self.tuple_global[i] = self.rig.node_at(self.plan.order[i] as usize, l);
                    }
                    // a stopped run still drains its queue: each task is
                    // received, does nothing, and releases its credit
                    self.extend(depth);
                    if self.shared.in_flight.fetch_sub(1, Ordering::AcqRel) == 1 {
                        self.shared.broadcast_shutdown();
                    }
                }
            }
        }
    }

    /// Terminal-condition poll, once per recursion step (mirrors the
    /// single-graph worker).
    fn stopped(&mut self) -> bool {
        if self.shared.stop.load(Ordering::Relaxed) {
            return true;
        }
        self.check_counter += 1;
        if self.check_counter >= 1024 {
            self.check_counter = 0;
            if let Some(deadline) = self.shared.deadline {
                if Instant::now() > deadline {
                    self.result.timed_out = true;
                    self.shared.timed_out.store(true, Ordering::Relaxed);
                    self.shared.stop.store(true, Ordering::Relaxed);
                    return true;
                }
            }
        }
        false
    }

    /// Emits the current full binding under the shared reservation
    /// discipline: the n-th reservation is emitted iff `n <= limit`, so
    /// all shards together emit exactly `limit` matches.
    fn emit(&mut self) -> bool {
        for (i, &q) in self.plan.order.iter().enumerate() {
            self.out_tuple[q as usize] = self.tuple_global[i];
        }
        let sh = self.shared;
        match self.opts.limit {
            None => {
                self.result.count += 1;
                self.stats.emitted += 1;
                if self.want_tuples {
                    self.tuples.push(self.out_tuple.clone());
                }
                true
            }
            Some(limit) => {
                let prev = sh.emitted.fetch_add(1, Ordering::Relaxed);
                if prev >= limit {
                    sh.limit_hit.store(true, Ordering::Relaxed);
                    sh.stop.store(true, Ordering::Relaxed);
                    return false;
                }
                self.result.count += 1;
                self.stats.emitted += 1;
                if self.want_tuples {
                    self.tuples.push(self.out_tuple.clone());
                }
                if prev + 1 == limit {
                    self.result.limit_hit = true;
                    sh.limit_hit.store(true, Ordering::Relaxed);
                    sh.stop.store(true, Ordering::Relaxed);
                    return false;
                }
                true
            }
        }
    }

    /// Routing mask for search position `i`: AND of the bound constraint
    /// locals' signatures — exactly the shards whose blocks can extend
    /// the current binding (a shard with any empty run intersects empty).
    fn route_mask(&self, i: usize) -> u64 {
        let ns = self.plan.num_shards();
        let mut mask = if ns >= 64 { u64::MAX } else { (1u64 << ns) - 1 };
        for &(eid, bound_pos, bound_is_source) in &self.plan.constraints[i] {
            let l = self.tuple_local[bound_pos] as usize;
            let sig = if bound_is_source {
                self.plan.fwd_sig[eid as usize][l]
            } else {
                self.plan.bwd_sig[eid as usize][l]
            };
            mask &= sig;
            if mask == 0 {
                break;
            }
        }
        mask
    }

    /// Binds search position `i` to every extension this shard owns,
    /// routing each deeper binding to the shards that can continue it.
    /// Returns `false` when enumeration must stop entirely.
    fn extend(&mut self, i: usize) -> bool {
        if i == self.steps.len() {
            return self.emit();
        }
        if self.stopped() {
            return false;
        }
        self.result.steps += 1;
        self.stats.steps += 1;

        self.steps[i].ops.clear();
        for &(eid, bound_pos, bound_is_source) in &self.plan.constraints[i] {
            let bound_local = self.tuple_local[bound_pos];
            let run = if bound_is_source {
                self.rig.successors_local(eid, bound_local)
            } else {
                self.rig.predecessors_local(eid, bound_local)
            };
            if run.is_empty() {
                // this shard owns no extension here; other shards in the
                // parent's routing mask cover theirs
                return true;
            }
            self.steps[i].ops.push(run);
        }

        let (src, count) = match self.steps[i].ops.len() {
            0 => {
                debug_assert_eq!(i, 0, "only the root step is unconstrained");
                (Src::Root, self.plan.root_locals[self.shard].len())
            }
            1 => {
                let run = self.steps[i].ops[0];
                (Src::Slice(run.list), run.len())
            }
            _ => {
                let len = self.intersect_into(i);
                (Src::Buf, len)
            }
        };

        let q = self.steps[i].q;
        for k in 0..count {
            let v_local = match src {
                Src::Root => self.plan.root_locals[self.shard][k],
                Src::Slice(list) => list[k],
                Src::Buf => self.steps[i].buf[k],
            };
            let v_global = self.rig.node_at(q, v_local);
            if self.opts.injective && self.tuple_global[..i].contains(&v_global) {
                continue;
            }
            self.tuple_local[i] = v_local;
            self.tuple_global[i] = v_global;
            if i + 1 == self.steps.len() {
                if !self.emit() {
                    return false;
                }
                continue;
            }
            let mut mask = self.route_mask(i + 1);
            let own_bit = 1u64 << self.shard;
            let descend_here = mask & own_bit != 0;
            mask &= !own_bit;
            // scatter to remote owners first, then recurse inline
            while mask != 0 {
                let t = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.shared.in_flight.fetch_add(1, Ordering::AcqRel);
                self.stats.sent += 1;
                self.shared
                    .exchange
                    .send(t, Envelope::Task { binding: self.tuple_local[..=i].to_vec() });
            }
            if descend_here && !self.extend(i + 1) {
                return false;
            }
        }
        true
    }

    /// Multiway intersection into the step's scratch buffer — same
    /// smallest-driver + galloping-probe routine as the single-graph
    /// engine.
    fn intersect_into(&mut self, i: usize) -> usize {
        let step = &mut self.steps[i];
        let mut driver_at = 0;
        for k in 1..step.ops.len() {
            if step.ops[k].len() < step.ops[driver_at].len() {
                driver_at = k;
            }
        }
        step.ops.swap(0, driver_at);
        let driver = step.ops[0];
        step.buf.clear();
        let (mut lo, mut hi) = (0u32, u32::MAX);
        for o in &step.ops {
            // ops are nonempty (empty runs return early in extend)
            lo = lo.max(o.list[0]);
            hi = hi.min(o.list[o.list.len() - 1]);
        }
        if lo > hi {
            return 0;
        }
        step.cursors.clear();
        step.cursors.resize(step.ops.len(), 0);
        'outer: for &v in driver.list {
            for k in 1..step.ops.len() {
                if !step.ops[k].contains_from(&mut step.cursors[k], v) {
                    continue 'outer;
                }
            }
            step.buf.push(v);
        }
        step.buf.len()
    }
}

/// Runs `plan` to completion over `exchange`: one scoped worker thread
/// per shard, each seeded with a root task. Returns the merged result,
/// per-shard counters, and (when `want_tuples`) every emitted tuple
/// sorted ascending.
pub fn run_sharded_on<E: Exchange>(
    plan: &ShardedPlan,
    opts: &EnumOptions,
    exchange: &E,
    want_tuples: bool,
) -> ShardRun {
    let ns = plan.num_shards();
    let mut merged = EnumResult::empty(plan.order.clone());
    if plan.order.is_empty() || plan.is_empty() || ns == 0 {
        return ShardRun {
            result: merged,
            tuples: Vec::new(),
            per_shard: vec![ShardRunStats::default(); ns],
        };
    }
    let shared = ShardShared {
        exchange,
        num_shards: ns,
        in_flight: AtomicU64::new(ns as u64),
        stop: AtomicBool::new(false),
        emitted: AtomicU64::new(0),
        timed_out: AtomicBool::new(false),
        limit_hit: AtomicBool::new(false),
        deadline: opts.timeout.map(|t| Instant::now() + t),
    };
    // an already-expired budget stops the run before any search happens
    // (the root tasks still flow through so every worker shuts down)
    if let Some(deadline) = shared.deadline {
        if Instant::now() > deadline {
            shared.timed_out.store(true, Ordering::Relaxed);
            shared.stop.store(true, Ordering::Relaxed);
        }
    }
    for s in 0..ns {
        exchange.send(s, Envelope::Task { binding: Vec::new() });
    }
    let workers: Vec<ShardWorker<'_, '_, E>> = std::thread::scope(|scope| {
        let shared = &shared;
        let handles: Vec<_> = (0..ns)
            .map(|s| {
                scope.spawn(move || {
                    let mut w = ShardWorker::new(s, plan, opts, shared, want_tuples);
                    w.run();
                    w
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(w) => w,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });
    let mut tuples: Vec<Vec<NodeId>> = Vec::new();
    let mut per_shard: Vec<ShardRunStats> = Vec::with_capacity(ns);
    for w in workers {
        merged.merge(&w.result);
        tuples.extend(w.tuples);
        per_shard.push(w.stats);
    }
    merged.timed_out |= shared.timed_out.load(Ordering::Relaxed);
    merged.limit_hit |= shared.limit_hit.load(Ordering::Relaxed);
    tuples.sort_unstable();
    ShardRun { result: merged, tuples, per_shard }
}

/// [`run_sharded_on`] over the in-process [`ChannelExchange`] — the entry
/// point the session terminals use.
pub fn run_sharded(plan: &ShardedPlan, opts: &EnumOptions, want_tuples: bool) -> ShardRun {
    let exchange = ChannelExchange::new(plan.num_shards());
    run_sharded_on(plan, opts, &exchange, want_tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::{DataGraph, GraphBuilder, GraphView};
    use rig_mjoin::SearchOrder;
    use rig_query::{EdgeKind, PatternQuery};

    use crate::partition::ShardOptions;
    use crate::store::ShardedStore;

    fn fig2_graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_node(0);
        }
        for _ in 0..4 {
            b.add_node(1);
        }
        for _ in 0..3 {
            b.add_node(2);
        }
        b.add_edge(1, 3);
        b.add_edge(1, 7);
        b.add_edge(3, 8);
        b.add_edge(8, 7);
        b.add_edge(2, 5);
        b.add_edge(2, 9);
        b.add_edge(5, 9);
        b.add_edge(5, 8);
        b.add_edge(0, 4);
        b.add_edge(4, 7);
        b.add_edge(6, 0);
        b.build()
    }

    fn plan_for(g: &DataGraph, q: &PatternQuery, opts: &ShardOptions) -> ShardedPlan {
        let store = ShardedStore::build(GraphView::from(g), opts);
        ShardedPlan::build(GraphView::from(g), &store, q, SearchOrder::Jo)
    }

    /// The running example answer survives sharding at every shard count.
    #[test]
    fn fig2_answer_is_shard_count_invariant() {
        let g = fig2_graph();
        let q = rig_query::fig2_query();
        for opts in [
            ShardOptions::hash(1),
            ShardOptions::hash(2),
            ShardOptions::hash(4),
            ShardOptions::range(3),
        ] {
            let plan = plan_for(&g, &q, &opts);
            let run = run_sharded(&plan, &EnumOptions::default(), true);
            assert_eq!(run.result.count, 2, "{opts:?}");
            assert_eq!(run.tuples, vec![vec![1, 3, 7], vec![2, 5, 9]], "{opts:?}");
            assert!(!run.result.timed_out && !run.result.limit_hit);
            let emitted: u64 = run.per_shard.iter().map(|s| s.emitted).sum();
            assert_eq!(emitted, 2);
        }
    }

    /// The limit reservation is exact across shards: exactly `limit`
    /// tuples come out and `limit_hit` survives the merge.
    #[test]
    fn cross_shard_limit_is_exact() {
        let g = fig2_graph();
        let q = rig_query::fig2_query();
        for shards in [2usize, 4, 8] {
            let plan = plan_for(&g, &q, &ShardOptions::hash(shards));
            let run = run_sharded(&plan, &EnumOptions::default().with_limit(1), true);
            assert_eq!(run.result.count, 1, "shards={shards}");
            assert_eq!(run.tuples.len(), 1);
            assert!(run.result.limit_hit, "limit_hit must survive the merge");
            assert!(!run.result.timed_out);
        }
    }

    /// A zero timeout reports `timed_out` (never a silent empty answer).
    #[test]
    fn zero_timeout_reports_timeout() {
        let g = fig2_graph();
        let q = rig_query::fig2_query();
        let plan = plan_for(&g, &q, &ShardOptions::hash(2));
        let run = run_sharded(
            &plan,
            &EnumOptions::default().with_timeout(std::time::Duration::ZERO),
            false,
        );
        assert!(run.result.timed_out);
        assert_eq!(run.result.count, 0);
    }

    /// Injective (isomorphism-style) matching excludes repeated data
    /// nodes across shard boundaries too.
    #[test]
    fn injective_mode_is_shard_invariant() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(0);
        let y = b.add_node(1);
        b.add_edge(x, y);
        let g = b.build();
        let mut q = PatternQuery::new(vec![0, 0, 1]);
        q.add_edge(0, 2, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Direct);
        for shards in [1usize, 2, 4] {
            let plan = plan_for(&g, &q, &ShardOptions::hash(shards));
            let homo = run_sharded(&plan, &EnumOptions::default(), false);
            assert_eq!(homo.result.count, 1, "shards={shards}");
            let iso = run_sharded(&plan, &EnumOptions::default().with_injective(true), false);
            assert_eq!(iso.result.count, 0, "shards={shards}");
        }
    }

    /// Random graphs: sharded counts and tuples are invariant in the
    /// shard count (shards=1 is the reference).
    #[test]
    fn random_graphs_are_shard_count_invariant() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 20u32;
            let mut b = GraphBuilder::new();
            for _ in 0..n {
                b.add_node(rng.gen_range(0..3));
            }
            for _ in 0..50 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    b.add_edge(u, v);
                }
            }
            let g = b.build();
            let mut q = PatternQuery::new(vec![0, 1, 2]);
            q.add_edge(0, 1, EdgeKind::Direct);
            q.add_edge(1, 2, EdgeKind::Reachability);
            let reference = {
                let plan = plan_for(&g, &q, &ShardOptions::hash(1));
                run_sharded(&plan, &EnumOptions::default(), true)
            };
            for opts in [ShardOptions::hash(3), ShardOptions::hash(8), ShardOptions::range(4)] {
                let plan = plan_for(&g, &q, &opts);
                let run = run_sharded(&plan, &EnumOptions::default(), true);
                assert_eq!(run.result.count, reference.result.count, "seed={seed} {opts:?}");
                assert_eq!(run.tuples, reference.tuples, "seed={seed} {opts:?}");
            }
        }
    }
}
