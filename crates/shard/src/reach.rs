//! Cross-shard reachability: per-shard BFL answers composed over the cut
//! tables.
//!
//! Any path `u ⇝ v` in the global graph decomposes into maximal segments
//! that stay inside one shard, stitched together by cut edges. Each
//! internal segment is decided by that shard's BFL; the stitching is a
//! BFS over the (much smaller) *cut graph*, whose positions are the entry
//! nodes of each shard. Per-shard cut closures (`exits reachable from a
//! node through the internal graph`) are memoized inside each
//! [`crate::ShardStore`], so repeated probes amortize.
//!
//! Semantics match [`Reachability`]: `reaches(u, v)` asks for a path of
//! length ≥ 1 — a node reaches itself only around a cycle. A cut edge
//! contributes length 1, so reaching `v` *as* an entry is conclusive,
//! while the very first internal segment from `u` must be non-empty
//! (which BFL's own length ≥ 1 contract already enforces).

use rig_graph::{FxHashSet, NodeId};
use rig_reach::Reachability;

use crate::store::ShardedStore;

/// A [`Reachability`] oracle over a [`ShardedStore`]. Cheap to construct
/// (borrows the store); probe cost is one same-shard BFL probe in the
/// fast path and a cut-graph BFS otherwise.
pub struct ShardReach<'a> {
    store: &'a ShardedStore,
}

impl<'a> ShardReach<'a> {
    pub fn new(store: &'a ShardedStore) -> ShardReach<'a> {
        ShardReach { store }
    }

    /// Walks every position reachable from `u` (the origin, then entry
    /// nodes discovered through cut edges), invoking `visit(w, origin)`
    /// once per position. `visit` returns `true` to stop early (answer
    /// found). The origin flag distinguishes the length-0 start from
    /// entries reached by a real path.
    fn walk(&self, u: NodeId, mut visit: impl FnMut(NodeId, bool) -> bool) -> bool {
        if visit(u, true) {
            return true;
        }
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        let mut frontier: Vec<NodeId> = vec![u];
        while let Some(w) = frontier.pop() {
            let sw = self.store.owner(w);
            let shard = self.store.shard(sw);
            for &x in shard.exits_from(w).iter() {
                for &(_, e) in shard.cut_successors(x) {
                    if seen.insert(e) {
                        if visit(e, false) {
                            return true;
                        }
                        frontier.push(e);
                    }
                }
            }
        }
        false
    }
}

impl Reachability for ShardReach<'_> {
    fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        let sv = self.store.owner(v);
        self.walk(u, |w, _is_origin| {
            // `w == v` at an entry is a complete path (the cut edge into
            // `v` has length 1); at the origin it is the length-0 start
            // and proves nothing — which is exactly what excluding the
            // origin's trivial self-hit via the BFL probe gives us:
            // `bfl.reaches(v, v)` is true only around an internal cycle.
            (!_is_origin && w == v)
                || (self.store.owner(w) == sv && self.store.shard(sv).bfl.reaches(w, v))
        })
    }

    fn build_seconds(&self) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "shard-bfl+cut"
    }
}

impl ShardReach<'_> {
    /// All targets of `tgt_by_shard` reachable from `u` (path length ≥ 1),
    /// returned as their caller-supplied tags, sorted ascending.
    /// `tgt_by_shard[s]` lists `(tag, node)` pairs owned by shard `s` —
    /// the per-shard grouping lets each visited position probe only the
    /// candidates its own BFL can answer. One cut-graph walk per source,
    /// shared across all targets: this is the bulk entry point RIG
    /// reachability expansion uses instead of per-pair [`Self::reaches`]
    /// probes.
    pub fn reachable_tags(&self, u: NodeId, tgt_by_shard: &[Vec<(u32, NodeId)>]) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        self.walk(u, |w, is_origin| {
            let sw = self.store.owner(w);
            let bfl = &self.store.shard(sw).bfl;
            for &(tag, v) in &tgt_by_shard[sw] {
                // an entry *is* a completed path to itself; the origin is
                // not (length 0) — its self-reachability needs a cycle,
                // which the BFL probe below decides.
                if (!is_origin && v == w) || bfl.reaches(w, v) {
                    out.push(tag);
                }
            }
            false // exhaustive walk: collect from every position
        });
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::{DataGraph, GraphBuilder, GraphView};
    use rig_reach::BflIndex;

    use crate::partition::ShardOptions;

    fn assert_agrees(g: &DataGraph, opts: &ShardOptions) {
        let truth = BflIndex::new(g);
        let store = ShardedStore::build(GraphView::from(g), opts);
        let reach = ShardReach::new(&store);
        let n = g.num_nodes() as NodeId;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(reach.reaches(u, v), truth.reaches(u, v), "{opts:?}: reaches({u}, {v})");
            }
        }
    }

    #[test]
    fn line_and_cycle_agree_with_whole_graph_bfl() {
        let mut b = GraphBuilder::new();
        for _ in 0..10 {
            b.add_node(0);
        }
        for v in 1..10 {
            b.add_edge(v - 1, v);
        }
        let line = b.build();
        let mut b = GraphBuilder::new();
        for _ in 0..9 {
            b.add_node(0);
        }
        for v in 0..9u32 {
            b.add_edge(v, (v + 1) % 9);
        }
        let cycle = b.build();
        for opts in [
            ShardOptions::hash(1),
            ShardOptions::hash(3),
            ShardOptions::range(3),
            ShardOptions::range(4),
        ] {
            assert_agrees(&line, &opts);
            assert_agrees(&cycle, &opts);
        }
    }

    #[test]
    fn random_graphs_agree_with_whole_graph_bfl() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 24u32;
            let mut b = GraphBuilder::new();
            for _ in 0..n {
                b.add_node(rng.gen_range(0..3));
            }
            for _ in 0..60 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    b.add_edge(u, v);
                }
            }
            let g = b.build();
            for opts in [ShardOptions::hash(2), ShardOptions::hash(5), ShardOptions::range(4)] {
                assert_agrees(&g, &opts);
            }
        }
    }

    #[test]
    fn reachable_tags_matches_pairwise_probes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20u32;
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(0);
        }
        for _ in 0..45 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let store = ShardedStore::build(GraphView::from(&g), &ShardOptions::hash(3));
        let reach = ShardReach::new(&store);
        let mut by_shard: Vec<Vec<(u32, NodeId)>> = vec![Vec::new(); 3];
        for v in 0..n {
            by_shard[store.owner(v)].push((v, v));
        }
        for u in 0..n {
            let bulk = reach.reachable_tags(u, &by_shard);
            let pairwise: Vec<u32> = (0..n).filter(|&v| reach.reaches(u, v)).collect();
            assert_eq!(bulk, pairwise, "source {u}");
        }
    }
}
