//! Hybrid graph pattern queries (§2–§3 of the paper).
//!
//! A pattern query is a small connected directed graph whose nodes carry
//! labels and whose edges are either **direct** (edge-to-edge mapping) or
//! **reachability** (edge-to-path mapping). A pattern mixing both kinds is
//! a *hybrid* pattern. This crate provides:
//!
//! * the [`PatternQuery`] type with adjacency accessors used by every later
//!   stage;
//! * query **transitive closure / reduction** (§3) — dropping reachability
//!   edges implied by other paths before evaluation;
//! * the 20 reconstructed **Fig. 7 templates** and their C/H/D flavors;
//! * **random query extraction** from a data graph with a non-empty-answer
//!   guarantee (used by the hp/yt/hu workloads of §7);
//! * a line-oriented text **parser** for queries;
//! * **HPQL**, the textual hybrid-pattern language
//!   (`MATCH (a:Author)->(p:Paper)=>(q:Paper)`), in [`hpql`].

pub mod generator;
pub mod hpql;
pub mod parser;
pub mod reduction;
pub mod templates;

pub use generator::{random_query, GeneratorConfig};
pub use hpql::{
    closest_label, looks_like_hpql, parse_hpql, to_hpql, HpqlError, HpqlQuery, HpqlResolved, Span,
};
pub use parser::{parse_query, query_to_text, QueryParseError};
pub use reduction::{transitive_closure, transitive_reduction};
pub use templates::{template, template_count, Flavor, TemplateId};

use rig_graph::Label;

/// Query node identifier (dense `0..num_nodes`).
pub type QNode = u32;

/// Query edge identifier (dense index into [`PatternQuery::edges`]).
pub type EdgeId = u32;

/// The two structural relationships a pattern edge can denote (Def. 2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Edge-to-edge: `(h(p), h(q))` must be an edge of the data graph.
    Direct,
    /// Edge-to-path: `h(p) ≺ h(q)` must hold in the data graph.
    Reachability,
}

/// A directed pattern edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternEdge {
    pub from: QNode,
    pub to: QNode,
    pub kind: EdgeKind,
}

/// Structural error from pattern construction
/// ([`PatternQuery::try_add_edge`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// An edge endpoint is not a node of the pattern.
    NodeOutOfRange { node: QNode, num_nodes: usize },
    /// `from == to`: self-loop constraints are not expressible in the
    /// paper's model (Def. 2.1 patterns are simple).
    SelfLoop { node: QNode },
    /// The exact `(from, to, kind)` triple is already present.
    DuplicateEdge { edge: PatternEdge },
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "edge endpoint {node} out of range (pattern has {num_nodes} node(s))")
            }
            PatternError::SelfLoop { node } => {
                write!(f, "self-loop on pattern node {node} is not expressible")
            }
            PatternError::DuplicateEdge { edge } => write!(
                f,
                "duplicate {} edge ({}, {})",
                match edge.kind {
                    EdgeKind::Direct => "direct",
                    EdgeKind::Reachability => "reachability",
                },
                edge.from,
                edge.to
            ),
        }
    }
}

impl std::error::Error for PatternError {}

/// Structural class used to group workloads in §7.1.
///
/// Precedence follows the paper: complete → `Clique`; more than two
/// independent undirected cycles → `Combo`; at least one → `Cyclic`;
/// otherwise `Acyclic` (undirected tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    Acyclic,
    Cyclic,
    Clique,
    Combo,
}

/// A hybrid graph pattern query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternQuery {
    labels: Vec<Label>,
    edges: Vec<PatternEdge>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl PatternQuery {
    /// Creates a query with the given node labels and no edges.
    pub fn new(labels: Vec<Label>) -> Self {
        let n = labels.len();
        PatternQuery {
            labels,
            edges: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
        }
    }

    /// Adds an edge, rejecting malformed input with a [`PatternError`]:
    /// out-of-range endpoints, self-loops, and duplicate `(from, to, kind)`
    /// triples (which earlier versions silently ignored). A direct and a
    /// reachability edge between the same endpoints are distinct
    /// constraints and both accepted.
    pub fn try_add_edge(
        &mut self,
        from: QNode,
        to: QNode,
        kind: EdgeKind,
    ) -> Result<EdgeId, PatternError> {
        let n = self.labels.len();
        for node in [from, to] {
            if node as usize >= n {
                return Err(PatternError::NodeOutOfRange { node, num_nodes: n });
            }
        }
        if from == to {
            return Err(PatternError::SelfLoop { node: from });
        }
        let e = PatternEdge { from, to, kind };
        if self.edges.contains(&e) {
            return Err(PatternError::DuplicateEdge { edge: e });
        }
        let id = self.edges.len() as EdgeId;
        self.edges.push(e);
        self.out_adj[from as usize].push(id);
        self.in_adj[to as usize].push(id);
        Ok(id)
    }

    /// Adds an edge; panics on what [`PatternQuery::try_add_edge`] rejects
    /// (the infallible convenience for hand-built patterns whose shape is
    /// statically known — parsers and generators use `try_add_edge` /
    /// [`PatternQuery::ensure_edge`] instead).
    #[track_caller]
    pub fn add_edge(&mut self, from: QNode, to: QNode, kind: EdgeKind) -> EdgeId {
        match self.try_add_edge(from, to, kind) {
            Ok(id) => id,
            Err(e) => panic!("add_edge: {e}"),
        }
    }

    /// Adds the edge if absent, returning the id of the (new or existing)
    /// edge. The dedup behavior `add_edge` used to have, for callers that
    /// build patterns from sources with legitimate repeats (transitive
    /// closure, random extraction, kind-collapsing rewrites).
    #[track_caller]
    pub fn ensure_edge(&mut self, from: QNode, to: QNode, kind: EdgeKind) -> EdgeId {
        let e = PatternEdge { from, to, kind };
        if let Some(pos) = self.edges.iter().position(|&x| x == e) {
            return pos as EdgeId;
        }
        self.add_edge(from, to, kind)
    }

    /// Removes edge `id`, renumbering subsequent edge ids.
    pub fn remove_edge(&mut self, id: EdgeId) {
        self.edges.remove(id as usize);
        self.rebuild_adj();
    }

    fn rebuild_adj(&mut self) {
        for adj in self.out_adj.iter_mut().chain(self.in_adj.iter_mut()) {
            adj.clear();
        }
        for (i, e) in self.edges.iter().enumerate() {
            self.out_adj[e.from as usize].push(i as EdgeId);
            self.in_adj[e.to as usize].push(i as EdgeId);
        }
    }

    /// Number of pattern nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of pattern edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Label of node `q`.
    #[inline]
    pub fn label(&self, q: QNode) -> Label {
        self.labels[q as usize]
    }

    /// All node labels.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[PatternEdge] {
        &self.edges
    }

    /// Edge by id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> PatternEdge {
        self.edges[id as usize]
    }

    /// Ids of edges leaving `q`.
    #[inline]
    pub fn out_edges(&self, q: QNode) -> &[EdgeId] {
        &self.out_adj[q as usize]
    }

    /// Ids of edges entering `q`.
    #[inline]
    pub fn in_edges(&self, q: QNode) -> &[EdgeId] {
        &self.in_adj[q as usize]
    }

    /// Neighbors of `q` in the *undirected* sense together with the edge id
    /// and direction (`true` = outgoing).
    pub fn neighbors(&self, q: QNode) -> impl Iterator<Item = (QNode, EdgeId, bool)> + '_ {
        let out =
            self.out_adj[q as usize].iter().map(move |&e| (self.edges[e as usize].to, e, true));
        let inn =
            self.in_adj[q as usize].iter().map(move |&e| (self.edges[e as usize].from, e, false));
        out.chain(inn)
    }

    /// Undirected degree of `q`.
    pub fn degree(&self, q: QNode) -> usize {
        self.out_adj[q as usize].len() + self.in_adj[q as usize].len()
    }

    /// True iff every pair of nodes is connected by an undirected path.
    pub fn is_connected(&self) -> bool {
        if self.num_nodes() == 0 {
            return true;
        }
        let mut seen = vec![false; self.num_nodes()];
        let mut stack = vec![0 as QNode];
        seen[0] = true;
        let mut count = 1;
        while let Some(q) = stack.pop() {
            for (nb, _, _) in self.neighbors(q) {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    count += 1;
                    stack.push(nb);
                }
            }
        }
        count == self.num_nodes()
    }

    /// Topological order of the pattern nodes, or `None` if the pattern has
    /// a directed cycle.
    pub fn topological_order(&self) -> Option<Vec<QNode>> {
        let n = self.num_nodes();
        let mut indeg: Vec<usize> = (0..n).map(|q| self.in_adj[q].len()).collect();
        let mut queue: Vec<QNode> = (0..n as QNode).filter(|&q| indeg[q as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(q) = queue.pop() {
            order.push(q);
            for &e in &self.out_adj[q as usize] {
                let t = self.edges[e as usize].to as usize;
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push(t as QNode);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// True iff the pattern has no directed cycle.
    pub fn is_dag(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Splits the edges into a spanning DAG and a set of *back edges* whose
    /// removal breaks all directed cycles (the Dag+Δ decomposition used by
    /// `FBSim`, §4.4). Returns `(dag_edge_ids, back_edge_ids)`.
    pub fn dag_decomposition(&self) -> (Vec<EdgeId>, Vec<EdgeId>) {
        // Iterative DFS over the directed pattern; an edge to a node on the
        // current DFS stack is a back edge.
        let n = self.num_nodes();
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            White,
            Gray,
            Black,
        }
        let mut state = vec![State::White; n];
        let mut back: Vec<EdgeId> = Vec::new();
        let mut stack: Vec<(QNode, usize)> = Vec::new();
        for root in 0..n as QNode {
            if state[root as usize] != State::White {
                continue;
            }
            state[root as usize] = State::Gray;
            stack.push((root, 0));
            while let Some(&mut (q, ref mut ci)) = stack.last_mut() {
                let out = &self.out_adj[q as usize];
                if *ci < out.len() {
                    let eid = out[*ci];
                    *ci += 1;
                    let t = self.edges[eid as usize].to;
                    match state[t as usize] {
                        State::White => {
                            state[t as usize] = State::Gray;
                            stack.push((t, 0));
                        }
                        State::Gray => back.push(eid),
                        State::Black => {}
                    }
                } else {
                    state[q as usize] = State::Black;
                    stack.pop();
                }
            }
        }
        let back_set: std::collections::HashSet<EdgeId> = back.iter().copied().collect();
        let dag: Vec<EdgeId> =
            (0..self.edges.len() as EdgeId).filter(|e| !back_set.contains(e)).collect();
        (dag, back)
    }

    /// Returns a copy with only the given edges (node set unchanged).
    pub fn with_edges(&self, keep: &[EdgeId]) -> PatternQuery {
        let mut q = PatternQuery::new(self.labels.clone());
        for &e in keep {
            let pe = self.edges[e as usize];
            q.add_edge(pe.from, pe.to, pe.kind);
        }
        q
    }

    /// The canonical form of this pattern: same nodes and labels, edges
    /// sorted by `(from, to, kind)` so that two patterns with the same
    /// constraints compare equal regardless of edge insertion order. Node
    /// numbering is preserved — it is part of the query's meaning
    /// (occurrence tuples are indexed by it). Used as the plan-cache key by
    /// `rigmatch`'s `Session` and by the HPQL round-trip tests.
    pub fn canonical(&self) -> PatternQuery {
        let mut edges = self.edges.clone();
        edges.sort_unstable_by_key(|e| (e.from, e.to, e.kind == EdgeKind::Reachability));
        let mut q = PatternQuery::new(self.labels.clone());
        for e in edges {
            q.add_edge(e.from, e.to, e.kind);
        }
        q
    }

    /// Number of independent undirected cycles (`|E| - |V| + components`).
    pub fn cycle_rank(&self) -> usize {
        // count undirected components
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut comps = 0;
        for s in 0..n as QNode {
            if seen[s as usize] {
                continue;
            }
            comps += 1;
            let mut stack = vec![s];
            seen[s as usize] = true;
            while let Some(q) = stack.pop() {
                for (nb, _, _) in self.neighbors(q) {
                    if !seen[nb as usize] {
                        seen[nb as usize] = true;
                        stack.push(nb);
                    }
                }
            }
        }
        // parallel (from,to) pairs in both kinds count once for structure
        let mut undirected: std::collections::HashSet<(QNode, QNode)> =
            std::collections::HashSet::new();
        for e in &self.edges {
            let (a, b) = if e.from < e.to { (e.from, e.to) } else { (e.to, e.from) };
            undirected.insert((a, b));
        }
        undirected.len() + comps - n
    }

    /// True iff the undirected structure is complete.
    pub fn is_clique(&self) -> bool {
        let n = self.num_nodes();
        if n < 2 {
            return false;
        }
        let mut undirected: std::collections::HashSet<(QNode, QNode)> =
            std::collections::HashSet::new();
        for e in &self.edges {
            let (a, b) = if e.from < e.to { (e.from, e.to) } else { (e.to, e.from) };
            undirected.insert((a, b));
        }
        undirected.len() == n * (n - 1) / 2
    }

    /// Structural class (§7.1 grouping).
    pub fn class(&self) -> QueryClass {
        if self.is_clique() {
            QueryClass::Clique
        } else {
            match self.cycle_rank() {
                0 => QueryClass::Acyclic,
                1 | 2 => QueryClass::Cyclic,
                _ => QueryClass::Combo,
            }
        }
    }

    /// Count of reachability edges.
    pub fn reachability_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.kind == EdgeKind::Reachability).count()
    }

    /// True iff `v` is reachable from `u` through pattern edges of any kind
    /// (used by §3 reduction).
    pub fn reaches(&self, u: QNode, v: QNode) -> bool {
        self.reaches_avoiding(u, v, None)
    }

    /// Like [`PatternQuery::reaches`] but ignoring edge `skip`.
    pub fn reaches_avoiding(&self, u: QNode, v: QNode, skip: Option<EdgeId>) -> bool {
        let mut seen = vec![false; self.num_nodes()];
        let mut stack = vec![u];
        seen[u as usize] = true;
        while let Some(q) = stack.pop() {
            for &eid in &self.out_adj[q as usize] {
                if Some(eid) == skip {
                    continue;
                }
                let t = self.edges[eid as usize].to;
                if t == v {
                    return true;
                }
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        false
    }
}

/// Builds the Fig. 2(a) example query: `A -> B` (direct), `A -> C`
/// (direct), `B => C` (reachability), labels A=0, B=1, C=2.
pub fn fig2_query() -> PatternQuery {
    let mut q = PatternQuery::new(vec![0, 1, 2]);
    q.add_edge(0, 1, EdgeKind::Direct);
    q.add_edge(0, 2, EdgeKind::Direct);
    q.add_edge(1, 2, EdgeKind::Reachability);
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_query_shape() {
        let q = fig2_query();
        assert_eq!(q.num_nodes(), 3);
        assert_eq!(q.num_edges(), 3);
        assert_eq!(q.reachability_edge_count(), 1);
        assert!(q.is_connected());
        assert!(q.is_dag());
        assert_eq!(q.class(), QueryClass::Clique); // triangle is complete
    }

    #[test]
    fn duplicate_edges_rejected() {
        let mut q = PatternQuery::new(vec![0, 1]);
        let e1 = q.try_add_edge(0, 1, EdgeKind::Direct).unwrap();
        let dup = q.try_add_edge(0, 1, EdgeKind::Direct);
        assert!(matches!(dup, Err(PatternError::DuplicateEdge { .. })), "{dup:?}");
        assert_eq!(q.num_edges(), 1);
        // ensure_edge keeps the old dedup semantics
        assert_eq!(q.ensure_edge(0, 1, EdgeKind::Direct), e1);
        assert_eq!(q.num_edges(), 1);
        // parallel edge of a different kind is a distinct constraint
        q.add_edge(0, 1, EdgeKind::Reachability);
        assert_eq!(q.num_edges(), 2);
    }

    #[test]
    fn try_add_edge_errors() {
        let mut q = PatternQuery::new(vec![0, 1]);
        assert!(matches!(
            q.try_add_edge(0, 7, EdgeKind::Direct),
            Err(PatternError::NodeOutOfRange { node: 7, num_nodes: 2 })
        ));
        assert!(matches!(
            q.try_add_edge(1, 1, EdgeKind::Direct),
            Err(PatternError::SelfLoop { node: 1 })
        ));
        // errors leave the pattern untouched
        assert_eq!(q.num_edges(), 0);
        for err in [
            PatternError::NodeOutOfRange { node: 7, num_nodes: 2 },
            PatternError::SelfLoop { node: 1 },
            PatternError::DuplicateEdge {
                edge: PatternEdge { from: 0, to: 1, kind: EdgeKind::Direct },
            },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn canonical_sorts_edges_but_keeps_nodes() {
        let mut a = PatternQuery::new(vec![0, 1, 2]);
        a.add_edge(1, 2, EdgeKind::Reachability);
        a.add_edge(0, 1, EdgeKind::Direct);
        a.add_edge(0, 2, EdgeKind::Direct);
        let mut b = PatternQuery::new(vec![0, 1, 2]);
        b.add_edge(0, 1, EdgeKind::Direct);
        b.add_edge(0, 2, EdgeKind::Direct);
        b.add_edge(1, 2, EdgeKind::Reachability);
        assert_ne!(a, b); // edge order differs
        assert_eq!(a.canonical(), b.canonical());
        // a parallel pair sorts Direct before Reachability
        let mut c = PatternQuery::new(vec![0, 1]);
        c.add_edge(0, 1, EdgeKind::Reachability);
        c.add_edge(0, 1, EdgeKind::Direct);
        assert_eq!(c.canonical().edge(0).kind, EdgeKind::Direct);
    }

    #[test]
    fn classes() {
        // path = acyclic
        let mut p = PatternQuery::new(vec![0, 0, 0]);
        p.add_edge(0, 1, EdgeKind::Direct);
        p.add_edge(1, 2, EdgeKind::Direct);
        assert_eq!(p.class(), QueryClass::Acyclic);
        // diamond = 1 cycle
        let mut d = PatternQuery::new(vec![0; 4]);
        d.add_edge(0, 1, EdgeKind::Direct);
        d.add_edge(0, 2, EdgeKind::Direct);
        d.add_edge(1, 3, EdgeKind::Direct);
        d.add_edge(2, 3, EdgeKind::Direct);
        assert_eq!(d.class(), QueryClass::Cyclic);
        // 4-clique
        let mut k = PatternQuery::new(vec![0; 4]);
        for i in 0..4u32 {
            for j in (i + 1)..4u32 {
                k.add_edge(i, j, EdgeKind::Direct);
            }
        }
        assert_eq!(k.class(), QueryClass::Clique);
        // combo: 4-cycle graph with two chords = 3 independent cycles
        let mut c = PatternQuery::new(vec![0; 5]);
        c.add_edge(0, 1, EdgeKind::Direct);
        c.add_edge(1, 2, EdgeKind::Direct);
        c.add_edge(2, 3, EdgeKind::Direct);
        c.add_edge(3, 4, EdgeKind::Direct);
        c.add_edge(0, 4, EdgeKind::Direct);
        c.add_edge(0, 2, EdgeKind::Direct);
        c.add_edge(0, 3, EdgeKind::Direct);
        assert_eq!(c.cycle_rank(), 3);
        assert_eq!(c.class(), QueryClass::Combo);
    }

    #[test]
    fn topological_order_and_cycles() {
        let q = fig2_query();
        let topo = q.topological_order().unwrap();
        let pos: Vec<usize> = (0..3).map(|v| topo.iter().position(|&x| x == v).unwrap()).collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2] && pos[1] < pos[2]);

        let mut cyc = PatternQuery::new(vec![0, 0]);
        cyc.add_edge(0, 1, EdgeKind::Direct);
        cyc.add_edge(1, 0, EdgeKind::Direct);
        assert!(cyc.topological_order().is_none());
        assert!(!cyc.is_dag());
    }

    #[test]
    fn dag_decomposition_breaks_cycles() {
        let mut q = PatternQuery::new(vec![0; 4]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Reachability);
        q.add_edge(2, 0, EdgeKind::Direct); // back edge
        q.add_edge(2, 3, EdgeKind::Direct);
        let (dag, back) = q.dag_decomposition();
        assert_eq!(dag.len() + back.len(), q.num_edges());
        assert!(!back.is_empty());
        let dag_query = q.with_edges(&dag);
        assert!(dag_query.is_dag());
    }

    #[test]
    fn dag_decomposition_of_dag_is_identity() {
        let q = fig2_query();
        let (dag, back) = q.dag_decomposition();
        assert_eq!(dag.len(), 3);
        assert!(back.is_empty());
    }

    #[test]
    fn reaches_avoiding() {
        let q = fig2_query();
        assert!(q.reaches(0, 2));
        // removing the direct edge A->C still leaves A->B=>C
        assert!(q.reaches_avoiding(0, 2, Some(1)));
        // removing A->B cuts A from B
        assert!(!q.reaches_avoiding(0, 1, Some(0)));
    }

    #[test]
    fn degree_and_neighbors() {
        let q = fig2_query();
        assert_eq!(q.degree(0), 2);
        assert_eq!(q.degree(2), 2);
        let nbs: Vec<QNode> = q.neighbors(1).map(|(n, _, _)| n).collect();
        assert!(nbs.contains(&0) && nbs.contains(&2));
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        let mut q = PatternQuery::new(vec![0]);
        q.add_edge(0, 0, EdgeKind::Direct);
    }
}
