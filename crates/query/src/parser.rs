//! Text format for pattern queries.
//!
//! ```text
//! # comment
//! n <id> <label>     # node
//! d <from> <to>      # direct edge      (single line in the figures)
//! r <from> <to>      # reachability edge (double line in the figures)
//! ```

use crate::{EdgeKind, PatternQuery, QNode};
use rig_graph::Label;

/// Error from [`parse_query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for QueryParseError {}

fn err(line: usize, message: impl Into<String>) -> QueryParseError {
    QueryParseError { line, message: message.into() }
}

/// Parses the text format in the module docs.
pub fn parse_query(input: &str) -> Result<PatternQuery, QueryParseError> {
    let mut nodes: Vec<(QNode, Label)> = Vec::new();
    let mut edges: Vec<(QNode, QNode, EdgeKind)> = Vec::new();
    for (ln, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap();
        let mut next_u32 = |what: &str| -> Result<u32, QueryParseError> {
            parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(ln + 1, format!("bad {what}")))
        };
        match tag {
            "n" => {
                let id = next_u32("node id")?;
                let label = next_u32("node label")?;
                nodes.push((id, label));
            }
            "d" => {
                let f = next_u32("edge source")?;
                let t = next_u32("edge target")?;
                edges.push((f, t, EdgeKind::Direct));
            }
            "r" => {
                let f = next_u32("edge source")?;
                let t = next_u32("edge target")?;
                edges.push((f, t, EdgeKind::Reachability));
            }
            other => return Err(err(ln + 1, format!("unknown record '{other}'"))),
        }
    }
    nodes.sort_unstable_by_key(|&(id, _)| id);
    for (expect, &(id, _)) in nodes.iter().enumerate() {
        if id as usize != expect {
            return Err(err(0, format!("node ids not dense: missing {expect}")));
        }
    }
    let mut q = PatternQuery::new(nodes.into_iter().map(|(_, l)| l).collect());
    for (f, t, k) in edges {
        q.try_add_edge(f, t, k).map_err(|e| err(0, e.to_string()))?;
    }
    Ok(q)
}

/// Serializes a query to the text format (stable output).
pub fn query_to_text(q: &PatternQuery) -> String {
    let mut out = String::new();
    for (i, &l) in q.labels().iter().enumerate() {
        out.push_str(&format!("n {i} {l}\n"));
    }
    for e in q.edges() {
        let tag = match e.kind {
            EdgeKind::Direct => 'd',
            EdgeKind::Reachability => 'r',
        };
        out.push_str(&format!("{tag} {} {}\n", e.from, e.to));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig2_query;

    #[test]
    fn roundtrip_fig2() {
        let q = fig2_query();
        let text = query_to_text(&q);
        let back = parse_query(&text).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn parse_with_comments() {
        let q = parse_query("# q\nn 0 1\nn 1 2\nr 0 1\n").unwrap();
        assert_eq!(q.num_nodes(), 2);
        assert_eq!(q.edge(0).kind, EdgeKind::Reachability);
    }

    #[test]
    fn errors() {
        assert!(parse_query("n 0\n").is_err());
        assert!(parse_query("x 0 0\n").is_err());
        assert!(parse_query("n 0 0\nn 2 0\n").is_err());
        assert!(parse_query("n 0 0\nd 0 5\n").is_err());
        assert!(parse_query("n 0 0\nd 0 0\n").is_err());
    }
}
