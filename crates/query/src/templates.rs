//! The 20 query templates of Fig. 7, reconstructed.
//!
//! The paper's figure is graphical and not included in the text, so the
//! exact drawings are not recoverable; these templates are reconstructed to
//! satisfy every textual constraint (see DESIGN.md): the class grouping
//! used by Figs. 8/9/12/13 — Acyc {HQ0, HQ3, HQ5}, Cyc {HQ6, HQ8, HQ17},
//! Clique {HQ11, HQ12, HQ19}, Combo {HQ10, HQ13, HQ14, HQ16} — plus HQ2
//! being a tree pattern (§7.3) and HQ19 a 7-clique (§7.2).
//!
//! Templates are structural: node labels are chosen at instantiation time.
//! A template instantiates into three *flavors* (§7.1): **C** (all direct
//! edges), **D** (all reachability edges), and **H** (hybrid — edges
//! alternate kinds, giving the 50% mix the paper uses).

use crate::{EdgeKind, PatternQuery, QueryClass};
use rig_graph::Label;

/// Identifier of a Fig. 7 template: `0..=19`.
pub type TemplateId = usize;

/// Number of templates.
pub fn template_count() -> usize {
    TEMPLATES.len()
}

/// Edge-kind flavor of an instantiated template (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flavor {
    /// Child-edge-only queries (`CQ*`).
    C,
    /// Hybrid queries (`HQ*`): edges alternate direct / reachability.
    H,
    /// Descendant-edge-only queries (`DQ*`).
    D,
}

/// A structural query template.
#[derive(Debug, Clone, Copy)]
pub struct Template {
    pub id: TemplateId,
    pub num_nodes: usize,
    pub edges: &'static [(u32, u32)],
    pub class: QueryClass,
}

impl Template {
    /// Instantiates with explicit labels (`labels.len() == num_nodes`).
    pub fn instantiate(&self, flavor: Flavor, labels: &[Label]) -> PatternQuery {
        assert_eq!(labels.len(), self.num_nodes, "template {} arity", self.id);
        let mut q = PatternQuery::new(labels.to_vec());
        for (i, &(a, b)) in self.edges.iter().enumerate() {
            let kind = match flavor {
                Flavor::C => EdgeKind::Direct,
                Flavor::D => EdgeKind::Reachability,
                Flavor::H => {
                    if i % 2 == 0 {
                        EdgeKind::Direct
                    } else {
                        EdgeKind::Reachability
                    }
                }
            };
            q.add_edge(a, b, kind);
        }
        q
    }

    /// Instantiates with labels `node_id % num_labels` — the deterministic
    /// assignment used by the harnesses when no workload seed is given.
    pub fn instantiate_modulo(&self, flavor: Flavor, num_labels: usize) -> PatternQuery {
        let labels: Vec<Label> =
            (0..self.num_nodes).map(|i| (i % num_labels.max(1)) as Label).collect();
        self.instantiate(flavor, &labels)
    }
}

/// Returns template `id` (panics if `id >= 20`).
pub fn template(id: TemplateId) -> Template {
    TEMPLATES[id]
}

macro_rules! tpl {
    ($id:expr, $n:expr, $class:expr, [$(($a:expr, $b:expr)),* $(,)?]) => {
        Template { id: $id, num_nodes: $n, edges: &[$(($a, $b)),*], class: $class }
    };
}

use QueryClass::*;

/// The reconstructed Fig. 7 templates. All are oriented `small -> large`
/// node id, so the directed structure is acyclic (cyclic *directed*
/// patterns are exercised separately by the generator tests).
static TEMPLATES: [Template; 20] = [
    // ---- acyclic (undirected trees) ----
    // HQ0: 4-node out-star with a tail
    tpl!(0, 4, Acyclic, [(0, 1), (0, 2), (2, 3)]),
    // HQ1: 4-node directed path
    tpl!(1, 4, Acyclic, [(0, 1), (1, 2), (2, 3)]),
    // HQ2: 5-node tree (the "tree pattern query" of §7.3)
    tpl!(2, 5, Acyclic, [(0, 1), (0, 2), (1, 3), (1, 4)]),
    // HQ3: 6-node tree, two levels
    tpl!(3, 6, Acyclic, [(0, 1), (0, 2), (1, 3), (2, 4), (2, 5)]),
    // HQ4: 7-node wide star-of-paths
    tpl!(4, 7, Acyclic, [(0, 1), (0, 2), (0, 3), (1, 4), (2, 5), (3, 6)]),
    // HQ5: 8-node caterpillar
    tpl!(5, 8, Acyclic, [(0, 1), (1, 2), (2, 3), (1, 4), (2, 5), (3, 6), (3, 7)]),
    // ---- cyclic (one or two undirected cycles) ----
    // HQ6: diamond (1 cycle)
    tpl!(6, 4, Cyclic, [(0, 1), (0, 2), (1, 3), (2, 3)]),
    // HQ7: 4-cycle with a tail node
    tpl!(7, 5, Cyclic, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]),
    // HQ8: two stacked diamonds (2 cycles)
    tpl!(8, 6, Cyclic, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5), (4, 5)]),
    // HQ9: 5-node, 2 cycles sharing an edge
    tpl!(9, 5, Cyclic, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)]),
    // ---- combo (more than two independent cycles, not complete) ----
    // HQ10: 6 nodes, 9 edges (rank 4)
    tpl!(10, 6, Combo, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (3, 5), (4, 5)]),
    // ---- cliques ----
    // HQ11: 4-clique
    tpl!(11, 4, Clique, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
    // HQ12: 5-clique
    tpl!(
        12,
        5,
        Clique,
        [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
    ),
    // ---- more combo ----
    // HQ13: 7 nodes, 10 edges (rank 4)
    tpl!(
        13,
        7,
        Combo,
        [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 4), (3, 5), (4, 6), (5, 6), (2, 6)]
    ),
    // HQ14: 8 nodes, 12 edges (rank 5) — the big combo both TM and JM fail on
    tpl!(
        14,
        8,
        Combo,
        [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (1, 4),
            (2, 5),
            (4, 5),
            (4, 6),
            (5, 7),
            (6, 7),
            (3, 6),
            (3, 7)
        ]
    ),
    // HQ15: 7 nodes, 9 edges (rank 3)
    tpl!(15, 7, Combo, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5), (4, 6), (5, 6), (0, 3)]),
    // HQ16: 9 nodes, 13 edges (rank 5)
    tpl!(
        16,
        9,
        Combo,
        [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
            (6, 7),
            (6, 8),
            (7, 8),
            (2, 5),
            (1, 4)
        ]
    ),
    // HQ17: 8 nodes, 2 cycles
    tpl!(17, 8, Cyclic, [(0, 1), (1, 2), (2, 3), (0, 3), (3, 4), (4, 5), (5, 6), (4, 7), (6, 7)]),
    // HQ18: 6-clique
    tpl!(
        18,
        6,
        Clique,
        [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 2),
            (1, 3),
            (1, 4),
            (1, 5),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5)
        ]
    ),
    // HQ19: 7-clique (§7.2: "the 7-clique query HQ19")
    tpl!(
        19,
        7,
        Clique,
        [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (0, 6),
            (1, 2),
            (1, 3),
            (1, 4),
            (1, 5),
            (1, 6),
            (2, 3),
            (2, 4),
            (2, 5),
            (2, 6),
            (3, 4),
            (3, 5),
            (3, 6),
            (4, 5),
            (4, 6),
            (5, 6)
        ]
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_templates_connected_and_classed() {
        assert_eq!(template_count(), 20);
        for id in 0..20 {
            let t = template(id);
            assert_eq!(t.id, id);
            let q = t.instantiate_modulo(Flavor::H, 4);
            assert!(q.is_connected(), "HQ{id} disconnected");
            assert!(q.is_dag(), "HQ{id} not a dag");
            assert_eq!(q.class(), t.class, "HQ{id} class mismatch");
            assert_eq!(q.num_nodes(), t.num_nodes);
        }
    }

    #[test]
    fn paper_class_grouping_holds() {
        for id in [0, 3, 5] {
            assert_eq!(template(id).class, QueryClass::Acyclic, "HQ{id}");
        }
        for id in [6, 8, 17] {
            assert_eq!(template(id).class, QueryClass::Cyclic, "HQ{id}");
        }
        for id in [11, 12, 19] {
            assert_eq!(template(id).class, QueryClass::Clique, "HQ{id}");
        }
        for id in [10, 13, 14, 16] {
            assert_eq!(template(id).class, QueryClass::Combo, "HQ{id}");
        }
    }

    #[test]
    fn hq2_is_a_tree_and_hq19_a_7_clique() {
        let hq2 = template(2).instantiate_modulo(Flavor::H, 3);
        assert_eq!(hq2.cycle_rank(), 0);
        assert_eq!(hq2.num_edges(), hq2.num_nodes() - 1);
        let hq19 = template(19);
        assert_eq!(hq19.num_nodes, 7);
        assert_eq!(hq19.edges.len(), 21);
    }

    #[test]
    fn flavors_control_edge_kinds() {
        let t = template(6);
        let c = t.instantiate_modulo(Flavor::C, 2);
        assert_eq!(c.reachability_edge_count(), 0);
        let d = t.instantiate_modulo(Flavor::D, 2);
        assert_eq!(d.reachability_edge_count(), d.num_edges());
        let h = t.instantiate_modulo(Flavor::H, 2);
        let r = h.reachability_edge_count();
        assert!(r > 0 && r < h.num_edges());
    }

    #[test]
    fn explicit_labels_respected() {
        let q = template(0).instantiate(Flavor::C, &[9, 8, 7, 6]);
        assert_eq!(q.labels(), &[9, 8, 7, 6]);
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        template(0).instantiate(Flavor::C, &[1, 2]);
    }
}
