//! Transitive closure and transitive reduction of pattern queries (§3).
//!
//! A reachability edge `(x, y)` is *transitive* (hence redundant) when some
//! other simple directed path from `x` to `y` exists in the query: every
//! edge on such a path implies at least reachability, so the composed
//! constraint `h(x) ≺ h(y)` already holds. Evaluating reachability edges is
//! the expensive operation, so queries are reduced before evaluation
//! (Fig. 15 quantifies the payoff).

use crate::{EdgeId, EdgeKind, PatternQuery};

/// Returns the transitive closure of `q`: a query with a reachability edge
/// `(x, y)` for every pair with `x ⇝ y` in `q` (rules IR1/IR2 of §3 run to
/// fixpoint). Direct edges are preserved as-is.
pub fn transitive_closure(q: &PatternQuery) -> PatternQuery {
    let mut out = q.clone();
    let n = q.num_nodes() as u32;
    for x in 0..n {
        for y in 0..n {
            if x != y && q.reaches(x, y) {
                out.ensure_edge(x, y, EdgeKind::Reachability);
            }
        }
    }
    out
}

/// Computes a transitive reduction of `q` (Def. 3.1): repeatedly removes
/// reachability edges that are implied by another directed path. Direct
/// edges are never removed — they express a strictly stronger constraint.
///
/// For acyclic queries the result is the unique minimal equivalent query;
/// for cyclic queries it is *a* minimal one (greedy order: descending edge
/// id, which keeps the earliest-added of two mutually redundant edges).
///
/// ```
/// use rig_query::{PatternQuery, EdgeKind, transitive_reduction};
/// let mut q = PatternQuery::new(vec![0, 1, 2]);
/// q.add_edge(0, 1, EdgeKind::Reachability);
/// q.add_edge(1, 2, EdgeKind::Reachability);
/// q.add_edge(0, 2, EdgeKind::Reachability); // implied by the path 0⇝1⇝2
/// assert_eq!(transitive_reduction(&q).num_edges(), 2);
/// ```
pub fn transitive_reduction(q: &PatternQuery) -> PatternQuery {
    let mut out = q.clone();
    loop {
        let mut removed = false;
        // scan descending so removals don't shift the ids we're about to test
        for id in (0..out.num_edges() as EdgeId).rev() {
            let e = out.edge(id);
            if e.kind != EdgeKind::Reachability {
                continue;
            }
            if out.reaches_avoiding(e.from, e.to, Some(id)) {
                out.remove_edge(id);
                removed = true;
            }
        }
        if !removed {
            return out;
        }
    }
}

/// Number of reachability edges a reduction would remove, without building
/// the reduced query (used for workload statistics).
pub fn redundant_edge_count(q: &PatternQuery) -> usize {
    q.num_edges() - transitive_reduction(q).num_edges()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeKind, PatternQuery};

    /// Fig. 3(a): A => B => C plus transitive A => C.
    fn fig3_query() -> PatternQuery {
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Reachability);
        q.add_edge(1, 2, EdgeKind::Reachability);
        q.add_edge(0, 2, EdgeKind::Reachability);
        q
    }

    #[test]
    fn fig3_reduction_removes_transitive_edge() {
        let q = fig3_query();
        let r = transitive_reduction(&q);
        assert_eq!(r.num_edges(), 2);
        assert!(r.edges().iter().all(|e| !(e.from == 0 && e.to == 2)));
    }

    #[test]
    fn closure_adds_all_reachable_pairs() {
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Direct);
        let c = transitive_closure(&q);
        // direct edges kept + reachability (0,1),(1,2),(0,2)
        assert_eq!(c.num_edges(), 5);
        assert!(c
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == 2 && e.kind == EdgeKind::Reachability));
    }

    #[test]
    fn reduction_of_closure_restores_minimal_form() {
        let mut q = PatternQuery::new(vec![0, 1, 2, 3]);
        q.add_edge(0, 1, EdgeKind::Reachability);
        q.add_edge(1, 2, EdgeKind::Reachability);
        q.add_edge(2, 3, EdgeKind::Reachability);
        let c = transitive_closure(&q);
        assert_eq!(c.num_edges(), 6); // all ordered pairs on the chain
        let r = transitive_reduction(&c);
        assert_eq!(r.num_edges(), 3);
    }

    #[test]
    fn direct_edges_never_removed() {
        // A -> B -> C with also a *direct* edge A -> C: the direct edge is
        // not implied by the path (a path does not certify adjacency).
        let mut q = PatternQuery::new(vec![0, 1, 2]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(1, 2, EdgeKind::Direct);
        q.add_edge(0, 2, EdgeKind::Direct);
        let r = transitive_reduction(&q);
        assert_eq!(r.num_edges(), 3);
    }

    #[test]
    fn parallel_direct_makes_reachability_redundant() {
        let mut q = PatternQuery::new(vec![0, 1]);
        q.add_edge(0, 1, EdgeKind::Direct);
        q.add_edge(0, 1, EdgeKind::Reachability);
        let r = transitive_reduction(&q);
        assert_eq!(r.num_edges(), 1);
        assert_eq!(r.edge(0).kind, EdgeKind::Direct);
    }

    #[test]
    fn cyclic_query_reduces_without_losing_connectivity() {
        // 3-cycle of reachability edges plus one chord; the chord is
        // redundant (the cycle provides the alternate path).
        let mut q = PatternQuery::new(vec![0, 0, 0]);
        q.add_edge(0, 1, EdgeKind::Reachability);
        q.add_edge(1, 2, EdgeKind::Reachability);
        q.add_edge(2, 0, EdgeKind::Reachability);
        q.add_edge(0, 2, EdgeKind::Reachability); // chord
        let r = transitive_reduction(&q);
        assert_eq!(r.num_edges(), 3);
        for x in 0..3u32 {
            for y in 0..3u32 {
                if x != y {
                    assert!(r.reaches(x, y));
                }
            }
        }
    }

    #[test]
    fn redundant_count() {
        assert_eq!(redundant_edge_count(&fig3_query()), 1);
    }

    #[test]
    fn reduction_idempotent() {
        let q = fig3_query();
        let r1 = transitive_reduction(&q);
        let r2 = transitive_reduction(&r1);
        assert_eq!(r1, r2);
    }
}
