//! Random query extraction from a data graph (§7.1 workloads).
//!
//! The biology-dataset workloads (hp, yt, hu) use randomly generated
//! queries of 4–32 nodes. We extract queries *from the data graph* so that
//! every generated query has at least one homomorphic occurrence (the
//! sampled subgraph itself):
//!
//! 1. grow a connected node sample with a BFS-style random expansion;
//! 2. every sampled data edge between sampled nodes can become a **direct**
//!    pattern edge;
//! 3. every (BFS-tree ancestor, descendant) pair is connected by a real
//!    path, so it can become a **reachability** pattern edge;
//! 4. node labels are copied from the sampled nodes.
//!
//! Density is controlled to produce the paper's *dense* (min undirected
//! degree ≥ 3) and *sparse* (degree < 3) workloads of Fig. 17.

use crate::{EdgeKind, Flavor, PatternQuery, QNode};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rig_graph::{DataGraph, NodeId};

/// Configuration for [`random_query`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of pattern nodes to sample.
    pub num_nodes: usize,
    /// Edge kind flavor (C / H / D).
    pub flavor: Flavor,
    /// Probability of keeping each extra (non-spanning) candidate edge.
    pub extra_edge_prob: f64,
    /// If true, keep adding candidate edges until every node has undirected
    /// degree ≥ 3 (the paper's *dense* query sets), where possible.
    pub dense: bool,
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorConfig {
    pub fn new(num_nodes: usize, flavor: Flavor, seed: u64) -> Self {
        GeneratorConfig { num_nodes, flavor, extra_edge_prob: 0.3, dense: false, seed }
    }

    pub fn dense(mut self) -> Self {
        self.dense = true;
        self.extra_edge_prob = 1.0;
        self
    }
}

/// Generates one random query with a guaranteed non-empty answer on `g`.
/// Returns `None` when `g` has no connected region of the requested size.
pub fn random_query(g: &DataGraph, cfg: &GeneratorConfig) -> Option<PatternQuery> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for _attempt in 0..64 {
        if let Some(q) = try_sample(g, cfg, &mut rng) {
            return Some(q);
        }
    }
    None
}

fn try_sample(g: &DataGraph, cfg: &GeneratorConfig, rng: &mut StdRng) -> Option<PatternQuery> {
    let n = g.num_nodes();
    if n == 0 || cfg.num_nodes == 0 {
        return None;
    }
    let start = rng.gen_range(0..n) as NodeId;

    // BFS-style random expansion, recording each node's tree parent.
    let mut sampled: Vec<NodeId> = vec![start];
    let mut parent: Vec<Option<usize>> = vec![None]; // index into `sampled`
    let mut frontier: Vec<(usize, NodeId)> = Vec::new(); // (parent idx, candidate)
    let mut in_sample = std::collections::HashSet::new();
    in_sample.insert(start);
    for &nb in g.out_neighbors(start) {
        frontier.push((0, nb));
    }
    while sampled.len() < cfg.num_nodes {
        if frontier.is_empty() {
            return None;
        }
        let pick = rng.gen_range(0..frontier.len());
        let (pidx, cand) = frontier.swap_remove(pick);
        if !in_sample.insert(cand) {
            continue;
        }
        let idx = sampled.len();
        sampled.push(cand);
        parent.push(Some(pidx));
        for &nb in g.out_neighbors(cand) {
            if !in_sample.contains(&nb) {
                frontier.push((idx, nb));
            }
        }
    }

    // Pattern nodes mirror the sample; labels copied from data nodes.
    let labels = sampled.iter().map(|&v| g.label(v)).collect();
    let mut q = PatternQuery::new(labels);

    let pick_kind = |i: usize| match cfg.flavor {
        Flavor::C => EdgeKind::Direct,
        Flavor::D => EdgeKind::Reachability,
        Flavor::H => {
            if i.is_multiple_of(2) {
                EdgeKind::Direct
            } else {
                EdgeKind::Reachability
            }
        }
    };

    // Spanning-tree edges (parent -> child direct data edges) keep the
    // pattern connected. Note a C-flavor spanning edge needs a real data
    // edge, which BFS expansion guarantees.
    let mut edge_seq = 0usize;
    for (idx, par) in parent.iter().enumerate().skip(1) {
        let p = par.expect("non-root has a parent");
        q.add_edge(p as QNode, idx as QNode, pick_kind(edge_seq));
        edge_seq += 1;
    }

    // Candidate extra edges.
    #[derive(Clone, Copy)]
    enum Cand {
        DataEdge(QNode, QNode),
        TreePath(QNode, QNode),
    }
    let mut candidates: Vec<Cand> = Vec::new();
    // (a) data edges inside the sample (can be direct or reachability)
    for (i, &u) in sampled.iter().enumerate() {
        for (j, &v) in sampled.iter().enumerate() {
            if i != j && g.has_edge(u, v) {
                candidates.push(Cand::DataEdge(i as QNode, j as QNode));
            }
        }
    }
    // (b) tree ancestor/descendant pairs (reachability-only)
    for idx in 1..sampled.len() {
        let mut anc = parent[idx];
        while let Some(a) = anc {
            candidates.push(Cand::TreePath(a as QNode, idx as QNode));
            anc = parent[a];
        }
    }
    candidates.shuffle(rng);

    for cand in candidates {
        let take = if cfg.dense {
            let (a, b) = match cand {
                Cand::DataEdge(a, b) | Cand::TreePath(a, b) => (a, b),
            };
            q.degree(a) < 3 || q.degree(b) < 3
        } else {
            rng.gen_bool(cfg.extra_edge_prob)
        };
        if !take {
            continue;
        }
        match cand {
            Cand::DataEdge(a, b) => {
                if a == b || q.edges().iter().any(|e| e.from == a && e.to == b) {
                    continue;
                }
                q.add_edge(a, b, pick_kind(edge_seq));
                edge_seq += 1;
            }
            Cand::TreePath(a, b) => {
                // only ever a reachability constraint (a real path exists)
                if matches!(cfg.flavor, Flavor::C) {
                    continue;
                }
                if q.edges().iter().any(|e| e.from == a && e.to == b) {
                    continue;
                }
                q.add_edge(a, b, EdgeKind::Reachability);
                edge_seq += 1;
            }
        }
    }
    debug_assert!(q.is_connected());
    Some(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::GraphBuilder;

    fn grid_graph(side: u32) -> DataGraph {
        let mut b = GraphBuilder::new();
        for i in 0..side * side {
            b.add_node(i % 5);
        }
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    b.add_edge(v, v + 1);
                }
                if r + 1 < side {
                    b.add_edge(v, v + side);
                }
            }
        }
        b.build()
    }

    #[test]
    fn generates_connected_queries_of_requested_size() {
        let g = grid_graph(10);
        for seed in 0..10u64 {
            for flavor in [Flavor::C, Flavor::H, Flavor::D] {
                let cfg = GeneratorConfig::new(6, flavor, seed);
                let q = random_query(&g, &cfg).expect("grid is large enough");
                assert_eq!(q.num_nodes(), 6);
                assert!(q.is_connected());
                assert!(q.num_edges() >= 5);
            }
        }
    }

    #[test]
    fn c_flavor_has_no_reachability_edges() {
        let g = grid_graph(8);
        let cfg = GeneratorConfig::new(8, Flavor::C, 42);
        let q = random_query(&g, &cfg).unwrap();
        assert_eq!(q.reachability_edge_count(), 0);
    }

    #[test]
    fn d_flavor_all_reachability() {
        let g = grid_graph(8);
        let cfg = GeneratorConfig::new(8, Flavor::D, 42);
        let q = random_query(&g, &cfg).unwrap();
        assert_eq!(q.reachability_edge_count(), q.num_edges());
    }

    #[test]
    fn dense_config_raises_degrees() {
        let g = grid_graph(12);
        let cfg = GeneratorConfig::new(8, Flavor::C, 3).dense();
        let q = random_query(&g, &cfg).unwrap();
        let avg: f64 = (0..q.num_nodes() as QNode).map(|v| q.degree(v) as f64).sum::<f64>()
            / q.num_nodes() as f64;
        let sparse_cfg = GeneratorConfig::new(8, Flavor::C, 3);
        let qs = random_query(&g, &sparse_cfg).unwrap();
        let avg_sparse: f64 =
            (0..qs.num_nodes() as QNode).map(|v| qs.degree(v) as f64).sum::<f64>()
                / qs.num_nodes() as f64;
        assert!(avg >= avg_sparse);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid_graph(9);
        let cfg = GeneratorConfig::new(5, Flavor::H, 777);
        let a = random_query(&g, &cfg).unwrap();
        let b = random_query(&g, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn too_large_request_returns_none() {
        let g = grid_graph(2);
        let cfg = GeneratorConfig::new(100, Flavor::C, 0);
        assert!(random_query(&g, &cfg).is_none());
    }
}
