//! HPQL — the textual **H**ybrid **P**attern **Q**uery **L**anguage.
//!
//! HPQL writes a hybrid pattern the way the paper draws it: a `MATCH`
//! keyword followed by comma-separated *chains* of parenthesized nodes
//! connected by `->` (direct, edge-to-edge) and `=>` (reachability,
//! edge-to-path) arrows:
//!
//! ```text
//! MATCH (a:Author)->(p:Paper)=>(q:Paper), (a)->(q)
//! ```
//!
//! Grammar (whitespace-insensitive; `#` and `//` start line comments):
//!
//! ```text
//! query  :=  MATCH chain (',' chain)* [';']
//! chain  :=  node (arrow node)*
//! arrow  :=  '->' | '=>'
//! node   :=  '(' [var] [':' label] ')'
//! var    :=  IDENT
//! label  :=  IDENT | INTEGER          (a label name or a raw label id)
//! ```
//!
//! * A **variable** names a query node; every later `(var)` mention refers
//!   to the same node. The first labeled mention fixes the node's label;
//!   re-labeling a variable with a different label is an error, and a
//!   variable that is never labeled is an error.
//! * `(:Label)` without a variable introduces a fresh anonymous node.
//! * Self-loops (`(a)->(a)`) and duplicate edges (same endpoints *and*
//!   kind) are rejected; a direct and a reachability edge between the same
//!   pair are distinct constraints and both allowed.
//!
//! Parsing yields an [`HpqlQuery`] AST. Label *names* are resolved to
//! dense label ids by [`HpqlQuery::resolve`] (against a graph's label-name
//! dictionary — see `rig_graph::DataGraph::label_id`) or
//! [`HpqlQuery::resolve_interned`] (first-use interning, for graph-free
//! round trips). The inverse direction is [`to_hpql`], the pretty-printer
//! used by `explain` output and asserted round-trip-stable by proptests.

use crate::{EdgeKind, PatternError, PatternQuery, QNode};
use rig_graph::Label;

/// A 1-based source position plus the length (in characters) of the
/// token or lexeme it covers. `len` is at least 1, so a span can always
/// be rendered as a caret underline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub line: usize,
    pub col: usize,
    pub len: usize,
}

impl Span {
    pub fn new(line: usize, col: usize, len: usize) -> Span {
        Span { line, col, len: len.max(1) }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Error from HPQL parsing or label resolution, with a 1-based source
/// span covering the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HpqlError {
    pub line: usize,
    pub col: usize,
    /// Character length of the offending token (>= 1), so callers can
    /// underline the whole token, not a single character.
    pub len: usize,
    pub message: String,
}

impl HpqlError {
    pub fn span(&self) -> Span {
        Span::new(self.line, self.col, self.len)
    }
}

impl std::fmt::Display for HpqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for HpqlError {}

fn err(line: usize, col: usize, message: impl Into<String>) -> HpqlError {
    HpqlError { line, col, len: 1, message: message.into() }
}

fn err_span(span: Span, message: impl Into<String>) -> HpqlError {
    HpqlError { line: span.line, col: span.col, len: span.len, message: message.into() }
}

/// A node label as written: a name to be resolved, or a raw label id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelSpec {
    Name(String),
    Id(Label),
}

/// Parsed (but not yet label-resolved) HPQL query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HpqlQuery {
    /// One variable name per query node (anonymous nodes get fresh
    /// `_a<k>` names), in order of first appearance.
    vars: Vec<String>,
    /// One label per query node.
    labels: Vec<LabelSpec>,
    /// Pattern edges over node indexes.
    edges: Vec<(QNode, QNode, EdgeKind)>,
    /// Span of each node's first mention (the variable token, or the
    /// `(` of an anonymous node), parallel to `vars`.
    node_spans: Vec<Span>,
    /// Span of the label token that fixed each node's label, parallel
    /// to `labels`.
    label_spans: Vec<Span>,
    /// Span of the arrow token of each edge, parallel to `edges`.
    edge_spans: Vec<Span>,
}

/// A resolved HPQL query: the pattern plus its variable names (parallel to
/// pattern node ids — occurrence tuples are indexed the same way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HpqlResolved {
    pub query: PatternQuery,
    pub vars: Vec<String>,
}

impl HpqlQuery {
    /// Number of pattern nodes.
    pub fn num_nodes(&self) -> usize {
        self.vars.len()
    }

    /// Variable names, parallel to node ids.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Label specs, parallel to node ids.
    pub fn labels(&self) -> &[LabelSpec] {
        &self.labels
    }

    /// Pattern edges over node indexes, in source order.
    pub fn edges(&self) -> &[(QNode, QNode, EdgeKind)] {
        &self.edges
    }

    /// Span of node `i`'s first mention (its variable token, or the `(`
    /// of an anonymous node).
    pub fn node_span(&self, i: usize) -> Span {
        self.node_spans[i]
    }

    /// Span of the label token that fixed node `i`'s label.
    pub fn label_span(&self, i: usize) -> Span {
        self.label_spans[i]
    }

    /// Span of the arrow token of edge `e` (in `edges()` order).
    pub fn edge_span(&self, e: usize) -> Span {
        self.edge_spans[e]
    }

    /// Resolves label names through `resolve_name` (raw `Id` labels pass
    /// through) and builds the [`PatternQuery`].
    pub fn resolve(
        &self,
        resolve_name: impl FnMut(&str) -> Option<Label>,
    ) -> Result<HpqlResolved, HpqlError> {
        self.resolve_with(resolve_name, |_| None)
    }

    /// Like [`HpqlQuery::resolve`], but when a label name is unknown the
    /// `suggest` callback may supply a near-miss candidate (see
    /// [`closest_label`]) that is appended to the error as a
    /// "did you mean" hint. The error's span covers the label token.
    pub fn resolve_with(
        &self,
        mut resolve_name: impl FnMut(&str) -> Option<Label>,
        mut suggest: impl FnMut(&str) -> Option<String>,
    ) -> Result<HpqlResolved, HpqlError> {
        let labels: Vec<Label> = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, spec)| match spec {
                LabelSpec::Id(id) => Ok(*id),
                LabelSpec::Name(name) => resolve_name(name).ok_or_else(|| {
                    let hint = match suggest(name) {
                        Some(s) => format!("; did you mean '{s}'?"),
                        None => String::new(),
                    };
                    err_span(
                        self.label_spans[i],
                        format!(
                            "unknown label name '{name}' (variable '{}'): \
                             not in the graph's label dictionary{hint}",
                            self.vars[i]
                        ),
                    )
                }),
            })
            .collect::<Result<_, _>>()?;
        self.build(labels)
    }

    /// Resolves label names by interning them in first-use order (raw `Id`
    /// labels pass through unchanged). Returns the resolved query plus the
    /// interned name table (`table[label] = name`, empty string for labels
    /// only ever written numerically). Useful where no graph dictionary
    /// exists — tests, offline tooling, query fixtures.
    pub fn resolve_interned(&self) -> Result<(HpqlResolved, Vec<String>), HpqlError> {
        let mut table: Vec<String> = Vec::new();
        let mut labels: Vec<Label> = Vec::with_capacity(self.labels.len());
        for spec in &self.labels {
            let id = match spec {
                LabelSpec::Id(id) => *id,
                LabelSpec::Name(name) => match table.iter().position(|n| n == name) {
                    Some(i) => i as Label,
                    None => {
                        table.push(name.clone());
                        (table.len() - 1) as Label
                    }
                },
            };
            labels.push(id);
        }
        let max_label = labels.iter().copied().max().unwrap_or(0) as usize;
        if table.len() <= max_label {
            table.resize(max_label + 1, String::new());
        }
        Ok((self.build(labels)?, table))
    }

    fn build(&self, labels: Vec<Label>) -> Result<HpqlResolved, HpqlError> {
        let mut query = PatternQuery::new(labels);
        for &(f, t, kind) in &self.edges {
            query.try_add_edge(f, t, kind).map_err(|e: PatternError| err(0, 0, e.to_string()))?;
        }
        Ok(HpqlResolved { query, vars: self.vars.clone() })
    }
}

/// Parses HPQL text into an [`HpqlQuery`] AST.
pub fn parse_hpql(input: &str) -> Result<HpqlQuery, HpqlError> {
    Parser::new(input)?.parse()
}

/// True if `text` looks like HPQL (its first significant token is the
/// `MATCH` keyword) rather than the legacy line-oriented `n`/`d`/`r`
/// format. Used by the CLI to auto-detect query file formats.
pub fn looks_like_hpql(text: &str) -> bool {
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        let word: String = line.chars().take_while(|c| c.is_ascii_alphabetic()).collect();
        return word.eq_ignore_ascii_case("match");
    }
    false
}

// ---------------------------------------------------------------------------
// did-you-mean suggestions
// ---------------------------------------------------------------------------

/// Levenshtein distance over characters, case-insensitive (a wrong-case
/// label is the most common near-miss).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().flat_map(|c| c.to_lowercase()).collect();
    let b: Vec<char> = b.chars().flat_map(|c| c.to_lowercase()).collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest candidate to `name` by edit distance, if any is close
/// enough to plausibly be a typo: distance at most `max(1, len/3)` and
/// strictly smaller than the name's own length. Ties keep the first
/// candidate in iteration order (label-id order when iterating a graph
/// dictionary), so suggestions are deterministic. Shared by the HPQL
/// resolution error path and the `rig_analyze` name-resolution pass.
pub fn closest_label<'a>(
    name: &str,
    candidates: impl IntoIterator<Item = &'a str>,
) -> Option<&'a str> {
    let budget = (name.chars().count() / 3).max(1);
    let mut best: Option<(usize, &str)> = None;
    for cand in candidates {
        if cand.is_empty() {
            continue;
        }
        let d = edit_distance(name, cand);
        if d <= budget && d < name.chars().count() && best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, cand));
        }
    }
    best.map(|(_, c)| c)
}

// ---------------------------------------------------------------------------
// lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Match,
    Ident(String),
    Int(u32),
    LParen,
    RParen,
    Colon,
    Comma,
    Semi,
    Direct, // ->
    Reach,  // =>
    Eof,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Match => "'MATCH'".into(),
            Tok::Ident(s) => format!("identifier '{s}'"),
            Tok::Int(n) => format!("integer {n}"),
            Tok::LParen => "'('".into(),
            Tok::RParen => "')'".into(),
            Tok::Colon => "':'".into(),
            Tok::Comma => "','".into(),
            Tok::Semi => "';'".into(),
            Tok::Direct => "'->'".into(),
            Tok::Reach => "'=>'".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

#[derive(Clone)]
struct Lexed {
    tok: Tok,
    line: usize,
    col: usize,
    len: usize,
}

impl Lexed {
    fn span(&self) -> Span {
        Span::new(self.line, self.col, self.len)
    }
}

fn lex(input: &str) -> Result<Vec<Lexed>, HpqlError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    let (mut line, mut col) = (1usize, 1usize);
    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }
    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                while chars.peek().is_some_and(|&c| c != '\n') {
                    bump!();
                }
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'/') {
                    while chars.peek().is_some_and(|&c| c != '\n') {
                        bump!();
                    }
                } else {
                    return Err(err(tl, tc, "unexpected '/' (did you mean a '//' comment?)"));
                }
            }
            '(' => {
                bump!();
                out.push(Lexed { tok: Tok::LParen, line: tl, col: tc, len: 1 });
            }
            ')' => {
                bump!();
                out.push(Lexed { tok: Tok::RParen, line: tl, col: tc, len: 1 });
            }
            ':' => {
                bump!();
                out.push(Lexed { tok: Tok::Colon, line: tl, col: tc, len: 1 });
            }
            ',' => {
                bump!();
                out.push(Lexed { tok: Tok::Comma, line: tl, col: tc, len: 1 });
            }
            ';' => {
                bump!();
                out.push(Lexed { tok: Tok::Semi, line: tl, col: tc, len: 1 });
            }
            '-' => {
                bump!();
                if chars.peek() == Some(&'>') {
                    bump!();
                    out.push(Lexed { tok: Tok::Direct, line: tl, col: tc, len: 2 });
                } else {
                    return Err(err(tl, tc, "unexpected '-' (direct edges are written '->')"));
                }
            }
            '=' => {
                bump!();
                if chars.peek() == Some(&'>') {
                    bump!();
                    out.push(Lexed { tok: Tok::Reach, line: tl, col: tc, len: 2 });
                } else {
                    return Err(err(
                        tl,
                        tc,
                        "unexpected '=' (reachability edges are written '=>')",
                    ));
                }
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                    s.push(bump!().unwrap());
                }
                let n: u32 = s.parse().map_err(|_| {
                    err_span(Span::new(tl, tc, s.len()), format!("label id '{s}' out of range"))
                })?;
                out.push(Lexed { tok: Tok::Int(n), line: tl, col: tc, len: s.len() });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while chars.peek().is_some_and(|&c| c.is_ascii_alphanumeric() || c == '_') {
                    s.push(bump!().unwrap());
                }
                let len = s.len();
                let tok = if s.eq_ignore_ascii_case("match") { Tok::Match } else { Tok::Ident(s) };
                out.push(Lexed { tok, line: tl, col: tc, len });
            }
            other => return Err(err(tl, tc, format!("unexpected character '{other}'"))),
        }
    }
    out.push(Lexed { tok: Tok::Eof, line, col, len: 1 });
    Ok(out)
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Lexed>,
    pos: usize,
    vars: Vec<String>,
    labels: Vec<Option<LabelSpec>>,
    /// Span of each node's first mention, for "never labeled" errors and
    /// the AST's `node_spans`.
    first_mention: Vec<Span>,
    /// Span of the label token that fixed each node's label.
    label_spans: Vec<Option<Span>>,
    edges: Vec<(QNode, QNode, EdgeKind)>,
    /// Span of each edge's arrow token, parallel to `edges`.
    edge_spans: Vec<Span>,
    anon: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser, HpqlError> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
            vars: Vec::new(),
            labels: Vec::new(),
            first_mention: Vec::new(),
            label_spans: Vec::new(),
            edges: Vec::new(),
            edge_spans: Vec::new(),
            anon: 0,
        })
    }

    fn peek(&self) -> &Lexed {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Lexed {
        let l = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        l
    }

    fn expect(&mut self, want: Tok) -> Result<Lexed, HpqlError> {
        let got = self.next();
        if got.tok == want {
            Ok(got)
        } else {
            Err(err_span(
                got.span(),
                format!("expected {}, found {}", want.describe(), got.tok.describe()),
            ))
        }
    }

    fn parse(mut self) -> Result<HpqlQuery, HpqlError> {
        self.expect(Tok::Match)?;
        loop {
            self.chain()?;
            match self.peek().tok {
                Tok::Comma => {
                    self.next();
                }
                Tok::Semi => {
                    self.next();
                    break;
                }
                Tok::Eof => break,
                _ => {
                    let got = self.next();
                    return Err(err_span(
                        got.span(),
                        format!(
                            "expected ',', ';', '->', '=>' or end of query, found {}",
                            got.tok.describe()
                        ),
                    ));
                }
            }
        }
        let trailing = self.next();
        if trailing.tok != Tok::Eof {
            return Err(err_span(
                trailing.span(),
                format!("trailing input after query: {}", trailing.tok.describe()),
            ));
        }
        // every node must have a label by the end of the query
        let mut labels = Vec::with_capacity(self.labels.len());
        let mut label_spans = Vec::with_capacity(self.labels.len());
        for (i, l) in self.labels.iter().enumerate() {
            match l {
                Some(spec) => {
                    labels.push(spec.clone());
                    // a labeled node always has a recorded label span
                    label_spans.push(self.label_spans[i].unwrap_or(self.first_mention[i]));
                }
                None => {
                    return Err(err_span(
                        self.first_mention[i],
                        format!(
                            "variable '{}' is never labeled; write ({}:Label) at one mention",
                            self.vars[i], self.vars[i]
                        ),
                    ));
                }
            }
        }
        Ok(HpqlQuery {
            vars: self.vars,
            labels,
            edges: self.edges,
            node_spans: self.first_mention,
            label_spans,
            edge_spans: self.edge_spans,
        })
    }

    fn chain(&mut self) -> Result<(), HpqlError> {
        let mut prev = self.node()?;
        loop {
            let kind = match self.peek().tok {
                Tok::Direct => EdgeKind::Direct,
                Tok::Reach => EdgeKind::Reachability,
                _ => return Ok(()),
            };
            let arrow = self.next();
            let next = self.node()?;
            if prev == next {
                return Err(err_span(
                    arrow.span(),
                    format!(
                        "self-loop on variable '{}' is not expressible",
                        self.vars[prev as usize]
                    ),
                ));
            }
            if self.edges.iter().any(|&(f, t, k)| f == prev && t == next && k == kind) {
                return Err(err_span(
                    arrow.span(),
                    format!(
                        "duplicate {} edge ({})->({})",
                        match kind {
                            EdgeKind::Direct => "direct",
                            EdgeKind::Reachability => "reachability",
                        },
                        self.vars[prev as usize],
                        self.vars[next as usize]
                    ),
                ));
            }
            self.edges.push((prev, next, kind));
            self.edge_spans.push(arrow.span());
            prev = next;
        }
    }

    /// Parses one `(var[:label])` node reference; returns its node index.
    fn node(&mut self) -> Result<QNode, HpqlError> {
        let open = self.expect(Tok::LParen)?;
        let open_span = open.span();
        let var = match self.peek().tok {
            Tok::Ident(_) => {
                let lexed = self.next();
                let span = lexed.span();
                let Tok::Ident(name) = lexed.tok else { unreachable!() };
                Some((name, span))
            }
            _ => None,
        };
        let label = if self.peek().tok == Tok::Colon {
            self.next();
            let got = self.next();
            let span = got.span();
            match got.tok {
                Tok::Ident(name) => Some((LabelSpec::Name(name), span)),
                Tok::Int(id) => Some((LabelSpec::Id(id), span)),
                other => {
                    return Err(err_span(
                        span,
                        format!(
                            "expected a label name or id after ':', found {}",
                            other.describe()
                        ),
                    ))
                }
            }
        } else {
            None
        };
        self.expect(Tok::RParen)?;

        let idx = match var {
            Some((name, span)) => match self.vars.iter().position(|v| v == &name) {
                Some(i) => i as QNode,
                None => self.declare(name, span),
            },
            None => {
                if label.is_none() {
                    return Err(err_span(
                        open_span,
                        "empty node '()': write a variable, a label, or both",
                    ));
                }
                // anonymous node: synthesize a non-colliding variable name
                loop {
                    let name = format!("_a{}", self.anon);
                    self.anon += 1;
                    if !self.vars.iter().any(|v| v == &name) {
                        break self.declare(name, open_span);
                    }
                }
            }
        };
        if let Some((spec, span)) = label {
            match &self.labels[idx as usize] {
                None => {
                    self.labels[idx as usize] = Some(spec);
                    self.label_spans[idx as usize] = Some(span);
                }
                Some(existing) if *existing == spec => {}
                Some(existing) => {
                    return Err(err_span(
                        span,
                        format!(
                            "variable '{}' relabeled: already {}, now {}",
                            self.vars[idx as usize],
                            describe_label(existing),
                            describe_label(&spec)
                        ),
                    ));
                }
            }
        }
        Ok(idx)
    }

    fn declare(&mut self, name: String, mention: Span) -> QNode {
        let idx = self.vars.len() as QNode;
        self.vars.push(name);
        self.labels.push(None);
        self.label_spans.push(None);
        self.first_mention.push(mention);
        idx
    }
}

fn describe_label(spec: &LabelSpec) -> String {
    match spec {
        LabelSpec::Name(n) => format!("':{n}'"),
        LabelSpec::Id(i) => format!("':{i}'"),
    }
}

// ---------------------------------------------------------------------------
// pretty-printer
// ---------------------------------------------------------------------------

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !s.eq_ignore_ascii_case("match")
}

/// Pretty-prints a pattern as HPQL. `vars` supplies variable names
/// (parallel to node ids; invalid or missing names fall back to `v<i>`);
/// `label_name` maps a label id to its display name (`None` or a
/// non-identifier prints the raw id). The output re-parses to the same
/// pattern modulo node numbering — node ids follow first appearance in the
/// text, and the variable names carry the correspondence (see the
/// round-trip proptests).
pub fn to_hpql(
    q: &PatternQuery,
    vars: Option<&[String]>,
    mut label_name: impl FnMut(Label) -> Option<String>,
) -> String {
    let n = q.num_nodes();
    let var_of = |i: usize| -> String {
        match vars.and_then(|v| v.get(i)) {
            Some(name) if is_ident(name) => name.clone(),
            _ => format!("v{i}"),
        }
    };
    let mut mentioned = vec![false; n];
    let mut node_text = |i: usize, mentioned: &mut [bool]| -> String {
        if mentioned[i] {
            format!("({})", var_of(i))
        } else {
            mentioned[i] = true;
            let l = q.label(i as QNode);
            match label_name(l) {
                Some(name) if is_ident(&name) => format!("({}:{})", var_of(i), name),
                _ => format!("({}:{})", var_of(i), l),
            }
        }
    };

    let mut used = vec![false; q.num_edges()];
    let mut chains: Vec<String> = Vec::new();
    // Chains start from the lowest-id unused edge and greedily extend from
    // the chain tail, so typical path/tree patterns print as one chain.
    while let Some(start) = used.iter().position(|&u| !u) {
        used[start] = true;
        let e = q.edge(start as crate::EdgeId);
        let mut chain = String::new();
        chain.push_str(&node_text(e.from as usize, &mut mentioned));
        chain.push_str(arrow(e.kind));
        chain.push_str(&node_text(e.to as usize, &mut mentioned));
        let mut tail = e.to;
        'extend: loop {
            for &eid in q.out_edges(tail) {
                if !used[eid as usize] {
                    used[eid as usize] = true;
                    let e = q.edge(eid);
                    chain.push_str(arrow(e.kind));
                    chain.push_str(&node_text(e.to as usize, &mut mentioned));
                    tail = e.to;
                    continue 'extend;
                }
            }
            break;
        }
        chains.push(chain);
    }
    // isolated nodes (only possible in edge-free patterns) still print
    for i in 0..n {
        if !mentioned[i] {
            chains.push(node_text(i, &mut mentioned));
        }
    }
    format!("MATCH {}", chains.join(", "))
}

fn arrow(kind: EdgeKind) -> &'static str {
    match kind {
        EdgeKind::Direct => "->",
        EdgeKind::Reachability => "=>",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig2_query;

    fn parse_interned(text: &str) -> (PatternQuery, Vec<String>) {
        let (r, _names) = parse_hpql(text).unwrap().resolve_interned().unwrap();
        (r.query, r.vars)
    }

    #[test]
    fn parses_the_issue_example() {
        let (q, vars) = parse_interned("MATCH (a:Author)->(p:Paper)=>(q:Paper), (a)->(q)");
        assert_eq!(vars, vec!["a", "p", "q"]);
        assert_eq!(q.num_nodes(), 3);
        assert_eq!(q.num_edges(), 3);
        assert_eq!(q.label(0), 0); // Author
        assert_eq!(q.label(1), 1); // Paper
        assert_eq!(q.label(2), 1); // Paper (same name, same id)
        assert_eq!(q.edge(0).kind, EdgeKind::Direct);
        assert_eq!(q.edge(1).kind, EdgeKind::Reachability);
        assert_eq!(q.edge(2).kind, EdgeKind::Direct);
    }

    #[test]
    fn numeric_labels_and_anonymous_nodes() {
        let (q, vars) = parse_interned("MATCH (x:0)=>(:7)");
        assert_eq!(q.num_nodes(), 2);
        assert_eq!(q.label(0), 0);
        assert_eq!(q.label(1), 7);
        assert_eq!(vars[0], "x");
        assert!(vars[1].starts_with("_a"));
    }

    #[test]
    fn comments_whitespace_case_and_semicolon() {
        let (q, _) =
            parse_interned("# a comment\n  match // trailing\n   (a:L) -> (b:M)\n , (b) => (a) ;");
        assert_eq!(q.num_edges(), 2);
        assert_eq!(q.edge(1).kind, EdgeKind::Reachability);
    }

    #[test]
    fn label_first_mention_wins_and_conflicts_error() {
        let (q, _) = parse_interned("MATCH (a:L)->(b:M), (b)->(a)");
        assert_eq!(q.label(0), 0);
        let e = parse_hpql("MATCH (a:L)->(b:M), (a:M)->(b)").unwrap_err();
        assert!(e.message.contains("relabeled"), "{e}");
    }

    #[test]
    fn duplicate_and_self_loop_edges_rejected() {
        let e = parse_hpql("MATCH (a:L)->(b:M), (a)->(b)").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
        let e = parse_hpql("MATCH (a:L)->(a)").unwrap_err();
        assert!(e.message.contains("self-loop"), "{e}");
        // parallel edges of different kinds are fine
        let (q, _) = parse_interned("MATCH (a:L)->(b:M), (a)=>(b)");
        assert_eq!(q.num_edges(), 2);
    }

    #[test]
    fn unlabeled_variable_errors_with_position() {
        let e = parse_hpql("MATCH (a:L)->(b)").unwrap_err();
        assert!(e.message.contains("'b' is never labeled"), "{e}");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn unknown_name_resolution_fails() {
        let ast = parse_hpql("MATCH (a:Ghost)->(b:0)").unwrap();
        let e = ast.resolve(|_| None).unwrap_err();
        assert!(e.message.contains("Ghost"), "{e}");
    }

    #[test]
    fn lex_errors_carry_position() {
        for bad in ["MATCH (a:L) -> (b:M) !", "MATCH (a:L) - (b:M)", "MATCH (a:L) = (b:M)"] {
            let e = parse_hpql(bad).unwrap_err();
            assert!(e.line >= 1 && e.col >= 1 && e.len >= 1, "{bad}: {e}");
        }
        assert!(parse_hpql("(a:L)->(b:M)").unwrap_err().message.contains("MATCH"));
        assert!(parse_hpql("MATCH ()").is_err());
    }

    #[test]
    fn errors_span_the_whole_offending_token() {
        // the trailing identifier after the query is 5 chars long
        let e = parse_hpql("MATCH (a:L)->(b:M) junks").unwrap_err();
        assert_eq!((e.line, e.col, e.len), (1, 20, 5), "{e}");
        // a relabel error covers the second label token
        let e = parse_hpql("MATCH (a:Long)->(b:M), (a:Other)->(b)").unwrap_err();
        assert_eq!((e.col, e.len), (27, 5), "{e}");
        // duplicate-edge errors cover the arrow
        let e = parse_hpql("MATCH (a:L)->(b:M), (a)->(b)").unwrap_err();
        assert_eq!(e.len, 2, "{e}");
    }

    #[test]
    fn ast_carries_node_label_and_edge_spans() {
        let q = parse_hpql("MATCH (alpha:Author)->(p:Paper)").unwrap();
        assert_eq!(q.node_span(0), Span::new(1, 8, 5)); // 'alpha'
        assert_eq!(q.label_span(0), Span::new(1, 14, 6)); // 'Author'
        assert_eq!(q.label_span(1), Span::new(1, 26, 5)); // 'Paper'
        assert_eq!(q.edge_span(0), Span::new(1, 21, 2)); // '->'
                                                         // anonymous nodes anchor on their '('
        let q = parse_hpql("MATCH (x:0)=>(:7)").unwrap();
        assert_eq!(q.node_span(1), Span::new(1, 14, 1));
    }

    #[test]
    fn unknown_name_errors_carry_label_span_and_suggestion() {
        let ast = parse_hpql("MATCH (a:Autor)->(b:Paper)").unwrap();
        let dict = ["Author", "Paper"];
        let e = ast
            .resolve_with(
                |n| dict.iter().position(|d| *d == n).map(|i| i as Label),
                |n| closest_label(n, dict.iter().copied()).map(str::to_string),
            )
            .unwrap_err();
        assert!(e.message.contains("did you mean 'Author'?"), "{e}");
        assert_eq!((e.line, e.col, e.len), (1, 10, 5), "{e}");
    }

    #[test]
    fn closest_label_accepts_near_misses_only() {
        let dict = ["Author", "Paper", "Cited"];
        assert_eq!(closest_label("Autor", dict), Some("Author"));
        assert_eq!(closest_label("author", dict), Some("Author")); // case-insensitive
        assert_eq!(closest_label("Papers", dict), Some("Paper"));
        assert_eq!(closest_label("Zebra", dict), None); // nothing close
        assert_eq!(closest_label("X", dict), None); // shorter than any distance
    }

    #[test]
    fn printer_round_trips_fig2() {
        let q = fig2_query();
        let text = to_hpql(&q, None, |_| None);
        assert_eq!(text, "MATCH (v0:0)->(v1:1)=>(v2:2), (v0)->(v2)");
        let (back, vars) = parse_interned(&text);
        // v0,v1,v2 appear in id order here, so node numbering is preserved
        assert_eq!(vars, vec!["v0", "v1", "v2"]);
        assert_eq!(back.canonical(), q.canonical());
    }

    #[test]
    fn printer_uses_names_and_vars_when_given() {
        let q = fig2_query();
        let vars: Vec<String> = ["a", "p", "q"].iter().map(|s| s.to_string()).collect();
        let names = ["Author", "Paper", "Cited"];
        let text = to_hpql(&q, Some(&vars), |l| Some(names[l as usize].to_string()));
        assert_eq!(text, "MATCH (a:Author)->(p:Paper)=>(q:Cited), (a)->(q)");
    }

    #[test]
    fn printer_handles_edge_free_patterns() {
        let q = PatternQuery::new(vec![3]);
        assert_eq!(to_hpql(&q, None, |_| None), "MATCH (v0:3)");
    }

    #[test]
    fn hpql_detection() {
        assert!(looks_like_hpql("  # c\n MATCH (a:0)->(b:1)"));
        assert!(looks_like_hpql("match (a:0)->(b:1)"));
        assert!(!looks_like_hpql("n 0 0\nn 1 1\nd 0 1\n"));
        assert!(!looks_like_hpql(""));
    }
}
