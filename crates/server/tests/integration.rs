//! Integration suite: concurrent clients driving a real `rig_server`
//! over real sockets.
//!
//! The scenarios the serving layer must survive (ISSUE 8):
//! - parallel queries against a mutating store stay **snapshot
//!   consistent** — every streamed tuple set equals one of the two
//!   committed states, never a torn mixture, differentially verified
//!   against direct `Session` enumeration;
//! - **queue overflow returns 503**, not a hang;
//! - a **mid-stream client disconnect frees its worker**;
//! - a per-request **timeout yields the budget status** with
//!   `timed_out` set;
//! - the **error → status-code mapping** and `/update` conflict retries
//!   behave as documented in `docs/serving.md`.
//!
//! Helpers speak raw HTTP over `TcpStream` — no client library, and no
//! dev-dependency on the bench crate's JSON parser (which depends on
//! this crate): assertions use plain string matching on the small,
//! stable wire format.

// test code asserts with unwrap/expect/panic freely; the workspace
// panic lints target the production crate (clippy.toml exempts
// #[test] fns, but not these shared helpers)
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rig_core::Session;
use rig_graph::{DataGraph, GraphBuilder};
use rig_server::{Server, ServerConfig};

// ---------------------------------------------------------------------
// raw-socket HTTP helpers
// ---------------------------------------------------------------------

fn send_raw(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(request.as_bytes()).expect("request write");
    // accumulate manually: a whole-response read_to_string would discard
    // everything already received if the connection resets at the tail
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
        }
    }
    parse_response(&String::from_utf8(response).expect("utf-8 response"))
}

fn parse_response(response: &str) -> (u16, String) {
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {response:?}"))
        .1
        .to_string();
    (status, body)
}

fn query_stream(addr: SocketAddr, hpql: &str, params: &str) -> (u16, Vec<Vec<u32>>, String) {
    let (status, body) = send_raw(addr, "POST", &format!("/query{params}"), hpql);
    if status != 200 {
        return (status, Vec::new(), body);
    }
    let mut tuples = Vec::new();
    let mut summary = String::new();
    for line in body.lines() {
        if line.starts_with('[') {
            let inner = line.trim_start_matches('[').trim_end_matches(']');
            tuples.push(inner.split(',').map(|v| v.parse::<u32>().expect("node id")).collect());
        } else if line.starts_with('{') {
            assert!(summary.is_empty(), "two summary objects in {body:?}");
            summary = line.to_string();
        } else if !line.trim().is_empty() {
            panic!("unexpected stream line {line:?}");
        }
    }
    assert!(!summary.is_empty(), "stream had no trailing summary: {body:?}");
    (status, tuples, summary)
}

/// Pulls `"name":value` out of a flat JSON object (the wire format never
/// nests, so string scanning is sound).
fn json_field<'a>(obj: &'a str, name: &str) -> &'a str {
    let key = format!("\"{name}\":");
    let start = obj.find(&key).unwrap_or_else(|| panic!("{name} missing from {obj}")) + key.len();
    let rest = &obj[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim_matches('"')
}

// ---------------------------------------------------------------------
// graphs
// ---------------------------------------------------------------------

/// 10 label-0 nodes, 10 label-1 nodes, one base edge `i -> 10+i` each.
fn ab_graph() -> DataGraph {
    let mut b = GraphBuilder::new();
    for _ in 0..10 {
        b.add_node(0);
    }
    for _ in 0..10 {
        b.add_node(1);
    }
    for i in 0..10u32 {
        b.add_edge(i, 10 + i);
    }
    b.build()
}

/// A complete digraph on `n` label-0 nodes: every ordered pair is an
/// edge, so the triangle query has `n * (n-1) * (n-2)` occurrences —
/// big enough to outlast socket buffers and trip timeouts.
fn dense_graph(n: u32) -> DataGraph {
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_node(0);
    }
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.add_edge(i, j);
            }
        }
    }
    b.build()
}

const AB_QUERY: &str = "MATCH (a:0)->(b:1)";
const TRIANGLE: &str = "MATCH (a:0)->(b:0)->(c:0), (c)->(a)";

fn sorted(mut tuples: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    tuples.sort();
    tuples
}

// ---------------------------------------------------------------------
// scenarios
// ---------------------------------------------------------------------

/// Readers race a writer that toggles a 5-edge batch on and off, one
/// commit per direction. Snapshot consistency means every response's
/// tuple set is exactly the base set or the extended set — a torn count
/// (base + some of the batch) would prove a reader saw a half-applied
/// commit. Both expected sets come from direct Session enumeration, so
/// every streamed result is differentially verified.
#[test]
fn concurrent_queries_against_mutating_store_stay_snapshot_consistent() {
    let session = Arc::new(Session::new(ab_graph()));
    let extras: Vec<(u32, u32)> = vec![(0, 12), (1, 13), (2, 14), (3, 15), (4, 16)];

    // differential baselines from the library API
    let base_set = {
        let p = session.prepare(AB_QUERY).unwrap();
        sorted(p.run().collect_all().0)
    };
    let extended_set = {
        let mut txn = session.begin();
        for &(u, v) in &extras {
            txn.add_edge(u, v);
        }
        session.commit(txn).unwrap();
        let p = session.prepare(AB_QUERY).unwrap();
        let s = sorted(p.run().collect_all().0);
        let mut txn = session.begin();
        for &(u, v) in &extras {
            txn.remove_edge(u, v);
        }
        session.commit(txn).unwrap();
        s
    };
    assert_eq!(base_set.len(), 10);
    assert_eq!(extended_set.len(), 15);

    let (addr, handle) =
        Server::spawn(Arc::clone(&session), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let add_script: String =
        extras.iter().map(|(u, v)| format!("a e {u} {v}\n")).collect::<String>() + "commit\n";
    let del_script: String =
        extras.iter().map(|(u, v)| format!("d e {u} {v}\n")).collect::<String>() + "commit\n";

    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for round in 0..12 {
                let script = if round % 2 == 0 { &add_script } else { &del_script };
                let (status, body) = send_raw(addr, "POST", "/update", script);
                assert_eq!(status, 200, "update failed: {body}");
            }
        });
        let readers: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(|| {
                    for i in 0..15 {
                        let mode = if i % 3 == 0 { "?mode=count" } else { "" };
                        if mode.is_empty() {
                            let (status, tuples, summary) = query_stream(addr, AB_QUERY, "");
                            assert_eq!(status, 200);
                            let got = sorted(tuples);
                            assert!(
                                got == base_set || got == extended_set,
                                "torn snapshot: {} tuples",
                                got.len()
                            );
                            let count: usize = json_field(&summary, "count").parse().unwrap();
                            assert_eq!(count, got.len(), "summary disagrees with stream");
                        } else {
                            let (status, body) =
                                send_raw(addr, "POST", "/query?mode=count", AB_QUERY);
                            assert_eq!(status, 200);
                            let count: usize = json_field(&body, "count").parse().unwrap();
                            assert!(
                                count == base_set.len() || count == extended_set.len(),
                                "torn count {count}"
                            );
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    });

    // quiesced: the server and the library agree exactly (writer ran an
    // even number of toggles, so the store is back to the base set)
    let (_, tuples, _) = query_stream(addr, AB_QUERY, "");
    assert_eq!(sorted(tuples), base_set);
    let direct = sorted(session.prepare(AB_QUERY).unwrap().run().collect_all().0);
    assert_eq!(direct, base_set);

    let (status, _) = send_raw(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap().unwrap();
}

/// workers=1 and queue_depth=1 with a slowed handler: of three
/// simultaneous queries, exactly one must be turned away with 503 —
/// immediately, by the acceptor — while the other two complete.
#[test]
fn queue_overflow_returns_503_immediately() {
    let session = Arc::new(Session::new(ab_graph()));
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        handler_delay: Some(Duration::from_millis(400)),
        ..Default::default()
    };
    let (addr, handle) = Server::spawn(Arc::clone(&session), "127.0.0.1:0", config).unwrap();

    let statuses = std::thread::scope(|scope| {
        let t1 = scope.spawn(move || send_raw(addr, "POST", "/query?mode=count", AB_QUERY).0);
        std::thread::sleep(Duration::from_millis(120));
        let t2 = scope.spawn(move || send_raw(addr, "POST", "/query?mode=count", AB_QUERY).0);
        std::thread::sleep(Duration::from_millis(120));
        let overflow_started = Instant::now();
        let s3 = send_raw(addr, "POST", "/query?mode=count", AB_QUERY).0;
        let overflow_latency = overflow_started.elapsed();
        if s3 == 503 {
            // the 503 must come from the acceptor, not from waiting out
            // the slowed worker
            assert!(overflow_latency < Duration::from_millis(300), "{overflow_latency:?}");
        }
        vec![t1.join().unwrap(), t2.join().unwrap(), s3]
    });
    assert_eq!(statuses.iter().filter(|&&s| s == 503).count(), 1, "{statuses:?}");
    assert_eq!(statuses.iter().filter(|&&s| s == 200).count(), 2, "{statuses:?}");

    let (status, _) = send_raw(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap().unwrap();
}

/// With a single worker, a client that vanishes mid-stream must not pin
/// it: the next write into the dead socket fails, the sink protocol
/// stops the enumeration, and a follow-up /healthz gets answered.
#[test]
fn mid_stream_disconnect_frees_the_worker() {
    let session = Arc::new(Session::new(dense_graph(60)));
    let config = ServerConfig {
        workers: 1,
        batch_tuples: 64,
        write_timeout: Duration::from_millis(500),
        ..Default::default()
    };
    let (addr, handle) = Server::spawn(Arc::clone(&session), "127.0.0.1:0", config).unwrap();
    {
        // 60·59·58 = 205_320 tuples ≈ 2.5 MB — far beyond socket buffers
        let mut s = TcpStream::connect(addr).unwrap();
        write!(
            s,
            "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{TRIANGLE}",
            TRIANGLE.len()
        )
        .unwrap();
        let mut reader = BufReader::new(&s);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap(); // status line arrived: the stream is live
        assert!(line.contains("200"), "{line:?}");
        // dropping both halves closes the socket: vanish mid-stream
    }

    // the lone worker must come back; give the EPIPE a moment to land
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut s) = TcpStream::connect(addr) {
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            let mut response = String::new();
            if s.read_to_string(&mut response).is_ok() && response.contains("200") {
                break;
            }
        }
        assert!(Instant::now() < deadline, "worker never came back after disconnect");
        std::thread::sleep(Duration::from_millis(100));
    }
    let (status, page) = send_raw(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let disconnects = page
        .lines()
        .find_map(|l| l.strip_prefix("rigmatch_client_disconnects_total "))
        .expect("disconnect counter exported")
        .parse::<u64>()
        .unwrap();
    assert!(disconnects >= 1, "disconnect not recorded:\n{page}");

    send_raw(addr, "POST", "/shutdown", "");
    handle.join().unwrap().unwrap();
}

/// `timeout_ms` maps onto the engine deadline: an expired budget reports
/// `"status":"budget"` with `timed_out` in both stream and count modes.
/// `limit` maps onto the match limit the same way.
#[test]
fn per_request_budgets_report_budget_status() {
    let session = Arc::new(Session::new(dense_graph(60)));
    let (addr, handle) =
        Server::spawn(Arc::clone(&session), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let (status, _, summary) = query_stream(addr, TRIANGLE, "?timeout_ms=0");
    assert_eq!(status, 200);
    assert_eq!(json_field(&summary, "status"), "budget", "{summary}");
    assert_eq!(json_field(&summary, "timed_out"), "true", "{summary}");

    let (status, body) = send_raw(addr, "POST", "/query?mode=count&timeout_ms=0", TRIANGLE);
    assert_eq!(status, 200);
    assert_eq!(json_field(&body, "status"), "budget", "{body}");
    assert_eq!(json_field(&body, "timed_out"), "true", "{body}");

    let (status, tuples, summary) = query_stream(addr, TRIANGLE, "?limit=5");
    assert_eq!(status, 200);
    assert_eq!(tuples.len(), 5);
    assert_eq!(json_field(&summary, "status"), "budget", "{summary}");
    assert_eq!(json_field(&summary, "limit_hit"), "true", "{summary}");

    send_raw(addr, "POST", "/shutdown", "");
    handle.join().unwrap().unwrap();
}

/// The status-code table of `docs/serving.md`: parse → 400, validation →
/// 422, unknown path → 404, wrong method → 405, oversized body → 413.
#[test]
fn error_responses_map_onto_the_documented_status_codes() {
    let session = Arc::new(Session::new(ab_graph()));
    let config = ServerConfig { max_body_bytes: 256, ..Default::default() };
    let (addr, handle) = Server::spawn(Arc::clone(&session), "127.0.0.1:0", config).unwrap();

    let (status, body) = send_raw(addr, "POST", "/query", "MATCH (broken");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\":\"parse\""), "{body}");

    // label 99 does not exist in the graph's label space
    let (status, body) = send_raw(addr, "POST", "/query", "MATCH (a:99)->(b:0)");
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("\"kind\":\"validation\""), "{body}");

    let (status, body) = send_raw(addr, "POST", "/query", "");
    assert_eq!(status, 400, "{body}");

    let (status, _) = send_raw(addr, "POST", "/query?mode=sideways", AB_QUERY);
    assert_eq!(status, 400);
    let (status, _) = send_raw(addr, "POST", "/query?limit=many", AB_QUERY);
    assert_eq!(status, 400);

    let (status, body) = send_raw(addr, "GET", "/nope", "");
    assert_eq!(status, 404, "{body}");
    let (status, body) = send_raw(addr, "GET", "/query", "");
    assert_eq!(status, 405, "{body}");

    let big = "x".repeat(512);
    let (status, body) = send_raw(addr, "POST", "/query", &big);
    assert_eq!(status, 413, "{body}");

    // update parse errors classify like query parse errors
    let (status, body) = send_raw(addr, "POST", "/update", "q w e\n");
    assert_eq!(status, 400, "{body}");

    send_raw(addr, "POST", "/shutdown", "");
    handle.join().unwrap().unwrap();
}

/// Concurrent single-commit updates race their optimistic commits; the
/// server's bounded retry absorbs the conflicts so every request
/// succeeds, and the final graph matches direct enumeration exactly.
#[test]
fn concurrent_updates_all_land_via_conflict_retry() {
    let mut b = GraphBuilder::new();
    for _ in 0..30 {
        b.add_node(0);
    }
    let session = Arc::new(Session::new(b.build()));
    let (addr, handle) =
        Server::spawn(Arc::clone(&session), "127.0.0.1:0", ServerConfig::default()).unwrap();

    std::thread::scope(|scope| {
        for t in 0..4u32 {
            scope.spawn(move || {
                for k in 0..5u32 {
                    let edge = t * 5 + k;
                    let script = format!("a e {} {}\ncommit\n", edge, edge + 1);
                    let (status, body) = send_raw(addr, "POST", "/update", &script);
                    assert_eq!(status, 200, "update lost despite retries: {body}");
                }
            });
        }
    });

    let (status, body) = send_raw(addr, "POST", "/query?mode=count", "MATCH (a:0)->(b:0)");
    assert_eq!(status, 200);
    assert_eq!(json_field(&body, "count"), "20", "{body}");
    let direct = session.prepare("MATCH (a:0)->(b:0)").unwrap().run().count();
    assert_eq!(direct.result.count, 20);
    assert_eq!(session.store_stats().commits, 20);

    send_raw(addr, "POST", "/shutdown", "");
    handle.join().unwrap().unwrap();
}

/// Shutdown drains: requests answered, then `serve()` returns cleanly
/// and the bound port is released.
#[test]
fn shutdown_joins_cleanly() {
    let session = Arc::new(Session::new(ab_graph()));
    let (addr, handle) =
        Server::spawn(Arc::clone(&session), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let (status, body) = send_raw(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _) = send_raw(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap().unwrap();
    // port released: a fresh bind on the same address succeeds
    let addr_s = addr.to_string();
    let rebound = Server::bind(session, &addr_s, ServerConfig::default());
    assert!(rebound.is_ok(), "{:?}", rebound.err());
}

/// `?lint=strict` refuses provably-empty queries with 422 and a
/// structured diagnostics body, counts the rejection in `/metrics`, and
/// lets satisfiable queries through untouched.
#[test]
fn strict_lint_rejects_with_structured_diagnostics() {
    let session = Arc::new(Session::new(ab_graph()));
    let server =
        Server::bind(Arc::clone(&session), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve());

    // satisfiable: passes the gate, streams normally
    let (status, tuples, _) = query_stream(addr, AB_QUERY, "?lint=strict");
    assert_eq!(status, 200);
    assert_eq!(tuples.len(), 10);

    // no label-1 -> label-0 edge exists: proven empty, refused
    let (status, body) = send_raw(addr, "POST", "/query?lint=strict", "MATCH (b:1)->(a:0)");
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("\"kind\":\"analysis\""), "{body}");
    assert!(body.contains("\"proven_empty\": true"), "{body}");
    assert!(body.contains("\"code\": \"E102\""), "{body}");

    // without the gate the same query runs and counts 0
    let (status, _, summary) = query_stream(addr, "MATCH (b:1)->(a:0)", "");
    assert_eq!(status, 200);
    assert_eq!(json_field(&summary, "count"), "0");

    // bad lint values are a 400, not a silent default
    let (status, body) = send_raw(addr, "POST", "/query?lint=sometimes", AB_QUERY);
    assert_eq!(status, 400, "{body}");

    let (status, page) = send_raw(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(page.contains("rigmatch_lint_rejections_total 1\n"), "{page}");

    send_raw(addr, "POST", "/shutdown", "");
    handle.join().unwrap().unwrap();
}

/// The metrics page reflects traffic (counter monotonicity smoke).
#[test]
fn metrics_page_reflects_traffic() {
    let session = Arc::new(Session::new(ab_graph()));
    let server =
        Server::bind(Arc::clone(&session), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let metrics = server.metrics();
    let handle = std::thread::spawn(move || server.serve());

    for _ in 0..3 {
        let (status, _, _) = query_stream(addr, AB_QUERY, "");
        assert_eq!(status, 200);
    }
    send_raw(addr, "POST", "/update", "a e 0 11\ncommit\n");
    let (status, page) = send_raw(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(page.contains("rigmatch_queries_total 3\n"), "{page}");
    assert!(page.contains("rigmatch_updates_total 1\n"), "{page}");
    assert!(page.contains("rigmatch_tuples_streamed_total 30\n"), "{page}");
    assert!(page.contains("rigmatch_store_commits_total 1\n"), "{page}");
    assert_eq!(metrics.queries.load(Ordering::Relaxed), 3);

    send_raw(addr, "POST", "/shutdown", "");
    handle.join().unwrap().unwrap();
}
