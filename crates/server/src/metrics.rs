//! Server-side counters and the Prometheus text exposition for
//! `GET /metrics`.
//!
//! [`ServerMetrics`] holds the counters the worker pool maintains
//! (requests per endpoint, admission rejections, client disconnects,
//! streamed tuples, conflict retries…). The render combines them with the
//! session's own [`CacheStats`]/[`StoreStats`] and the per-query
//! [`rig_core::GmMetrics`] aggregates, so one scrape sees the whole
//! serving stack.

use std::sync::atomic::{AtomicU64, Ordering};

use rig_core::{CacheStats, Session, StoreStats};

/// Cumulative serving counters. All relaxed atomics — these are
/// monotonic observability counters, not synchronization.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// `POST /query` requests accepted by a worker.
    pub queries: AtomicU64,
    /// `POST /update` requests accepted by a worker.
    pub updates: AtomicU64,
    /// `GET /healthz` + `GET /metrics` + everything else.
    pub other_requests: AtomicU64,
    /// Connections turned away with 503 by admission control.
    pub rejected: AtomicU64,
    /// Responses with a 4xx/5xx status written by a worker.
    pub error_responses: AtomicU64,
    /// Streaming clients that vanished mid-response (write failed); the
    /// enumeration was stopped and the worker freed.
    pub client_disconnects: AtomicU64,
    /// Result tuples written to NDJSON streams.
    pub tuples_streamed: AtomicU64,
    /// Query runs truncated by their wall-clock budget.
    pub queries_timed_out: AtomicU64,
    /// `count()` runs answered by the factorized DP instead of
    /// enumeration.
    pub queries_via_dp: AtomicU64,
    /// Query runs whose RIG came from the session plan cache.
    pub rig_cache_hits: AtomicU64,
    /// Queries refused 422 by `?lint=strict` static analysis.
    pub lint_rejections: AtomicU64,
    /// Optimistic-commit conflicts retried by `/update` (each retry
    /// counts once; the request still succeeds unless retries exhaust).
    pub conflict_retries: AtomicU64,
    /// Mutation commits applied through `/update`.
    pub commits_applied: AtomicU64,
    /// Total query evaluation time, microseconds (sum over requests).
    pub query_micros: AtomicU64,
    /// Workers currently evaluating a request (gauge).
    pub busy_workers: AtomicU64,
}

impl ServerMetrics {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"));
}

/// Renders the full Prometheus text page: server counters plus the
/// session's cache and store statistics.
pub fn render(metrics: &ServerMetrics, session: &Session) -> String {
    let m = metrics;
    let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let mut out = String::with_capacity(4096);

    counter(&mut out, "rigmatch_queries_total", "POST /query requests handled", load(&m.queries));
    counter(&mut out, "rigmatch_updates_total", "POST /update requests handled", load(&m.updates));
    counter(
        &mut out,
        "rigmatch_other_requests_total",
        "requests to the remaining endpoints",
        load(&m.other_requests),
    );
    counter(
        &mut out,
        "rigmatch_rejected_total",
        "connections answered 503 by admission control",
        load(&m.rejected),
    );
    counter(
        &mut out,
        "rigmatch_error_responses_total",
        "4xx/5xx responses written by workers",
        load(&m.error_responses),
    );
    counter(
        &mut out,
        "rigmatch_client_disconnects_total",
        "streaming clients that vanished mid-response",
        load(&m.client_disconnects),
    );
    counter(
        &mut out,
        "rigmatch_tuples_streamed_total",
        "result tuples written to NDJSON streams",
        load(&m.tuples_streamed),
    );
    counter(
        &mut out,
        "rigmatch_queries_timed_out_total",
        "query runs truncated by their budget",
        load(&m.queries_timed_out),
    );
    counter(
        &mut out,
        "rigmatch_queries_via_dp_total",
        "counts answered by the factorized DP",
        load(&m.queries_via_dp),
    );
    counter(
        &mut out,
        "rigmatch_rig_cache_hits_total",
        "query runs whose RIG came from the plan cache",
        load(&m.rig_cache_hits),
    );
    counter(
        &mut out,
        "rigmatch_lint_rejections_total",
        "queries refused 422 by ?lint=strict static analysis",
        load(&m.lint_rejections),
    );
    counter(
        &mut out,
        "rigmatch_conflict_retries_total",
        "optimistic-commit conflicts retried by /update",
        load(&m.conflict_retries),
    );
    counter(
        &mut out,
        "rigmatch_commits_applied_total",
        "mutation commits applied through /update",
        load(&m.commits_applied),
    );
    counter(
        &mut out,
        "rigmatch_query_micros_total",
        "total query evaluation time in microseconds",
        load(&m.query_micros),
    );
    gauge(
        &mut out,
        "rigmatch_busy_workers",
        "workers currently evaluating a request",
        load(&m.busy_workers),
    );

    let c: CacheStats = session.cache_stats();
    counter(&mut out, "rigmatch_plan_cache_hits_total", "plan cache hits", c.hits);
    counter(&mut out, "rigmatch_plan_cache_misses_total", "plan cache misses", c.misses);
    counter(&mut out, "rigmatch_plan_cache_evictions_total", "LRU evictions", c.evictions);
    counter(
        &mut out,
        "rigmatch_plan_cache_invalidated_total",
        "plans dropped by commit invalidation",
        c.invalidated,
    );
    gauge(&mut out, "rigmatch_plan_cache_entries", "plans resident", c.entries as u64);

    let s: StoreStats = session.store_stats();
    gauge(&mut out, "rigmatch_store_version", "monotone store version", s.version);
    counter(&mut out, "rigmatch_store_commits_total", "commits since open", s.commits);
    counter(&mut out, "rigmatch_store_compactions_total", "LSM compactions run", s.compactions);
    gauge(&mut out, "rigmatch_store_delta_ops", "mutations resident in the overlay", s.delta_ops);
    gauge(&mut out, "rigmatch_graph_live_nodes", "live nodes in the snapshot", s.live_nodes as u64);
    gauge(&mut out, "rigmatch_graph_edges", "edges in the snapshot", s.edges as u64);
    counter(
        &mut out,
        "rigmatch_wal_flush_failures_total",
        "WAL flushes that failed or found a poisoned store",
        s.wal_flush_failures,
    );

    // sharded execution (only when the session runs sharded); per-shard
    // counters use flat `rigmatch_shard<N>_*` names so every line stays
    // a plain `name value` pair
    if let Some(sh) = session.sharding_stats() {
        gauge(&mut out, "rigmatch_shards", "configured shard count", sh.shards as u64);
        gauge(
            &mut out,
            "rigmatch_shard_cut_edges",
            "edges crossing shard boundaries",
            sh.cut_edges,
        );
        for (s, c) in sh.per_shard.iter().enumerate() {
            gauge(
                &mut out,
                &format!("rigmatch_shard{s}_owned_nodes"),
                "nodes this shard owns",
                c.owned_nodes,
            );
            counter(
                &mut out,
                &format!("rigmatch_shard{s}_rig_builds_total"),
                "RIG block (re)builds for this shard",
                c.rig_builds,
            );
            counter(
                &mut out,
                &format!("rigmatch_shard{s}_tasks_total"),
                "scatter-gather tasks this shard processed",
                c.tasks,
            );
            counter(
                &mut out,
                &format!("rigmatch_shard{s}_emitted_total"),
                "matches this shard emitted",
                c.emitted,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rig_graph::GraphBuilder;

    #[test]
    fn render_is_well_formed_prometheus_text() {
        let mut b = GraphBuilder::new();
        b.add_node(0);
        b.add_node(0);
        b.add_edge(0, 1);
        let session = Session::new(b.build());
        let m = ServerMetrics::default();
        ServerMetrics::bump(&m.queries);
        ServerMetrics::add(&m.tuples_streamed, 42);
        let page = render(&m, &session);
        assert!(page.contains("rigmatch_queries_total 1\n"));
        assert!(page.contains("rigmatch_tuples_streamed_total 42\n"));
        assert!(page.contains("rigmatch_graph_edges 1\n"));
        assert!(page.contains("rigmatch_wal_flush_failures_total 0\n"));
        // sharding is off: no shard lines
        assert!(!page.contains("rigmatch_shards"));
        // every non-comment line is `name value`
        for line in page.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            let name = parts.next().unwrap();
            assert!(name.starts_with("rigmatch_"), "{line}");
            assert!(parts.next().unwrap().parse::<u64>().is_ok(), "{line}");
            assert!(parts.next().is_none(), "{line}");
        }
    }

    #[test]
    fn sharded_session_renders_per_shard_lines() {
        let mut b = GraphBuilder::new();
        for _ in 0..8 {
            b.add_node_with_name(0, "L");
        }
        for v in 1..8 {
            b.add_edge(v - 1, v);
        }
        let session = Session::new(b.build());
        session.set_sharding(rig_core::ShardOptions::range(2));
        // a run builds the store so size gauges are populated
        let p = session.prepare("MATCH (a:L)->(b:L)").unwrap();
        assert_eq!(p.run().count().result.count, 7);
        let page = render(&ServerMetrics::default(), &session);
        assert!(page.contains("rigmatch_shards 2\n"), "{page}");
        assert!(page.contains("rigmatch_shard0_owned_nodes 4\n"), "{page}");
        assert!(page.contains("rigmatch_shard1_tasks_total"), "{page}");
        for line in page.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            assert!(parts.next().unwrap().starts_with("rigmatch_"), "{line}");
            assert!(parts.next().unwrap().parse::<u64>().is_ok(), "{line}");
            assert!(parts.next().is_none(), "{line}");
        }
    }
}
