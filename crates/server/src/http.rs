//! A deliberately small HTTP/1.1 subset — just enough wire protocol for
//! the rigmatch serving endpoints, with zero dependencies beyond `std`.
//!
//! Every connection carries exactly one request and is closed after the
//! response (`Connection: close`): streamed NDJSON bodies are delimited
//! by the close, so no chunked framing is needed. Requests larger than
//! the configured body cap are rejected before the body is read.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// One parsed request: method, decoded path, query parameters and body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string (e.g. `/query`).
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub query: Vec<(String, String)>,
    pub body: String,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps to the HTTP status
/// the server should answer with (when the socket is still writable).
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line / headers / body → 400.
    Bad(String),
    /// Declared body exceeds the configured cap → 413.
    TooLarge { declared: usize, cap: usize },
    /// The socket failed mid-read (timeout, reset) — nothing to answer.
    Io(std::io::Error),
}

impl RequestError {
    pub fn status(&self) -> u16 {
        match self {
            RequestError::Bad(_) => 400,
            RequestError::TooLarge { .. } => 413,
            RequestError::Io(_) => 408,
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Bad(msg) => write!(f, "bad request: {msg}"),
            RequestError::TooLarge { declared, cap } => {
                write!(f, "body of {declared} bytes exceeds the {cap} byte cap")
            }
            RequestError::Io(e) => write!(f, "read failed: {e}"),
        }
    }
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 3 <= bytes.len()
                && bytes[i + 1].is_ascii_hexdigit()
                && bytes[i + 2].is_ascii_hexdigit() =>
            {
                // the guard makes this parse infallible, but degrade to
                // a literal '%' rather than panic all the same
                match u8::from_str_radix(&s[i + 1..i + 3], 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query_string(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// Reads one request off `stream`. `max_body` caps the accepted
/// Content-Length; a request with no body is fine (empty string).
pub fn read_request(
    stream: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, RequestError> {
    let mut line = String::new();
    stream.read_line(&mut line).map_err(RequestError::Io)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| RequestError::Bad("empty request line".into()))?;
    let target = parts.next().ok_or_else(|| RequestError::Bad("missing request target".into()))?;
    let version = parts.next().unwrap_or("HTTP/1.0");
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Bad(format!("unsupported protocol {version}")));
    }
    let (path, qs) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let request = Request {
        method: method.to_string(),
        path: percent_decode(path),
        query: parse_query_string(qs),
        body: String::new(),
    };

    // headers: only Content-Length matters to this server
    let mut content_length: usize = 0;
    loop {
        let mut header = String::new();
        stream.read_line(&mut header).map_err(RequestError::Io)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Bad(format!("bad content-length {value:?}")))?;
            }
        }
    }
    if content_length > max_body {
        return Err(RequestError::TooLarge { declared: content_length, cap: max_body });
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(RequestError::Io)?;
    let body = String::from_utf8(body)
        .map_err(|_| RequestError::Bad("request body is not valid UTF-8".into()))?;
    Ok(Request { body, ..request })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Writes response headers; the caller streams the body afterwards and
/// the connection close delimits it (no Content-Length).
pub fn write_stream_head(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n",
        reason(status)
    )
}

/// Writes a complete response with a known body.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len()
    )?;
    w.flush()
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_strings_decode() {
        let q = parse_query_string("limit=10&mode=count&q=a%20b+c&flag");
        assert_eq!(
            q,
            vec![
                ("limit".into(), "10".into()),
                ("mode".into(), "count".into()),
                ("q".into(), "a b c".into()),
                ("flag".into(), String::new()),
            ]
        );
    }

    #[test]
    fn json_escaping_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
