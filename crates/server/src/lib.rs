//! `rig_server` — a concurrent HTTP/NDJSON query server over the
//! rigmatch [`Session`] (ROADMAP item 2: the "millions of users"
//! scenario made measurable).
//!
//! The design leans on two properties the engine already has: the
//! [`Session`] is `Sync` with snapshot-consistent readers (every request
//! sees one graph version, mutations publish atomically), and result
//! enumeration streams through [`rig_mjoin::ResultSink`] without
//! materializing answers. The server adds the serving shell:
//!
//! - **`POST /query`** — body is HPQL text. Default mode streams every
//!   occurrence as one JSON array per line (NDJSON, batched through
//!   [`BatchSink`]) followed by a trailing summary object;
//!   `?mode=count` returns a single JSON object instead, auto-routed
//!   through the factorized DP when the query shape allows (`via_dp`).
//!   `?limit=N` and `?timeout_ms=N` map onto the engine's budget
//!   machinery — a truncated answer reports `"status":"budget"` with
//!   `timed_out`/`limit_hit` set, mirroring the library API.
//!   `?lint=strict` runs the static analyzer (`rig_analyze`) first and
//!   refuses queries with error-severity findings: 422 with
//!   `"kind":"analysis"` and the full diagnostics report in the body
//!   (counted by `rigmatch_lint_rejections_total`); see
//!   `docs/analysis.md`.
//! - **`POST /update`** — body is a mutation script (`docs/updates.md`);
//!   each `commit` segment becomes one optimistic transaction, retried a
//!   bounded number of times on write conflicts before answering 409.
//! - **`GET /metrics`** — Prometheus text: server counters plus the
//!   session's [`CacheStats`]/[`StoreStats`] (see [`metrics`]).
//! - **`GET /healthz`** — liveness probe.
//! - **`POST /shutdown`** — graceful stop: drain queued connections,
//!   join workers, return from [`Server::serve`].
//!
//! **Admission control**: a bounded worker pool pulls connections from a
//! bounded queue; when both are full the acceptor answers 503
//! immediately instead of letting latency grow without bound (up to
//! `workers + queue_depth` connections are in flight at once). **Slow
//! clients** are bounded by a write timeout — a stalled or vanished
//! reader fails the next batch write, which stops the enumeration via
//! the sink protocol and frees the worker.
//!
//! One request per connection (`Connection: close`): streamed bodies are
//! delimited by the close, so the protocol needs no chunked framing and
//! a client can abandon a stream by closing its socket.
//!
//! [`CacheStats`]: rig_core::CacheStats
//! [`StoreStats`]: rig_core::StoreStats

pub mod http;
pub mod metrics;

use std::cell::{Cell, RefCell};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rig_core::{Error, ErrorKind, Session};
use rig_mjoin::{BatchSink, ResultSink};

use http::{json_escape, Request, RequestError};
use metrics::ServerMetrics;

/// How often `/update` re-stages a script segment that lost an
/// optimistic-commit race before giving up with 409.
const COMMIT_RETRIES: u32 = 8;

/// Server tuning knobs. `Default` suits tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads evaluating requests.
    pub workers: usize,
    /// Accepted connections that may wait for a worker; beyond this the
    /// acceptor answers 503.
    pub queue_depth: usize,
    /// Per-connection read timeout (request head + body).
    pub read_timeout: Duration,
    /// Per-connection write timeout: bounds how long a slow client can
    /// pin a worker between batches.
    pub write_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Tuples per NDJSON flush (the `BatchSink` batch size).
    pub batch_tuples: usize,
    /// Test aid: sleep this long at the start of every `/query` before
    /// evaluating, to make admission-control behavior deterministic in
    /// integration tests. `None` in production.
    pub handler_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 16,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_body_bytes: 1 << 20,
            batch_tuples: 256,
            handler_delay: None,
        }
    }
}

/// A bound (but not yet serving) server. [`Server::serve`] runs the
/// accept loop on the calling thread; [`Server::spawn`] wraps it in a
/// thread and hands back the bound address.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    session: Arc<Session>,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over
    /// `session`.
    pub fn bind(
        session: Arc<Session>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            session,
            config,
            metrics: Arc::new(ServerMetrics::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's counters (shared; live while the server runs).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Convenience for tests, benches and the CLI: serve on a background
    /// thread, returning the bound address and the join handle.
    pub fn spawn(
        session: Arc<Session>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<(SocketAddr, JoinHandle<std::io::Result<()>>)> {
        let server = Server::bind(session, addr, config)?;
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.serve());
        Ok((addr, handle))
    }

    /// Runs the accept loop until `POST /shutdown`: accepted connections
    /// go through the bounded admission queue to the worker pool; when
    /// the queue is full the acceptor answers 503 itself (bounded work —
    /// it never evaluates a query). Returns once every worker has
    /// drained and joined.
    pub fn serve(self) -> std::io::Result<()> {
        let Server { listener, addr, session, config, metrics, shutdown } = self;
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let session = Arc::clone(&session);
                let metrics = Arc::clone(&metrics);
                let shutdown = Arc::clone(&shutdown);
                let config = config.clone();
                std::thread::spawn(move || loop {
                    let next = rx.lock().unwrap_or_else(|p| p.into_inner()).recv();
                    let Ok(stream) = next else { break };
                    ServerMetrics::bump(&metrics.busy_workers);
                    handle_connection(stream, &session, &config, &metrics, &shutdown, addr);
                    metrics.busy_workers.fetch_sub(1, Ordering::Relaxed);
                })
            })
            .collect();

        for incoming in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = incoming else { continue };
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(stream)) => {
                    ServerMetrics::bump(&metrics.rejected);
                    reject_overloaded(stream, &config);
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
        drop(tx); // workers drain the queue, then their recv() errors
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// 503 written directly from the acceptor thread — bounded by short
/// timeouts so a misbehaving client cannot stall admission. The unread
/// request is drained (capped) before the close: closing with unread
/// bytes would RST the connection and destroy the 503 in flight.
fn reject_overloaded(stream: TcpStream, _config: &ServerConfig) {
    let cap = Duration::from_millis(250);
    let _ = stream.set_write_timeout(Some(cap));
    let _ = stream.set_read_timeout(Some(cap));
    let mut w = &stream;
    if http::write_response(
        &mut w,
        503,
        "application/json",
        "{\"error\":\"server at capacity\",\"kind\":\"overloaded\"}\n",
    )
    .is_err()
    {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    let mut r = &stream;
    while drained < 64 * 1024 {
        match std::io::Read::read(&mut r, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn kind_str(e: &Error) -> &'static str {
    if matches!(e, Error::Conflict { .. }) {
        return "conflict";
    }
    match e.kind() {
        ErrorKind::Parse => "parse",
        ErrorKind::Validation => "validation",
        ErrorKind::Io => "io",
        ErrorKind::Budget => "budget",
        ErrorKind::Storage => "storage",
        ErrorKind::Analysis => "analysis",
    }
}

/// HTTP status for an [`Error`]: the serving half of the CLI's
/// `ErrorKind::exit_code` table (`docs/serving.md`).
fn status_for(e: &Error) -> u16 {
    if matches!(e, Error::Conflict { .. }) {
        return 409;
    }
    match e.kind() {
        ErrorKind::Parse => 400,
        ErrorKind::Validation => 422,
        // budget trips are normally reported in-band; as an Error they
        // mean the caller demanded completeness it didn't get
        ErrorKind::Budget => 422,
        // strict lint rejections: semantically sound HPQL the analyzer
        // refused — unprocessable, like validation failures
        ErrorKind::Analysis => 422,
        ErrorKind::Io | ErrorKind::Storage => 500,
    }
}

fn write_error(stream: &TcpStream, status: u16, kind: &str, msg: &str, metrics: &ServerMetrics) {
    ServerMetrics::bump(&metrics.error_responses);
    let body = format!("{{\"error\":\"{}\",\"kind\":\"{kind}\"}}\n", json_escape(msg));
    let mut w = stream;
    let _ = http::write_response(&mut w, status, "application/json", &body);
}

fn write_api_error(stream: &TcpStream, e: &Error, metrics: &ServerMetrics) {
    write_error(stream, status_for(e), kind_str(e), &e.to_string(), metrics);
}

fn handle_connection(
    stream: TcpStream,
    session: &Session,
    config: &ServerConfig,
    metrics: &ServerMetrics,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let req = match http::read_request(&mut reader, config.max_body_bytes) {
        Ok(r) => r,
        Err(e) => {
            if !matches!(e, RequestError::Io(_)) {
                write_error(&stream, e.status(), "bad_request", &e.to_string(), metrics);
            }
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") => handle_query(&req, &stream, session, config, metrics),
        ("POST", "/update") => handle_update(&req, &stream, session, metrics),
        ("GET", "/healthz") => {
            ServerMetrics::bump(&metrics.other_requests);
            let mut w = &stream;
            let _ = http::write_response(&mut w, 200, "text/plain", "ok\n");
        }
        ("GET", "/metrics") => {
            ServerMetrics::bump(&metrics.other_requests);
            let page = metrics::render(metrics, session);
            let mut w = &stream;
            let _ = http::write_response(&mut w, 200, "text/plain; version=0.0.4", &page);
        }
        ("POST", "/shutdown") => {
            ServerMetrics::bump(&metrics.other_requests);
            let mut w = &stream;
            let _ = http::write_response(
                &mut w,
                200,
                "application/json",
                "{\"status\":\"stopping\"}\n",
            );
            shutdown.store(true, Ordering::SeqCst);
            // the acceptor blocks in accept(); wake it so it sees the flag
            let _ = TcpStream::connect(addr);
        }
        (_, "/query" | "/update" | "/healthz" | "/metrics" | "/shutdown") => {
            write_error(&stream, 405, "bad_request", "method not allowed", metrics);
        }
        (_, path) => {
            write_error(&stream, 404, "bad_request", &format!("no such endpoint {path}"), metrics);
        }
    }
}

/// Stops the enumeration once a batch flush failed — `BatchSink::push`
/// itself always says "keep going", so without this a vanished client
/// would keep the worker enumerating into a dead socket.
struct StopOnFail<'a, S> {
    inner: S,
    failed: &'a Cell<bool>,
}

impl<S: ResultSink> ResultSink for StopOnFail<'_, S> {
    fn push(&mut self, tuple: &[u32]) -> bool {
        self.inner.push(tuple) && !self.failed.get()
    }

    fn finish(&mut self) {
        self.inner.finish();
    }
}

fn parse_u64(req: &Request, name: &str) -> Result<Option<u64>, String> {
    match req.param(name) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| format!("bad {name} value {v:?}")),
    }
}

fn handle_query(
    req: &Request,
    stream: &TcpStream,
    session: &Session,
    config: &ServerConfig,
    metrics: &ServerMetrics,
) {
    ServerMetrics::bump(&metrics.queries);
    if let Some(d) = config.handler_delay {
        std::thread::sleep(d);
    }
    let (limit, timeout_ms) = match (parse_u64(req, "limit"), parse_u64(req, "timeout_ms")) {
        (Ok(l), Ok(t)) => (l, t),
        (Err(msg), _) | (_, Err(msg)) => {
            return write_error(stream, 400, "bad_request", &msg, metrics)
        }
    };
    let mode = req.param("mode").unwrap_or("stream");
    if !matches!(mode, "stream" | "count") {
        return write_error(stream, 400, "bad_request", &format!("bad mode {mode:?}"), metrics);
    }
    let lint = req.param("lint").unwrap_or("off");
    if !matches!(lint, "off" | "strict") {
        return write_error(
            stream,
            400,
            "bad_request",
            &format!("bad lint value {lint:?}"),
            metrics,
        );
    }
    if req.body.trim().is_empty() {
        return write_error(stream, 400, "bad_request", "empty query body", metrics);
    }
    let prepared = if lint == "strict" {
        // static analysis gates the query: any error-severity finding
        // (unknown label, provable emptiness, disconnected variable)
        // refuses with 422 and the full diagnostics report as the body
        match session.prepare_with_lint(req.body.as_str(), rig_core::LintMode::Strict) {
            Ok((p, _)) => p,
            Err(Error::Analysis(report)) => {
                ServerMetrics::bump(&metrics.lint_rejections);
                ServerMetrics::bump(&metrics.error_responses);
                let body = format!(
                    "{{\"error\":\"query rejected by static analysis\",\"kind\":\"analysis\",\
                     \"report\":{}}}\n",
                    report.to_json().trim_end()
                );
                let mut w = stream;
                let _ = http::write_response(&mut w, 422, "application/json", &body);
                return;
            }
            Err(e) => return write_api_error(stream, &e, metrics),
        }
    } else {
        match session.prepare(req.body.as_str()) {
            Ok(p) => p,
            Err(e) => return write_api_error(stream, &e, metrics),
        }
    };
    let start = Instant::now();
    let mut run = prepared.run();
    if let Some(k) = limit {
        run = run.limit(k);
    }
    if let Some(ms) = timeout_ms {
        run = run.timeout(Duration::from_millis(ms));
    }

    if mode == "count" {
        let outcome = run.count();
        record_query_metrics(metrics, &outcome, start);
        let r = &outcome.result;
        let body = format!(
            "{{\"status\":\"{}\",\"count\":{},\"timed_out\":{},\"limit_hit\":{},\"via_dp\":{}}}\n",
            budget_status(r.timed_out, r.limit_hit),
            r.count,
            r.timed_out,
            r.limit_hit,
            outcome.metrics.counted_via_factorization,
        );
        let mut w = stream;
        let _ = http::write_response(&mut w, 200, "application/json", &body);
        return;
    }

    // stream mode: headers, then one JSON array per occurrence, then a
    // trailing summary object; the connection close delimits the body.
    let arity = prepared.query().num_nodes();
    let writer = RefCell::new(BufWriter::new(stream));
    if http::write_stream_head(&mut *writer.borrow_mut(), 200, "application/x-ndjson").is_err() {
        ServerMetrics::bump(&metrics.client_disconnects);
        return;
    }
    let failed = Cell::new(false);
    let inner = BatchSink::new(arity, config.batch_tuples.max(1), |flat: &[u32], arity: usize| {
        let mut w = writer.borrow_mut();
        let mut line = String::with_capacity(arity * 8 + 3);
        for t in flat.chunks(arity.max(1)) {
            line.clear();
            line.push('[');
            for (i, v) in t.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&v.to_string());
            }
            line.push_str("]\n");
            if w.write_all(line.as_bytes()).is_err() {
                failed.set(true);
                return; // reader gone: drop the rest of the batch
            }
        }
        if w.flush().is_err() {
            failed.set(true);
        }
    });
    let mut sink = StopOnFail { inner, failed: &failed };
    let outcome = run.stream(&mut sink);
    ServerMetrics::add(&metrics.tuples_streamed, sink.inner.pushed);
    drop(sink); // releases the closure's borrow of `writer`
    record_query_metrics(metrics, &outcome, start);
    if failed.get() {
        ServerMetrics::bump(&metrics.client_disconnects);
        return;
    }
    let r = &outcome.result;
    let summary = format!(
        "{{\"status\":\"{}\",\"count\":{},\"timed_out\":{},\"limit_hit\":{}}}\n",
        budget_status(r.timed_out, r.limit_hit),
        r.count,
        r.timed_out,
        r.limit_hit,
    );
    let mut w = writer.into_inner();
    if w.write_all(summary.as_bytes()).and_then(|()| w.flush()).is_err() {
        ServerMetrics::bump(&metrics.client_disconnects);
    }
}

fn budget_status(timed_out: bool, limit_hit: bool) -> &'static str {
    if timed_out || limit_hit {
        "budget"
    } else {
        "ok"
    }
}

fn record_query_metrics(metrics: &ServerMetrics, outcome: &rig_core::QueryOutcome, start: Instant) {
    ServerMetrics::add(&metrics.query_micros, start.elapsed().as_micros() as u64);
    if outcome.result.timed_out {
        ServerMetrics::bump(&metrics.queries_timed_out);
    }
    if outcome.metrics.counted_via_factorization {
        ServerMetrics::bump(&metrics.queries_via_dp);
    }
    if outcome.metrics.rig_from_cache {
        ServerMetrics::bump(&metrics.rig_cache_hits);
    }
}

fn handle_update(req: &Request, stream: &TcpStream, session: &Session, metrics: &ServerMetrics) {
    ServerMetrics::bump(&metrics.updates);
    let script = match rig_graph::parse_mutations(&req.body) {
        Ok(s) => s,
        Err(e) => return write_api_error(stream, &Error::from(e), metrics),
    };
    let mut commits = 0u64;
    let mut version = 0u64;
    let (mut nodes_added, mut nodes_removed, mut edges_added, mut edges_removed) = (0, 0, 0, 0);
    for ops in &script {
        let mut attempt = 0;
        let summary = loop {
            match session.apply(ops) {
                Ok(s) => break s,
                Err(e @ Error::Conflict { .. }) => {
                    attempt += 1;
                    if attempt >= COMMIT_RETRIES {
                        return write_api_error(stream, &e, metrics);
                    }
                    ServerMetrics::bump(&metrics.conflict_retries);
                }
                Err(e) => return write_api_error(stream, &e, metrics),
            }
        };
        commits += 1;
        ServerMetrics::bump(&metrics.commits_applied);
        version = summary.version;
        nodes_added += summary.nodes_added;
        nodes_removed += summary.nodes_removed;
        edges_added += summary.edges_added;
        edges_removed += summary.edges_removed;
    }
    // surface batched-WAL sync trouble to the caller, not a later Drop
    if let Err(e) = session.flush_wal() {
        return write_api_error(stream, &e, metrics);
    }
    let body = format!(
        "{{\"status\":\"ok\",\"commits\":{commits},\"version\":{version},\
         \"nodes_added\":{nodes_added},\"nodes_removed\":{nodes_removed},\
         \"edges_added\":{edges_added},\"edges_removed\":{edges_removed}}}\n"
    );
    let mut w = stream;
    let _ = http::write_response(&mut w, 200, "application/json", &body);
}
