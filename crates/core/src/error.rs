//! The unified `rigmatch` error type.
//!
//! Every fallible surface of the library funnels into [`Error`]: text
//! parsing (graph files, legacy query files, HPQL), semantic validation
//! (disconnected patterns, label ids outside the graph's label space,
//! malformed edges), I/O, and budget trips (a run truncated by its match
//! limit or wall-clock timeout when the caller demanded completeness).
//!
//! [`Error::kind`] partitions the variants into coarse [`ErrorKind`]s that
//! map 1:1 onto the CLI's exit codes (see [`ErrorKind::exit_code`]), so
//! scripts can distinguish usage, parse, I/O, validation and budget
//! failures without scraping stderr.

use rig_query::{HpqlError, PatternError, QueryParseError};

/// Unified error for the `rigmatch` API (parse / validation / IO / budget).
#[derive(Debug)]
pub enum Error {
    /// A graph file failed to parse.
    GraphParse(rig_graph::ParseError),
    /// A legacy (`n`/`d`/`r`) query file failed to parse.
    QueryParse(QueryParseError),
    /// HPQL text failed to parse or resolve.
    Hpql(HpqlError),
    /// A pattern was structurally malformed (duplicate edge, self-loop,
    /// endpoint out of range).
    Pattern(PatternError),
    /// The query is semantically invalid for the target graph (e.g.
    /// disconnected, or it uses a label id the graph does not have).
    Validation(String),
    /// An optimistic-concurrency commit lost its race: the transaction
    /// began at `started_at` but another commit moved the store to
    /// `current` first. Retryable — re-stage against a fresh
    /// `Session::begin` (the HTTP server's `/update` endpoint does this
    /// automatically).
    Conflict { started_at: u64, current: u64 },
    /// An I/O operation failed.
    Io { path: String, source: std::io::Error },
    /// The run was truncated by its budget and the caller required a
    /// complete answer (see `QueryOutcome::require_complete`).
    Budget { timed_out: bool, limit_hit: bool },
    /// The durability layer failed (WAL append/fsync, segment write, or
    /// on-disk corruption found during recovery).
    Storage(rig_storage::StorageError),
    /// Strict lint mode refused the query: static analysis found at
    /// least one error-severity diagnostic (unknown label, provable
    /// emptiness, disconnected variable, ...). The full [`Report`] is
    /// carried so front ends can render every finding, not just the
    /// first.
    ///
    /// [`Report`]: rig_analyze::Report
    Analysis(rig_analyze::Report),
}

/// Coarse classification of an [`Error`], stable across variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    Parse,
    Validation,
    Io,
    Budget,
    Storage,
    Analysis,
}

impl ErrorKind {
    /// The CLI exit code for this kind. `0` = success, `1` = internal
    /// error and `2` = usage error are reserved by convention.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Parse => 3,
            ErrorKind::Io => 4,
            ErrorKind::Validation => 5,
            ErrorKind::Budget => 6,
            ErrorKind::Storage => 7,
            ErrorKind::Analysis => 8,
        }
    }
}

impl Error {
    /// The coarse kind of this error.
    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::GraphParse(_) | Error::QueryParse(_) | Error::Hpql(_) => ErrorKind::Parse,
            Error::Pattern(_) | Error::Validation(_) | Error::Conflict { .. } => {
                ErrorKind::Validation
            }
            Error::Io { .. } => ErrorKind::Io,
            Error::Budget { .. } => ErrorKind::Budget,
            Error::Storage(_) => ErrorKind::Storage,
            Error::Analysis(_) => ErrorKind::Analysis,
        }
    }

    /// Convenience constructor for validation errors.
    pub fn validation(msg: impl Into<String>) -> Error {
        Error::Validation(msg.into())
    }

    /// Wraps an I/O error with the path it concerned.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Error {
        Error::Io { path: path.into(), source }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::GraphParse(e) => write!(f, "graph parse error: {e}"),
            Error::QueryParse(e) => write!(f, "query parse error: {e}"),
            Error::Hpql(e) => write!(f, "HPQL error: {e}"),
            Error::Pattern(e) => write!(f, "pattern error: {e}"),
            Error::Validation(msg) => write!(f, "validation error: {msg}"),
            Error::Conflict { started_at, current } => write!(
                f,
                "write conflict: transaction began at store version {started_at} \
                 but the store is at {current}"
            ),
            Error::Io { path, source } => write!(f, "io error on {path}: {source}"),
            Error::Budget { timed_out, limit_hit } => write!(
                f,
                "budget exceeded before the answer completed ({})",
                match (timed_out, limit_hit) {
                    (true, true) => "timeout and match limit",
                    (true, false) => "timeout",
                    _ => "match limit",
                }
            ),
            Error::Storage(e) => write!(f, "{e}"),
            Error::Analysis(report) => {
                let (errors, warnings, _) = report.counts();
                write!(
                    f,
                    "query rejected by static analysis: {errors} error(s), \
                     {warnings} warning(s)"
                )?;
                for d in
                    report.diagnostics.iter().filter(|d| d.severity == rig_analyze::Severity::Error)
                {
                    write!(f, "\n  [{}] {}", d.code.as_str(), d.message)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::GraphParse(e) => Some(e),
            Error::QueryParse(e) => Some(e),
            Error::Hpql(e) => Some(e),
            Error::Pattern(e) => Some(e),
            Error::Io { source, .. } => Some(source),
            Error::Storage(e) => Some(e),
            Error::Validation(_) | Error::Conflict { .. } | Error::Budget { .. } => None,
            Error::Analysis(_) => None,
        }
    }
}

impl From<rig_storage::StorageError> for Error {
    fn from(e: rig_storage::StorageError) -> Error {
        Error::Storage(e)
    }
}

impl From<rig_graph::ParseError> for Error {
    fn from(e: rig_graph::ParseError) -> Error {
        Error::GraphParse(e)
    }
}

impl From<QueryParseError> for Error {
    fn from(e: QueryParseError) -> Error {
        Error::QueryParse(e)
    }
}

impl From<HpqlError> for Error {
    fn from(e: HpqlError) -> Error {
        Error::Hpql(e)
    }
}

impl From<PatternError> for Error {
    fn from(e: PatternError) -> Error {
        Error::Pattern(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_exit_codes_are_distinct() {
        let errs = [
            Error::QueryParse(QueryParseError { line: 1, message: "x".into() }),
            Error::validation("bad"),
            Error::io("/tmp/x", std::io::Error::new(std::io::ErrorKind::NotFound, "gone")),
            Error::Budget { timed_out: true, limit_hit: false },
            Error::Storage(rig_storage::StorageError::NotInitialized {
                dir: std::path::PathBuf::from("/tmp/store"),
            }),
            Error::Analysis(rig_analyze::Report {
                source: None,
                diagnostics: vec![rig_analyze::Diagnostic::new(
                    rig_analyze::Code::EmptyLabel,
                    rig_analyze::Severity::Error,
                    "empty",
                )],
            }),
        ];
        let codes: Vec<u8> = errs.iter().map(|e| e.kind().exit_code()).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "{codes:?}");
        assert!(codes.iter().all(|&c| c > 2), "0/1/2 are reserved: {codes:?}");
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn from_impls_classify() {
        let e: Error = QueryParseError { line: 3, message: "bad".into() }.into();
        assert_eq!(e.kind(), ErrorKind::Parse);
        let e: Error = rig_query::PatternError::SelfLoop { node: 0 }.into();
        assert_eq!(e.kind(), ErrorKind::Validation);
        let e: Error = rig_query::HpqlError { line: 1, col: 2, len: 1, message: "x".into() }.into();
        assert_eq!(e.kind(), ErrorKind::Parse);
        assert!(std::error::Error::source(&e).is_some());
    }
}
