//! Engine-neutral run reports — the row format shared by every experiment
//! harness (GM, JM, TM and the engine analogues all emit these, so tables
//! like Table 3 and Table 5 are a straight formatting pass).

use std::time::Duration;

/// Terminal status of one query evaluation, matching the failure notations
/// of Tables 3 and 5 (TO = timeout, OM = out of memory, FA = failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    Completed,
    /// Wall-clock budget exhausted ("TO").
    Timeout,
    /// Intermediate-tuple budget exhausted — the deterministic model of the
    /// JVM out-of-memory failures ("OM").
    MemoryExceeded,
    /// Planner blow-up or other unrecoverable failure ("FA").
    Failed,
}

impl RunStatus {
    /// The two-letter code used in the paper's tables.
    pub fn code(&self) -> &'static str {
        match self {
            RunStatus::Completed => "ok",
            RunStatus::Timeout => "TO",
            RunStatus::MemoryExceeded => "OM",
            RunStatus::Failed => "FA",
        }
    }

    pub fn is_solved(&self) -> bool {
        matches!(self, RunStatus::Completed)
    }
}

/// One engine × query measurement.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Engine name ("GM", "JM", "TM", "GF", "EH", "Neo4j-like", ...).
    pub engine: String,
    pub status: RunStatus,
    /// Occurrences found before stopping.
    pub occurrences: u64,
    /// End-to-end query time.
    pub total_time: Duration,
    /// Filtering + auxiliary-structure building + planning time.
    pub matching_time: Duration,
    /// Result enumeration time.
    pub enumeration_time: Duration,
    /// Intermediate tuples materialized (JM/TM blow-up accounting; always
    /// 0 for GM).
    pub intermediate_tuples: u64,
    /// Size (nodes + edges, or tuples) of the auxiliary structure built
    /// for the query (RIG for GM, answer graph for TM, edge relations for
    /// JM).
    pub aux_size: u64,
}

impl RunReport {
    /// Seconds, as the tables print them.
    pub fn secs(&self) -> f64 {
        self.total_time.as_secs_f64()
    }

    /// A failed/timeout run displayed with the paper's convention (elapsed
    /// time recorded as the budget).
    pub fn display_cell(&self) -> String {
        match self.status {
            RunStatus::Completed => format!("{:.3}", self.secs()),
            s => s.code().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes() {
        assert_eq!(RunStatus::Completed.code(), "ok");
        assert_eq!(RunStatus::Timeout.code(), "TO");
        assert_eq!(RunStatus::MemoryExceeded.code(), "OM");
        assert_eq!(RunStatus::Failed.code(), "FA");
        assert!(RunStatus::Completed.is_solved());
        assert!(!RunStatus::Timeout.is_solved());
    }

    #[test]
    fn display_cell() {
        let mut r = RunReport {
            engine: "GM".into(),
            status: RunStatus::Completed,
            occurrences: 5,
            total_time: Duration::from_millis(1234),
            matching_time: Duration::from_millis(200),
            enumeration_time: Duration::from_millis(1034),
            intermediate_tuples: 0,
            aux_size: 10,
        };
        assert_eq!(r.display_cell(), "1.234");
        r.status = RunStatus::MemoryExceeded;
        assert_eq!(r.display_cell(), "OM");
    }
}
